#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef SCOD_CLI_PATH
#error "SCOD_CLI_PATH must be defined by the build"
#endif

namespace scod {
namespace {

/// Runs the CLI binary and captures stdout+stderr and the exit code.
struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& args) {
  const std::string command = std::string(SCOD_CLI_PATH) + " " + args + " 2>&1";
  CliRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const CliRun run = run_cli("");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun run = run_cli("frobnicate");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("unknown command"), std::string::npos);
}

TEST(Cli, InfoReportsHost) {
  const CliRun run = run_cli("info");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("scod 1.0.0"), std::string::npos);
  EXPECT_NE(run.output.find("host:"), std::string::npos);
}

TEST(Cli, GenerateRequiresOut) {
  const CliRun run = run_cli("generate --count 10");
  EXPECT_EQ(run.exit_code, 2);
}

TEST(Cli, GenerateScreenPipelineCsv) {
  const std::string catalog = temp_path("cli_catalog.csv");
  const std::string results = temp_path("cli_results.csv");

  const CliRun gen = run_cli("generate --count 300 --seed 11 --out " + catalog);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote 300 objects"), std::string::npos);

  const CliRun screen = run_cli("screen --catalog " + catalog +
                                " --variant hybrid --span 1800 --threshold 5 --csv " +
                                results);
  ASSERT_EQ(screen.exit_code, 0) << screen.output;
  EXPECT_NE(screen.output.find("hybrid screening of 300 objects"),
            std::string::npos);
  EXPECT_NE(screen.output.find("conjunctions"), std::string::npos);

  // The CSV must exist with the expected header.
  std::ifstream in(results);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "sat_a,sat_b,tca_s,pca_km");

  std::remove(catalog.c_str());
  std::remove(results.c_str());
}

TEST(Cli, GenerateTleAndScreenWithJ2) {
  const std::string catalog = temp_path("cli_catalog.tle");
  const CliRun gen = run_cli("generate --count 100 --seed 3 --out " + catalog);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;

  const CliRun screen = run_cli("screen --catalog " + catalog +
                                " --variant grid --span 1200 --propagator j2");
  ASSERT_EQ(screen.exit_code, 0) << screen.output;
  EXPECT_NE(screen.output.find("grid screening of 100 objects"), std::string::npos);

  // The TLE-secular propagator is only valid for TLE catalogs...
  const CliRun tle = run_cli("screen --catalog " + catalog +
                             " --variant grid --span 1200 --propagator tle");
  EXPECT_EQ(tle.exit_code, 0) << tle.output;
  std::remove(catalog.c_str());

  // ...and is rejected for CSV ones.
  const std::string csv_catalog = temp_path("cli_catalog_tleprop.csv");
  ASSERT_EQ(run_cli("generate --count 10 --out " + csv_catalog).exit_code, 0);
  EXPECT_EQ(run_cli("screen --catalog " + csv_catalog + " --propagator tle").exit_code,
            2);
  std::remove(csv_catalog.c_str());
}

TEST(Cli, ScreenRejectsBadVariantAndPropagator) {
  const std::string catalog = temp_path("cli_catalog2.csv");
  ASSERT_EQ(run_cli("generate --count 20 --out " + catalog).exit_code, 0);
  EXPECT_EQ(run_cli("screen --catalog " + catalog + " --variant turbo").exit_code, 2);
  EXPECT_EQ(
      run_cli("screen --catalog " + catalog + " --propagator sgp9000").exit_code, 2);
  std::remove(catalog.c_str());
}

TEST(Cli, ScreenFailsCleanlyOnMissingCatalog) {
  const CliRun run = run_cli("screen --catalog /nonexistent/cat.csv");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("cannot open"), std::string::npos);
}

TEST(Cli, CubeEstimatorRuns) {
  const std::string catalog = temp_path("cli_catalog3.csv");
  ASSERT_EQ(run_cli("generate --count 200 --seed 5 --out " + catalog).exit_code, 0);
  const CliRun run = run_cli("cube --catalog " + catalog +
                             " --span 3600 --samples 200 --cube-size 50");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("Cube method"), std::string::npos);
  EXPECT_NE(run.output.find("expected collisions"), std::string::npos);
  std::remove(catalog.c_str());
}

TEST(Cli, AssessEmitsCdms) {
  const std::string catalog = temp_path("cli_catalog4.csv");
  ASSERT_EQ(run_cli("generate --count 400 --seed 13 --out " + catalog).exit_code, 0);
  const CliRun run = run_cli("assess --catalog " + catalog +
                             " --span 3600 --threshold 10 --top 2");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("conjunctions; emitting CDMs"), std::string::npos);
  // With a 10 km threshold on 400 objects an hour usually yields at least
  // one encounter; if it does, a CDM block must be present.
  if (run.output.find("0 conjunctions") == std::string::npos) {
    EXPECT_NE(run.output.find("CCSDS_CDM_VERS"), std::string::npos);
  }
  std::remove(catalog.c_str());
}

}  // namespace
}  // namespace scod
