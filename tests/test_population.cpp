#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <vector>

#include "orbit/geometry.hpp"
#include "population/anchors.hpp"
#include "population/catalog_io.hpp"
#include "population/generator.hpp"
#include "population/kde.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace scod {
namespace {

TEST(Anchors, CatalogIsStableAndValid) {
  const auto catalog = anchor_catalog();
  EXPECT_EQ(catalog.size(), 256u);
  // Anchors are data: repeated calls return the identical set.
  EXPECT_EQ(anchor_catalog().data(), catalog.data());
  for (const auto& [a, e] : catalog) {
    EXPECT_GT(a * (1.0 - e), kEarthRadius + kMinPerigeeAltitude);
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 0.95);
  }
}

TEST(Anchors, ReproducesCatalogStructure) {
  // The LEO concentration dominates and a GEO ring exists (Fig. 9).
  std::size_t leo = 0, geo = 0, heo = 0;
  for (const auto& [a, e] : anchor_catalog()) {
    if (a < 8000.0) ++leo;
    if (std::abs(a - kGeoSemiMajorAxis) < 200.0) ++geo;
    if (e > 0.5) ++heo;
  }
  EXPECT_GT(leo, 180u);  // >70% in LEO
  EXPECT_GE(geo, 8u);    // visible GEO ring
  EXPECT_GE(heo, 2u);    // HEO/GTO tail present
}

TEST(Kde, RejectsEmptyInput) {
  EXPECT_THROW(BivariateKde(std::span<const std::pair<double, double>>{}),
               std::invalid_argument);
}

TEST(Kde, BandwidthFollowsScottsRule) {
  // For unimodal Gaussian data the robust (MAD-based) scale estimate
  // coincides with the standard deviation, so Scott's rule applies as-is.
  std::vector<std::pair<double, double>> pts;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) pts.emplace_back(rng.gaussian(0.0, 2.0),
                                                  rng.gaussian(5.0, 0.5));
  const BivariateKde kde(pts);
  const double factor = std::pow(1000.0, -1.0 / 6.0);
  EXPECT_NEAR(kde.bandwidth_x(), 2.0 * factor, 0.25);
  EXPECT_NEAR(kde.bandwidth_y(), 0.5 * factor, 0.06);
}

TEST(Kde, RobustBandwidthIgnoresFarModes) {
  // A dominant cluster plus a far-away minority mode: the bandwidth must
  // reflect the within-cluster scale, not the inter-mode distance — this
  // is what keeps the LEO/GEO structure of Fig. 9 intact when sampling.
  std::vector<std::pair<double, double>> pts;
  Rng rng(8);
  for (int i = 0; i < 900; ++i) pts.emplace_back(rng.gaussian(7000.0, 100.0), 0.0);
  for (int i = 0; i < 100; ++i) pts.emplace_back(rng.gaussian(42164.0, 25.0), 0.0);
  const BivariateKde kde(pts);
  EXPECT_LT(kde.bandwidth_x(), 300.0);  // plain sigma would be ~10,000 km
}

TEST(Kde, SamplesFollowTheFit) {
  std::vector<std::pair<double, double>> pts;
  Rng gen(2);
  for (int i = 0; i < 500; ++i) pts.emplace_back(gen.gaussian(10.0, 1.0),
                                                 gen.gaussian(-3.0, 0.2));
  const BivariateKde kde(pts);
  Rng rng(3);
  RunningStats xs, ys;
  for (int i = 0; i < 20000; ++i) {
    const auto [x, y] = kde.sample(rng);
    xs.add(x);
    ys.add(y);
  }
  EXPECT_NEAR(xs.mean(), 10.0, 0.1);
  EXPECT_NEAR(ys.mean(), -3.0, 0.02);
}

TEST(Kde, DensityPeaksAtCluster) {
  std::vector<std::pair<double, double>> pts;
  Rng gen(4);
  for (int i = 0; i < 300; ++i) pts.emplace_back(gen.gaussian(0.0, 1.0),
                                                 gen.gaussian(0.0, 1.0));
  const BivariateKde kde(pts);
  EXPECT_GT(kde.density(0.0, 0.0), kde.density(5.0, 5.0));
  EXPECT_GT(kde.density(0.0, 0.0), 0.0);
}

TEST(Generator, ProducesRequestedCountOfValidOrbits) {
  const auto sats = generate_population({5000, 123});
  ASSERT_EQ(sats.size(), 5000u);
  for (std::size_t i = 0; i < sats.size(); ++i) {
    EXPECT_EQ(sats[i].id, i);
    EXPECT_TRUE(is_valid_orbit(sats[i].elements)) << i;
    EXPECT_GE(perigee_radius(sats[i].elements), kEarthRadius + kMinPerigeeAltitude);
  }
}

TEST(Generator, DeterministicInSeed) {
  const auto a = generate_population({200, 9});
  const auto b = generate_population({200, 9});
  const auto c = generate_population({200, 10});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].elements, b[i].elements);
  }
  // Different seeds give a different population.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].elements == c[i].elements)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, ElementRangesMatchTableII) {
  // Table II: inclination in [0, pi], RAAN / argp / mean anomaly in
  // [0, 2 pi); a and e from the KDE.
  const auto sats = generate_population({20000, 77});
  RunningStats inc, raan, argp, ma;
  for (const Satellite& s : sats) {
    const KeplerElements& el = s.elements;
    ASSERT_GE(el.inclination, 0.0);
    ASSERT_LE(el.inclination, kPi);
    ASSERT_GE(el.raan, 0.0);
    ASSERT_LT(el.raan, kTwoPi);
    ASSERT_GE(el.arg_perigee, 0.0);
    ASSERT_LT(el.arg_perigee, kTwoPi);
    ASSERT_GE(el.mean_anomaly, 0.0);
    ASSERT_LT(el.mean_anomaly, kTwoPi);
    inc.add(el.inclination);
    raan.add(el.raan);
    argp.add(el.arg_perigee);
    ma.add(el.mean_anomaly);
  }
  // Uniform distributions: means near the interval midpoints.
  EXPECT_NEAR(inc.mean(), kPi / 2.0, 0.05);
  EXPECT_NEAR(raan.mean(), kPi, 0.1);
  EXPECT_NEAR(argp.mean(), kPi, 0.1);
  EXPECT_NEAR(ma.mean(), kPi, 0.1);
}

TEST(Generator, PopulationIsLeoHeavy) {
  const auto sats = generate_population({5000, 5});
  std::size_t leo = 0;
  for (const Satellite& s : sats) {
    if (s.elements.semi_major_axis < 8000.0) ++leo;
  }
  EXPECT_GT(leo, sats.size() * 7 / 10);
}

TEST(ConstellationShell, WalkerStructure) {
  const auto shell = generate_constellation_shell(12, 20, 550.0, 0.93, 0.5, 1000);
  ASSERT_EQ(shell.size(), 240u);
  EXPECT_EQ(shell.front().id, 1000u);
  EXPECT_EQ(shell.back().id, 1239u);

  std::set<double> raans;
  for (const Satellite& s : shell) {
    EXPECT_NEAR(s.elements.semi_major_axis, kEarthRadius + 550.0, 1e-9);
    EXPECT_NEAR(s.elements.inclination, 0.93, 1e-12);
    EXPECT_TRUE(is_valid_orbit(s.elements));
    raans.insert(s.elements.raan);
  }
  EXPECT_EQ(raans.size(), 12u);  // one RAAN per plane

  // In-plane satellites are evenly phased.
  const double spacing = kTwoPi / 20.0;
  EXPECT_NEAR(shell[1].elements.mean_anomaly - shell[0].elements.mean_anomaly,
              spacing, 1e-9);
}

TEST(DebrisCloud, SpreadsAroundParent) {
  const KeplerElements parent{7100.0, 0.01, 1.2, 0.5, 1.0, 2.0};
  const auto cloud = generate_debris_cloud(parent, 500, 1.0, 42, 50);
  ASSERT_EQ(cloud.size(), 500u);
  EXPECT_EQ(cloud.front().id, 50u);
  RunningStats sma;
  for (const Satellite& s : cloud) {
    EXPECT_TRUE(is_valid_orbit(s.elements));
    sma.add(s.elements.semi_major_axis);
  }
  EXPECT_NEAR(sma.mean(), parent.semi_major_axis, 10.0);
  EXPECT_GT(sma.stddev(), 5.0);  // actually spread out
  EXPECT_LT(sma.stddev(), 100.0);
}

TEST(CatalogIo, RoundTrip) {
  const auto original = generate_population({50, 3});
  const std::string path = testing::TempDir() + "/scod_catalog_test.csv";
  save_catalog_csv(path, original);
  const auto loaded = load_catalog_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_EQ(loaded[i].elements, original[i].elements);  // full precision
  }
  std::remove(path.c_str());
}

TEST(CatalogIo, EdgeOrbitsRoundTripExactly) {
  // Parameter-boundary orbits: circular (e = 0 and e = 1e-12), equatorial
  // (i = 0) and retrograde (i = pi, i = pi - 1e-9). The writer's precision
  // and the reader's validation must both cope with the degenerate angles.
  auto edge_sat = [](std::uint32_t id, double e, double i) {
    Satellite sat;
    sat.id = id;
    sat.elements = {7000.0, e, i, 0.25, 0.75, 1.5};
    return sat;
  };
  const std::vector<Satellite> edge = {
      edge_sat(1, 0.0, 0.9),    edge_sat(2, 1e-12, 0.9),
      edge_sat(3, 0.001, 0.0),  edge_sat(4, 0.001, kPi),
      edge_sat(5, 0.001, kPi - 1e-9),
  };
  for (const Satellite& sat : edge) {
    ASSERT_TRUE(is_valid_orbit(sat.elements)) << "id " << sat.id;
  }

  const std::string path = testing::TempDir() + "/scod_catalog_edge.csv";
  save_catalog_csv(path, edge);
  const auto loaded = load_catalog_csv(path);
  ASSERT_EQ(loaded.size(), edge.size());
  for (std::size_t i = 0; i < edge.size(); ++i) {
    EXPECT_EQ(loaded[i].id, edge[i].id);
    EXPECT_EQ(loaded[i].elements, edge[i].elements);  // bit-exact
  }
  std::remove(path.c_str());
}

TEST(CatalogIo, RejectsMalformedInput) {
  const std::string path = testing::TempDir() + "/scod_catalog_bad.csv";
  {
    std::ofstream out(path);
    out << "id,semi_major_axis_km,eccentricity,inclination_rad,raan_rad,"
           "arg_perigee_rad,mean_anomaly_rad\n";
    out << "0,7000,0.01,0.5\n";  // too few fields
  }
  EXPECT_THROW(load_catalog_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "0,not_a_number,0.01,0.5,0,0,0\n";
  }
  EXPECT_THROW(load_catalog_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "0,6000,0.0,0.5,0,0,0\n";  // sub-surface orbit
  }
  EXPECT_THROW(load_catalog_csv(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_catalog_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace scod
