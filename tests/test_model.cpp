#include <gtest/gtest.h>

#include <cmath>

#include "model/conjunction_model.hpp"
#include "model/powerlaw_fit.hpp"
#include "model/sizing.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(ConjunctionModel, PaperEquationsEvaluate) {
  // Eq. (3): c' = 2.32e-9 * n^2 * s^(4/3) * t * d^(7/4).
  const auto grid = ConjunctionCountModel::paper_grid();
  const double expected = 2.32e-9 * 64000.0 * 64000.0 * std::pow(9.0, 4.0 / 3.0) *
                          86400.0 * std::pow(2.0, 7.0 / 4.0);
  EXPECT_NEAR(grid.predict(64000.0, 9.0, 86400.0, 2.0), expected, expected * 1e-12);

  // Eq. (4) has a linear threshold exponent; for d > 1 the grid model
  // (d^{7/4}) predicts more candidates than the hybrid one, all else equal.
  const auto hybrid = ConjunctionCountModel::paper_hybrid();
  EXPECT_LT(hybrid.predict(64000.0, 9.0, 86400.0, 2.0) / std::pow(9.0, 5.0 / 3.0),
            grid.predict(64000.0, 9.0, 86400.0, 2.0) / std::pow(9.0, 4.0 / 3.0));
}

TEST(ConjunctionModel, CapacityHasFloorAndHeadroom) {
  const auto model = ConjunctionCountModel::paper_grid();
  // Tiny populations: floor of 10,000, doubled once.
  EXPECT_EQ(candidate_capacity_from_model(model, 10.0, 1.0, 60.0, 2.0), 20000u);
  // Large populations: model-driven, doubled.
  const double predicted = model.predict(1.0e6, 9.0, 86400.0, 2.0);
  const auto cap = candidate_capacity_from_model(model, 1.0e6, 9.0, 86400.0, 2.0);
  EXPECT_GE(cap, static_cast<std::size_t>(predicted));
  EXPECT_LE(cap, static_cast<std::size_t>(2.0 * predicted) + 2);
}

TEST(Sizing, SampleCountsFollowEquations) {
  SizingRequest req;
  req.satellites = 1000;
  req.span_seconds = 3600.0;
  req.seconds_per_sample = 4.0;
  req.candidate_capacity = 10000;
  req.memory_budget = 1ull << 30;
  const SizingPlan plan = plan_samples(req);
  EXPECT_TRUE(plan.fits);
  EXPECT_EQ(plan.total_samples, 901u);  // ceil(3600/4) + 1
  EXPECT_GE(plan.parallel_samples, 1u);
  EXPECT_EQ(plan.rounds,
            (plan.total_samples + plan.parallel_samples - 1) / plan.parallel_samples);
  EXPECT_GT(plan.per_grid_bytes, 0u);
  EXPECT_GT(plan.fixed_bytes, 0u);
}

TEST(Sizing, TightBudgetReducesParallelism) {
  SizingRequest req;
  req.satellites = 10000;
  req.span_seconds = 7200.0;
  req.seconds_per_sample = 1.0;
  req.candidate_capacity = 10000;
  req.memory_budget = 1ull << 40;
  const SizingPlan roomy = plan_samples(req);
  EXPECT_EQ(roomy.rounds, 1u);  // everything fits at once

  req.memory_budget = roomy.fixed_bytes + 4 * roomy.per_grid_bytes;
  const SizingPlan tight = plan_samples(req);
  EXPECT_TRUE(tight.fits);
  EXPECT_EQ(tight.parallel_samples, 4u);
  EXPECT_GT(tight.rounds, 1000u);
}

TEST(Sizing, ReportsWhenNothingFits) {
  SizingRequest req;
  req.satellites = 1000000;
  req.span_seconds = 3600.0;
  req.seconds_per_sample = 1.0;
  req.candidate_capacity = 10000;
  req.memory_budget = 1 << 20;  // 1 MiB: not even one grid
  const SizingPlan plan = plan_samples(req);
  EXPECT_FALSE(plan.fits);
  EXPECT_EQ(plan.parallel_samples, 0u);
}

TEST(Sizing, CandidateMapBytesGrowWithCapacity) {
  const MemoryLayout layout;
  EXPECT_GT(candidate_map_bytes(100000, layout), candidate_map_bytes(1000, layout));
  // Slot table is 2x capacity rounded to a power of two.
  EXPECT_EQ(candidate_map_bytes(1000, layout), 2048 * layout.candidate_slot_bytes);
}

TEST(AutoAdjust, KeepsSpsWhenMemoryIsAmple) {
  SizingRequest req;
  req.satellites = 4000;
  req.span_seconds = 7200.0;
  req.seconds_per_sample = 9.0;
  req.memory_budget = 4ull << 30;
  const auto result =
      auto_adjust_sps(ConjunctionCountModel::paper_grid(), req, 2.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_FALSE(result.changed);
  EXPECT_DOUBLE_EQ(result.seconds_per_sample, 9.0);
}

TEST(AutoAdjust, ReducesSpsUnderMemoryPressure) {
  // An inflated model makes the candidate map the dominant consumer, so
  // the adjustment must shrink s_ps (fewer candidates per Eq. 3) — the
  // paper's 9 -> 4 -> 1 behaviour at 512k/1024k satellites.
  ConjunctionCountModel model = ConjunctionCountModel::paper_grid();
  model.coefficient = 2.32e-7;  // a hundred times more candidates

  SizingRequest req;
  req.satellites = 50000;
  req.span_seconds = 7200.0;
  req.seconds_per_sample = 9.0;
  req.memory_budget = 2ull << 30;
  const auto result = auto_adjust_sps(model, req, 2.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.changed);
  EXPECT_LT(result.seconds_per_sample, 9.0);
  EXPECT_GE(result.seconds_per_sample, 1.0);
}

TEST(AutoAdjust, ReportsInfeasibleAtFloor) {
  ConjunctionCountModel model = ConjunctionCountModel::paper_grid();
  model.coefficient = 1.0;  // absurd

  SizingRequest req;
  req.satellites = 100000;
  req.span_seconds = 86400.0;
  req.seconds_per_sample = 9.0;
  req.memory_budget = 1ull << 30;
  const auto result = auto_adjust_sps(model, req, 2.0);
  EXPECT_FALSE(result.feasible);
}

TEST(PowerLawFit, RecoversSyntheticExponents) {
  // Generate y = 3.0e-7 * n^2 * s^(4/3) * d^(7/4) with light noise and
  // check the Extra-P-style grid search recovers the exponents exactly.
  Rng rng(13);
  std::vector<FitObservation> obs;
  for (double n : {1000.0, 2000.0, 4000.0, 8000.0}) {
    for (double s : {1.0, 2.0, 4.0, 9.0}) {
      for (double d : {0.5, 1.0, 2.0, 5.0}) {
        const double y = 3.0e-7 * n * n * std::pow(s, 4.0 / 3.0) *
                         std::pow(d, 7.0 / 4.0) * (1.0 + 0.01 * rng.gaussian());
        obs.push_back({{n, s, d}, y});
      }
    }
  }
  const PowerLawFit fit = fit_power_law(obs, 3);
  ASSERT_EQ(fit.exponents.size(), 3u);
  EXPECT_DOUBLE_EQ(fit.exponents[0], 2.0);
  EXPECT_DOUBLE_EQ(fit.exponents[1], 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(fit.exponents[2], 7.0 / 4.0);
  EXPECT_NEAR(fit.coefficient, 3.0e-7, 3.0e-8);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(PowerLawFit, PredictsFromFit) {
  std::vector<FitObservation> obs;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) obs.push_back({{x}, 5.0 * x * x});
  const PowerLawFit fit = fit_power_law(obs, 1);
  EXPECT_DOUBLE_EQ(fit.exponents[0], 2.0);
  EXPECT_NEAR(fit.predict({10.0}), 500.0, 1.0);
}

TEST(PowerLawFit, SkipsNonPositiveObservations) {
  std::vector<FitObservation> obs;
  obs.push_back({{1.0}, 0.0});   // skipped (log undefined)
  obs.push_back({{-2.0}, 4.0});  // skipped (negative input)
  for (double x : {1.0, 2.0, 4.0}) obs.push_back({{x}, 2.0 * x});
  const PowerLawFit fit = fit_power_law(obs, 1);
  EXPECT_DOUBLE_EQ(fit.exponents[0], 1.0);
  EXPECT_NEAR(fit.coefficient, 2.0, 1e-9);
}

TEST(PowerLawFit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_power_law({}, 1), std::invalid_argument);
  std::vector<FitObservation> one{{{1.0}, 2.0}};
  EXPECT_THROW(fit_power_law(one, 1), std::invalid_argument);
  std::vector<FitObservation> mismatch{{{1.0, 2.0}, 2.0}, {{1.0}, 3.0}};
  EXPECT_THROW(fit_power_law(mismatch, 1), std::invalid_argument);
}

TEST(PowerLawFit, ExponentGridContainsPaperValues) {
  const auto grid = extrap_exponent_grid();
  auto contains = [&](double v) {
    for (double g : grid) {
      if (std::abs(g - v) < 1e-12) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(2.0));
  EXPECT_TRUE(contains(4.0 / 3.0));
  EXPECT_TRUE(contains(5.0 / 3.0));
  EXPECT_TRUE(contains(7.0 / 4.0));
  EXPECT_TRUE(contains(1.0));
}

}  // namespace
}  // namespace scod
