#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/grid_screener.hpp"
#include "core/partitioned.hpp"
#include "core/screen.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "population/generator.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "service/screening_service.hpp"
#include "verify/case_io.hpp"
#include "verify/differential.hpp"

#ifndef SCOD_CORPUS_DIR
#error "SCOD_CORPUS_DIR must be defined by the build"
#endif

namespace scod {
namespace {

ScreeningConfig make_config(double threshold_km = 10.0, double span = 1800.0,
                            double sps = 8.0) {
  ScreeningConfig cfg;
  cfg.threshold_km = threshold_km;
  cfg.t_begin = 0.0;
  cfg.t_end = span;
  cfg.seconds_per_sample = sps;
  return cfg;
}

/// The contract under test: a report computed through a warm context must
/// match a cold one to the last bit — not within tolerance.
void expect_bit_identical(const ScreeningReport& cold, const ScreeningReport& warm,
                          const std::string& label) {
  ASSERT_EQ(warm.conjunctions.size(), cold.conjunctions.size()) << label;
  for (std::size_t i = 0; i < cold.conjunctions.size(); ++i) {
    EXPECT_EQ(warm.conjunctions[i].sat_a, cold.conjunctions[i].sat_a) << label;
    EXPECT_EQ(warm.conjunctions[i].sat_b, cold.conjunctions[i].sat_b) << label;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: zero ULPs of slack.
    EXPECT_EQ(warm.conjunctions[i].tca, cold.conjunctions[i].tca) << label;
    EXPECT_EQ(warm.conjunctions[i].pca, cold.conjunctions[i].pca) << label;
  }
  EXPECT_EQ(warm.stats.satellites, cold.stats.satellites) << label;
  EXPECT_EQ(warm.stats.total_samples, cold.stats.total_samples) << label;
  EXPECT_EQ(warm.stats.rounds, cold.stats.rounds) << label;
  EXPECT_EQ(warm.stats.seconds_per_sample, cold.stats.seconds_per_sample) << label;
  EXPECT_EQ(warm.stats.cell_size_km, cold.stats.cell_size_km) << label;
  EXPECT_EQ(warm.stats.candidates, cold.stats.candidates) << label;
  EXPECT_EQ(warm.stats.pairs_examined, cold.stats.pairs_examined) << label;
  EXPECT_EQ(warm.stats.refinements, cold.stats.refinements) << label;
  EXPECT_EQ(warm.stats.candidate_set_growths, cold.stats.candidate_set_growths)
      << label;
}

TEST(Context, WarmRepeatScreensAreBitIdenticalAcrossVariants) {
  const auto sats = generate_population({150, 21});
  const ScreeningConfig cfg = make_config();

  for (const Variant variant : {Variant::kGrid, Variant::kHybrid,
                                Variant::kLegacy, Variant::kSieve}) {
    const ScreeningReport cold = make_screener(variant)->screen(sats, cfg);

    ScreeningContext context;
    const auto screener = make_screener(variant, &context);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const ScreeningReport warm = screener->screen(sats, cfg);
      expect_bit_identical(cold, warm,
                           std::string(variant_name(variant)) + " repeat " +
                               std::to_string(repeat));
    }
  }
}

TEST(Context, InterleavedPopulationSizesStayBitIdentical) {
  // Alternating sizes forces the arena down both paths: exact-size reuse
  // (same n as the previous screen) and rebuild (n changed, cached grids
  // and candidate set are the wrong geometry).
  const auto big = generate_population({400, 5});
  const auto small = generate_population({120, 6});
  const ScreeningConfig cfg = make_config();

  const ScreeningReport cold_big = make_screener(Variant::kGrid)->screen(big, cfg);
  const ScreeningReport cold_small =
      make_screener(Variant::kGrid)->screen(small, cfg);

  ScreeningContext context;
  const auto screener = make_screener(Variant::kGrid, &context);
  expect_bit_identical(cold_big, screener->screen(big, cfg), "big #1");
  expect_bit_identical(cold_small, screener->screen(small, cfg), "small after big");
  expect_bit_identical(cold_big, screener->screen(big, cfg), "big after small");
  expect_bit_identical(cold_big, screener->screen(big, cfg), "big repeat");
}

TEST(Context, WarmScreensActuallyReuseTheArena) {
  const auto sats = generate_population({200, 9});
  const ScreeningConfig cfg = make_config();

  ScreeningContext context;
  const auto screener = make_screener(Variant::kGrid, &context);
  screener->screen(sats, cfg);
  const ScratchArena::Stats after_first = context.arena().stats();
  EXPECT_EQ(after_first.grid_reuses, 0u);
  EXPECT_GT(after_first.grid_rebuilds, 0u);
  EXPECT_GT(context.arena().memory_bytes(), 0u);

  screener->screen(sats, cfg);
  const ScratchArena::Stats after_second = context.arena().stats();
  EXPECT_GT(after_second.grid_reuses, 0u);
  EXPECT_EQ(after_second.grid_rebuilds, after_first.grid_rebuilds);
  EXPECT_GT(after_second.candidate_reuses, 0u);

  // release() returns to the cold-start state: next screen rebuilds.
  context.arena().release();
  EXPECT_EQ(context.arena().memory_bytes(), 0u);
  screener->screen(sats, cfg);
  EXPECT_GT(context.arena().stats().grid_rebuilds, after_second.grid_rebuilds);
}

TEST(Context, StreamingWarmMatchesStreamingCold) {
  const auto sats = generate_population({150, 13});
  ScreeningConfig cfg = make_config();
  cfg.memory_budget = 2 << 20;  // force several rounds

  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(sats, solver);

  const auto collect = [&](const GridScreener& screener) {
    std::vector<Conjunction> streamed;
    screener.screen_streaming(
        propagator, cfg, [&](std::size_t, std::span<const Conjunction> batch) {
          streamed.insert(streamed.end(), batch.begin(), batch.end());
        });
    return streamed;
  };

  const GridScreener cold_screener;
  const std::vector<Conjunction> cold = collect(cold_screener);

  ScreeningContext context;
  const GridScreener warm_screener(GridScreener::default_options(), &context);
  collect(warm_screener);  // prime the arena
  const std::vector<Conjunction> warm = collect(warm_screener);

  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].sat_a, cold[i].sat_a);
    EXPECT_EQ(warm[i].sat_b, cold[i].sat_b);
    EXPECT_EQ(warm[i].tca, cold[i].tca);
    EXPECT_EQ(warm[i].pca, cold[i].pca);
  }
  EXPECT_GT(context.arena().stats().grid_reuses, 0u);
}

TEST(Context, ArenaShrinksGrosslyOversizedBuffers) {
  ScratchArena arena;
  std::vector<double>& big = arena.vmax(100000);
  EXPECT_EQ(big.size(), 100000u);
  const std::size_t held = big.capacity();

  std::vector<double>& small = arena.vmax(10);
  EXPECT_EQ(small.size(), 10u);
  EXPECT_LT(small.capacity(), held);
  EXPECT_GE(arena.stats().vector_shrinks, 1u);

  // A modest size drop is NOT shrunk: reallocation would cost more than
  // the slack is worth.
  arena.vmax(5000);
  const std::uint64_t shrinks = arena.stats().vector_shrinks;
  arena.vmax(4000);
  EXPECT_EQ(arena.stats().vector_shrinks, shrinks);
}

TEST(Context, ArenaGridsRebuildWhenEntryCapacityChanges) {
  ScratchArena arena;
  const ScratchArena::GridCheckout first = arena.grids(4, 1000);
  ASSERT_EQ(first.grids->size(), 4u);
  EXPECT_EQ(first.reused, 0u);
  const std::size_t slots = (*first.grids)[0].slot_count();

  // Same entries: all four come back reused, same slot tables.
  const ScratchArena::GridCheckout again = arena.grids(4, 1000);
  EXPECT_EQ(again.reused, 4u);
  EXPECT_EQ((*again.grids)[0].slot_count(), slots);

  // Fewer grids wanted: surplus is released, the rest reused.
  const ScratchArena::GridCheckout fewer = arena.grids(2, 1000);
  EXPECT_EQ(fewer.grids->size(), 2u);
  EXPECT_EQ(fewer.reused, 2u);

  // Different entry capacity: the slot table would differ from a cold
  // screen's, so everything is rebuilt.
  const ScratchArena::GridCheckout resized = arena.grids(2, 500);
  EXPECT_EQ(resized.reused, 0u);
  EXPECT_NE((*resized.grids)[0].slot_count(), slots);
}

TEST(Context, ArenaCandidatesRebuildOnCapacityMismatch) {
  ScratchArena arena;
  CandidateSet& first = arena.candidates(1 << 12);
  EXPECT_EQ(first.capacity(), std::size_t{1} << 12);
  first.insert(1, 2, 3);
  ASSERT_EQ(first.size(), 1u);

  // Same capacity: reused, and handed back cleared.
  CandidateSet& same = arena.candidates(1 << 12);
  EXPECT_EQ(same.size(), 0u);
  EXPECT_EQ(arena.stats().candidate_reuses, 1u);

  // Different capacity (e.g. the previous screen's grow() doubled it, or
  // the sizing plan changed): rebuilt at exactly the requested size.
  CandidateSet& grown = arena.candidates(1 << 13);
  EXPECT_EQ(grown.capacity(), std::size_t{1} << 13);
  EXPECT_EQ(arena.stats().candidate_rebuilds, 2u);
}

TEST(Context, ArenaValidFlagsComeBackZeroFilled) {
  ScratchArena arena;
  std::vector<std::uint8_t>& flags = arena.valid_flags(64);
  for (std::uint8_t& f : flags) f = 1;
  const std::vector<std::uint8_t>& fresh = arena.valid_flags(64);
  for (const std::uint8_t f : fresh) EXPECT_EQ(f, 0);
}

TEST(Context, UseIsReentrantOnOwnerThreadAndThrowsAcrossThreads) {
  ScreeningContext context;
  ScreeningContext::Use outer(context);
  // Nested acquisition on the same thread is the normal case: screen(span)
  // delegates to screen(propagator), refinement runs mid-pipeline.
  { ScreeningContext::Use inner(context); }

  bool threw = false;
  std::thread intruder([&] {
    try {
      ScreeningContext::Use stolen(context);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  intruder.join();
  EXPECT_TRUE(threw) << "concurrent cross-thread use must be rejected";
}

TEST(Context, PartitionedScreenParallelJobsMatchDirect) {
  const auto sats = generate_population({160, 33});
  const ScreeningConfig cfg = make_config();

  const ScreeningReport direct = screen(sats, cfg, Variant::kGrid);
  ScreeningContext context;
  for (const std::size_t partitions : {2u, 3u}) {
    const ScreeningReport split =
        partitioned_screen(sats, cfg, Variant::kGrid, partitions, &context);
    ASSERT_EQ(split.conjunctions.size(), direct.conjunctions.size());
    for (std::size_t i = 0; i < direct.conjunctions.size(); ++i) {
      EXPECT_EQ(split.conjunctions[i].sat_a, direct.conjunctions[i].sat_a);
      EXPECT_EQ(split.conjunctions[i].sat_b, direct.conjunctions[i].sat_b);
      EXPECT_NEAR(split.conjunctions[i].tca, direct.conjunctions[i].tca, 1e-3);
      EXPECT_NEAR(split.conjunctions[i].pca, direct.conjunctions[i].pca, 1e-6);
    }
  }
}

TEST(Context, ServiceReusesItsContextAcrossEpochs) {
  ServiceOptions options;
  options.config = make_config();
  ScreeningService service(options);
  service.upsert(generate_population({250, 17}));

  const ServiceReport first = service.screen(ScreenMode::kFull);
  const ScratchArena::Stats after_first = service.context().arena().stats();
  EXPECT_GT(after_first.grid_rebuilds, 0u);
  EXPECT_EQ(after_first.grid_reuses, 0u);

  const ServiceReport second = service.screen(ScreenMode::kFull);
  EXPECT_GT(service.context().arena().stats().grid_reuses, 0u);

  ASSERT_EQ(second.conjunctions.size(), first.conjunctions.size());
  for (std::size_t i = 0; i < first.conjunctions.size(); ++i) {
    EXPECT_EQ(second.conjunctions[i].id_a, first.conjunctions[i].id_a);
    EXPECT_EQ(second.conjunctions[i].id_b, first.conjunctions[i].id_b);
    EXPECT_EQ(second.conjunctions[i].tca, first.conjunctions[i].tca);
    EXPECT_EQ(second.conjunctions[i].pca, first.conjunctions[i].pca);
  }

  // An incremental pass through the same warm context still matches the
  // deliberately-cold reference.
  auto snap = service.store().snapshot();
  Satellite touched = snap->satellites[3];
  touched.elements.mean_anomaly += 0.01;
  service.upsert(touched);
  const ServiceReport incremental = service.screen(ScreenMode::kIncremental);
  const std::vector<IdConjunction> reference = service.reference_conjunctions();
  ASSERT_EQ(incremental.conjunctions.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(incremental.conjunctions[i].id_a, reference[i].id_a);
    EXPECT_EQ(incremental.conjunctions[i].id_b, reference[i].id_b);
    EXPECT_EQ(incremental.conjunctions[i].tca, reference[i].tca);
  }
}

TEST(Context, TelemetryCountersIdenticalColdVersusWarm) {
  if (!obs::compiled()) GTEST_SKIP() << "built with SCOD_TELEMETRY=OFF";
  // A single-thread pool makes the probe/CAS counters deterministic, so
  // the whole snapshot (minus wall-clock timers) must replay exactly.
  ThreadPool one(1);
  const auto sats = generate_population({150, 41});
  ScreeningConfig cfg = make_config();
  cfg.pool = &one;

  const auto snapshot_of = [&](const Screener& screener) {
    obs::reset();
    obs::set_enabled(true);
    screener.screen(sats, cfg);
    obs::set_enabled(false);
    return obs::snapshot();
  };

  const obs::TelemetrySnapshot cold = snapshot_of(*make_screener(Variant::kGrid));
  ScreeningContext context;
  const auto warm_screener = make_screener(Variant::kGrid, &context);
  snapshot_of(*warm_screener);  // prime the arena
  const obs::TelemetrySnapshot warm = snapshot_of(*warm_screener);

  const auto first_timer = static_cast<std::size_t>(obs::Counter::kTimeInsertionNs);
  for (std::size_t i = 0; i < first_timer; ++i) {
    EXPECT_EQ(warm.counters[i], cold.counters[i])
        << obs::counter_name(static_cast<obs::Counter>(i));
  }
  for (std::size_t i = 0; i < warm.probe_histogram.size(); ++i) {
    EXPECT_EQ(warm.probe_histogram[i], cold.probe_histogram[i])
        << "probe bucket " << i;
  }
  obs::reset();
}

TEST(Context, TelemetryOptionEnablesCountersForTheScreenOnly) {
  if (!obs::compiled()) GTEST_SKIP() << "built with SCOD_TELEMETRY=OFF";
  obs::reset();
  obs::set_enabled(false);

  ScreeningContext::Options options;
  options.telemetry = true;
  ScreeningContext context(options);
  const auto sats = generate_population({100, 3});
  make_screener(Variant::kGrid, &context)->screen(sats, make_config());

  EXPECT_FALSE(obs::enabled()) << "enablement must be restored after the screen";
  EXPECT_GT(obs::snapshot().value(obs::Counter::kGridInserts), 0u);
  obs::reset();
}

TEST(Context, SharedContextCorpusReplayFindsNoStateLeaks) {
  // The regression corpus through the differential runner in context-reuse
  // mode: one context across every case, warm reruns bit-compared to cold.
  ScreeningContext shared;
  verify::DifferentialOptions options;
  options.shared_context = &shared;
  options.check_service = false;  // exercised by test_service / scod_fuzz
  options.check_counters = false;

  const auto paths = verify::list_corpus(SCOD_CORPUS_DIR);
  ASSERT_FALSE(paths.empty());
  for (const std::string& path : paths) {
    const verify::CaseResult result =
        verify::run_differential(verify::load_case(path), options);
    for (const verify::Divergence& d : result.divergences) {
      ADD_FAILURE() << path << ": [" << d.screener << "/"
                    << verify::divergence_kind_name(d.kind) << "] " << d.detail;
    }
  }
}

}  // namespace
}  // namespace scod
