#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "population/catalog_io.hpp"
#include "population/generator.hpp"
#include "population/tle.hpp"
#include "service/screening_service.hpp"
#include "spatial/cell.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

Satellite make_sat(std::uint32_t id, double a = 7000.0, double raan = 0.0) {
  Satellite sat;
  sat.id = id;
  sat.elements.semi_major_axis = a;
  sat.elements.eccentricity = 0.001;
  sat.elements.inclination = 0.9;
  sat.elements.raan = raan;
  sat.elements.arg_perigee = 0.3;
  sat.elements.mean_anomaly = 1.0;
  return sat;
}

// ---------------------------------------------------------------------------
// CatalogStore: versioned snapshots

TEST(CatalogStore, StartsEmpty) {
  CatalogStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.size(), 0u);
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->find(1), nullptr);
  EXPECT_EQ(snap->index_of(1), CatalogSnapshot::npos);
  EXPECT_TRUE(snap->modified_since(0).empty());
}

TEST(CatalogStore, UpsertInsertsSortedAndReplaces) {
  CatalogStore store;
  EXPECT_EQ(store.upsert(make_sat(5)), 1u);
  EXPECT_EQ(store.upsert(make_sat(2)), 2u);

  auto snap = store.snapshot();
  ASSERT_EQ(snap->size(), 2u);
  // Dense layout is ascending-id regardless of insertion order.
  EXPECT_EQ(snap->satellites[0].id, 2u);
  EXPECT_EQ(snap->satellites[1].id, 5u);
  EXPECT_EQ(snap->index_of(5), 1u);
  EXPECT_EQ(snap->modified_epoch[0], 2u);
  EXPECT_EQ(snap->modified_epoch[1], 1u);

  // Replacing by id keeps the size and restamps only that object.
  Satellite updated = make_sat(5, 7200.0);
  EXPECT_EQ(store.upsert(updated), 3u);
  snap = store.snapshot();
  ASSERT_EQ(snap->size(), 2u);
  EXPECT_EQ(snap->find(5)->elements.semi_major_axis, 7200.0);
  EXPECT_EQ(snap->modified_epoch[snap->index_of(5)], 3u);
  EXPECT_EQ(snap->modified_epoch[snap->index_of(2)], 2u);
}

TEST(CatalogStore, BatchUpsertIsOneEpochStepAndLastDuplicateWins) {
  CatalogStore store;
  std::vector<Satellite> batch = {make_sat(3), make_sat(1),
                                  make_sat(3, 7500.0)};
  EXPECT_EQ(store.upsert(batch), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  const auto snap = store.snapshot();
  ASSERT_EQ(snap->size(), 2u);
  EXPECT_EQ(snap->find(3)->elements.semi_major_axis, 7500.0);

  // An empty batch leaves the epoch alone.
  EXPECT_EQ(store.upsert(std::span<const Satellite>{}), 1u);
}

TEST(CatalogStore, RejectsInvalidOrbit) {
  CatalogStore store;
  store.upsert(make_sat(1));
  Satellite bad = make_sat(2, 100.0);  // sub-surface
  EXPECT_THROW(store.upsert(bad), std::invalid_argument);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CatalogStore, SnapshotsAreImmutableCopies) {
  CatalogStore store;
  store.upsert(make_sat(1));
  store.upsert(make_sat(2));
  const auto old_snap = store.snapshot();

  store.upsert(make_sat(1, 7300.0));
  store.remove(2);

  // The held snapshot still shows the world as of epoch 2.
  EXPECT_EQ(old_snap->epoch, 2u);
  ASSERT_EQ(old_snap->size(), 2u);
  EXPECT_EQ(old_snap->find(1)->elements.semi_major_axis, 7000.0);
  ASSERT_NE(old_snap->find(2), nullptr);

  const auto new_snap = store.snapshot();
  EXPECT_EQ(new_snap->epoch, 4u);
  EXPECT_EQ(new_snap->size(), 1u);
  EXPECT_EQ(new_snap->find(1)->elements.semi_major_axis, 7300.0);
}

TEST(CatalogStore, RemoveAndRemovedSince) {
  CatalogStore store;
  store.upsert(make_sat(1));
  store.upsert(make_sat(2));  // epoch 2

  EXPECT_FALSE(store.remove(99));
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_TRUE(store.remove(1));  // epoch 3
  EXPECT_EQ(store.epoch(), 3u);
  EXPECT_EQ(store.size(), 1u);

  EXPECT_EQ(store.removed_since(2), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(store.removed_since(3).empty());

  // A re-added id is a modification, not a removal: the incremental merge
  // must treat it as dirty rather than evict-and-forget.
  store.upsert(make_sat(1, 7100.0));  // epoch 4
  EXPECT_TRUE(store.removed_since(2).empty());
  const auto modified = store.snapshot()->modified_since(2);
  EXPECT_EQ(modified, (std::vector<std::uint32_t>{1}));
}

TEST(CatalogStore, ModifiedSinceIsAscendingAndScoped) {
  CatalogStore store;
  store.upsert(make_sat(4));
  store.upsert(make_sat(2));
  const std::uint64_t mark = store.epoch();
  store.upsert(make_sat(9));
  store.upsert(make_sat(2, 7400.0));

  EXPECT_EQ(store.snapshot()->modified_since(mark),
            (std::vector<std::uint32_t>{2, 9}));
  EXPECT_TRUE(store.snapshot()->modified_since(store.epoch()).empty());
}

TEST(CatalogStore, IngestCsvUpsertsById) {
  const auto population = generate_population({20, 17});
  const std::string path = testing::TempDir() + "/scod_store_ingest.csv";
  save_catalog_csv(path, population);

  CatalogStore store;
  EXPECT_EQ(store.ingest_csv(path), 20u);
  EXPECT_EQ(store.epoch(), 1u);
  ASSERT_EQ(store.size(), 20u);
  const auto snap = store.snapshot();
  for (const Satellite& sat : population) {
    ASSERT_NE(snap->find(sat.id), nullptr);
    EXPECT_EQ(snap->find(sat.id)->elements, sat.elements);
  }

  // Re-ingesting the same file updates in place: one epoch, same size.
  EXPECT_EQ(store.ingest_csv(path), 20u);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.size(), 20u);
  std::remove(path.c_str());
}

TleRecord tle_record(std::uint32_t catalog_number, double mean_anomaly_deg) {
  TleRecord rec;
  rec.name = "SVC TEST";
  rec.catalog_number = catalog_number;
  rec.classification = 'U';
  rec.intl_designator = "98067A";
  rec.epoch_year = 2026;
  rec.epoch_day = 10.5;
  rec.bstar = 3.0e-5;
  rec.element_set = 1;
  rec.revolution_number = 1000;
  rec.mean_motion_rev_day = 15.5;
  rec.elements.inclination = 0.9;
  rec.elements.raan = 1.0;
  rec.elements.eccentricity = 0.0005;
  rec.elements.arg_perigee = 0.5;
  rec.elements.mean_anomaly = mean_anomaly_deg * kPi / 180.0;
  return rec;
}

TEST(CatalogStore, IngestTleUpsertsByCatalogNumber) {
  const std::string path = testing::TempDir() + "/scod_store_ingest.tle";
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    for (const auto catnum : {25544u, 11111u}) {
      const auto [l1, l2] = format_tle(tle_record(catnum, 90.0));
      std::fprintf(out, "%s\n%s\n", l1.c_str(), l2.c_str());
    }
    std::fclose(out);
  }

  CatalogStore store;
  EXPECT_EQ(store.ingest_tle(path), 2u);
  ASSERT_EQ(store.size(), 2u);
  ASSERT_NE(store.snapshot()->find(25544), nullptr);
  ASSERT_NE(store.snapshot()->find(11111), nullptr);

  // A newer element set for the same NORAD number is an update.
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    const auto [l1, l2] = format_tle(tle_record(25544, 180.0));
    std::fprintf(out, "%s\n%s\n", l1.c_str(), l2.c_str());
    std::fclose(out);
  }
  EXPECT_EQ(store.ingest_tle(path), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NEAR(store.snapshot()->find(25544)->elements.mean_anomaly, kPi, 1e-5);
  std::remove(path.c_str());
}

TEST(CatalogStore, EdgeOrbitsSurviveCsvIngest) {
  // Circular, equatorial, polar and retrograde orbits all sit on parameter
  // boundaries (e = 0, i = 0, i = pi) where angle conventions degenerate;
  // they must round-trip through the CSV path and the store bit-exactly.
  std::vector<Satellite> edge;
  Satellite circular = make_sat(1);
  circular.elements.eccentricity = 0.0;
  Satellite near_circular = make_sat(2);
  near_circular.elements.eccentricity = 1e-12;
  Satellite equatorial = make_sat(3);
  equatorial.elements.inclination = 0.0;
  Satellite retrograde = make_sat(4);
  retrograde.elements.inclination = kPi;
  Satellite near_retrograde = make_sat(5);
  near_retrograde.elements.inclination = kPi - 1e-9;
  edge = {circular, near_circular, equatorial, retrograde, near_retrograde};

  const std::string path = testing::TempDir() + "/scod_store_edge.csv";
  save_catalog_csv(path, edge);

  CatalogStore store;
  EXPECT_EQ(store.ingest_csv(path), edge.size());
  const auto snap = store.snapshot();
  for (const Satellite& sat : edge) {
    ASSERT_NE(snap->find(sat.id), nullptr) << "id " << sat.id;
    EXPECT_EQ(snap->find(sat.id)->elements, sat.elements) << "id " << sat.id;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ScreeningService: warm baseline and dirty-set re-screening

ServiceOptions dense_options() {
  ServiceOptions options;
  options.config.threshold_km = 10.0;
  options.config.t_end = 1800.0;
  options.config.seconds_per_sample = 30.0;
  return options;
}

void expect_equivalent(const std::vector<IdConjunction>& got,
                       const std::vector<IdConjunction>& want,
                       const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id_a, want[i].id_a) << context << " [" << i << "]";
    EXPECT_EQ(got[i].id_b, want[i].id_b) << context << " [" << i << "]";
    // Clean pairs carry over verbatim and dirty pairs re-refine on the
    // identical grid, so agreement is far inside the Brent tolerance.
    EXPECT_NEAR(got[i].tca, want[i].tca, 1e-6) << context << " [" << i << "]";
    EXPECT_NEAR(got[i].pca, want[i].pca, 1e-9) << context << " [" << i << "]";
  }
}

TEST(ScreeningService, PinsSamplePeriodAtConstruction) {
  ServiceOptions options;
  options.config.seconds_per_sample = 0.0;  // unset: take the pipeline's
  ScreeningService service(options);
  EXPECT_GT(service.options().config.seconds_per_sample, 0.0);
  EXPECT_EQ(service.options().config.seconds_per_sample,
            service.options().pipeline.seconds_per_sample);

  ServiceOptions pinned;
  pinned.config.seconds_per_sample = 12.0;
  ScreeningService explicit_service(pinned);
  EXPECT_EQ(explicit_service.options().pipeline.seconds_per_sample, 12.0);
}

TEST(ScreeningService, EmptyCatalogScreensToNothing) {
  ScreeningService service(dense_options());
  const ServiceReport report = service.screen();
  EXPECT_EQ(report.epoch, 0u);
  EXPECT_EQ(report.catalog_size, 0u);
  EXPECT_TRUE(report.conjunctions.empty());
}

TEST(ScreeningService, SecondScreenWithoutDeltaIsCached) {
  ScreeningService service(dense_options());
  service.upsert(generate_population({300, 5}));
  const ServiceReport first = service.screen();
  EXPECT_FALSE(first.incremental);

  const ServiceReport second = service.screen();
  EXPECT_TRUE(second.incremental);
  EXPECT_EQ(second.carried, first.conjunctions.size());
  EXPECT_EQ(second.refreshed, 0u);
  ASSERT_EQ(second.conjunctions.size(), first.conjunctions.size());
  EXPECT_EQ(service.stats().cached_screens, 1u);
  EXPECT_EQ(service.stats().full_screens, 1u);
}

TEST(ScreeningService, AutoModeFallsBackToFullOnHighChurn) {
  ServiceOptions options = dense_options();
  options.full_rescreen_fraction = 0.25;
  ScreeningService service(options);
  const auto population = generate_population({200, 5});
  service.upsert(population);
  service.screen();

  // Touch half the catalog: auto mode must choose the full path.
  std::vector<Satellite> delta(population.begin(),
                               population.begin() + 100);
  for (Satellite& sat : delta) sat.elements.mean_anomaly += 0.01;
  service.upsert(delta);
  const ServiceReport report = service.screen();
  EXPECT_FALSE(report.incremental);
  EXPECT_EQ(service.stats().full_screens, 2u);
  EXPECT_EQ(service.stats().incremental_screens, 0u);
}

TEST(ScreeningService, RemovalOnlyDeltaEvictsWithoutRescreening) {
  ScreeningService service(dense_options());
  service.upsert(generate_population({1200, 11}));
  const ServiceReport baseline = service.screen();
  ASSERT_FALSE(baseline.conjunctions.empty());  // workload sanity

  // Remove one member of some baseline conjunction.
  const std::uint32_t victim = baseline.conjunctions.front().id_a;
  ASSERT_TRUE(service.remove(victim));
  const ServiceReport report = service.screen(ScreenMode::kIncremental);

  EXPECT_TRUE(report.incremental);
  EXPECT_EQ(report.refreshed, 0u);
  EXPECT_GE(report.evicted, 1u);
  // No pipeline pass ran: phase timings stay zero.
  EXPECT_EQ(report.timings.insertion, 0.0);

  expect_equivalent(report.conjunctions, service.reference_conjunctions(),
                    "removal-only");
}

/// The acceptance test: randomized delta sequences (adds, updates,
/// removals), each followed by a forced-incremental screen whose merged
/// report must equal a from-scratch screen of the same snapshot.
TEST(ScreeningService, IncrementalMatchesFromScratchOverRandomDeltas) {
  ScreeningService service(dense_options());
  const auto population = generate_population({1500, 23});
  service.upsert(population);

  const ServiceReport baseline = service.screen();
  ASSERT_FALSE(baseline.conjunctions.empty());  // workload sanity
  expect_equivalent(baseline.conjunctions, service.reference_conjunctions(),
                    "baseline");

  Rng rng(99);
  std::uint32_t next_id = 1000000;
  for (int round = 0; round < 3; ++round) {
    // Updates: small maneuvers on random objects.
    const auto snap = service.store().snapshot();
    std::vector<Satellite> updates;
    for (int k = 0; k < 12; ++k) {
      Satellite sat = snap->satellites[rng.uniform_index(snap->size())];
      sat.elements.mean_anomaly += rng.uniform(-0.05, 0.05);
      sat.elements.raan += rng.uniform(-0.02, 0.02);
      updates.push_back(sat);
    }
    service.upsert(updates);

    // Removals: random objects (skip ones already gone this round).
    for (int k = 0; k < 2; ++k) {
      const auto current = service.store().snapshot();
      const Satellite& victim =
          current->satellites[rng.uniform_index(current->size())];
      service.remove(victim.id);
    }

    // Adds: new ids on perturbed clones of existing orbits.
    std::vector<Satellite> adds;
    for (int k = 0; k < 2; ++k) {
      Satellite sat = snap->satellites[rng.uniform_index(snap->size())];
      sat.id = next_id++;
      sat.elements.raan += rng.uniform(0.0, kTwoPi);
      sat.elements.mean_anomaly += rng.uniform(0.0, kTwoPi);
      adds.push_back(sat);
    }
    service.upsert(adds);

    const ServiceReport report = service.screen(ScreenMode::kIncremental);
    EXPECT_TRUE(report.incremental) << "round " << round;
    EXPECT_GE(report.dirty, updates.size()) << "round " << round;

    expect_equivalent(report.conjunctions, service.reference_conjunctions(),
                      ("round " + std::to_string(round)).c_str());
  }
  EXPECT_EQ(service.stats().incremental_screens, 3u);
}

TEST(ScreeningService, DirtyObjectCrossingCellFaceAtSampleInstant) {
  // Edge case of the dirty mask: a delta moves an object across a grid-cell
  // boundary exactly at a sample instant. Its old-cell neighbours and its
  // new-cell neighbours are different sets; the incremental re-screen must
  // still pair it with the old ones (via the neighbour scan of the cells it
  // left) and match the from-scratch reference exactly.
  const ServiceOptions options = dense_options();
  const double cell = grid_cell_size(options.config.threshold_km,
                                     options.config.seconds_per_sample);
  // A grid-cell face at LEO radius: x* = j * cell - half_extent. Computed
  // from grid_cell_size so the test tracks Eq. (1) instead of a constant.
  const double face =
      std::ceil((kSimulationHalfExtent + 7000.0) / cell) * cell -
      kSimulationHalfExtent;

  // A sits 100 m inside the face on the +x axis at t = 0 — which is a
  // sample instant (circular equatorial orbit, M0 = 0). B shadows it from
  // just beyond the face: the pair straddles the boundary permanently.
  Satellite a;
  a.id = 900001;  // clear of the generated population's id range
  a.elements.semi_major_axis = face - 0.1;
  Satellite b;
  b.id = 900002;
  b.elements.semi_major_axis = face + 0.5;
  b.elements.mean_anomaly = 2e-4;  // ~1.4 km along-track

  ScreeningService service(options);
  service.upsert(std::vector<Satellite>{a, b});
  service.upsert(generate_population({300, 5}));  // uninvolved traffic

  const ServiceReport baseline = service.screen();
  const auto involves_pair = [](const std::vector<IdConjunction>& list) {
    return std::any_of(list.begin(), list.end(), [](const IdConjunction& c) {
      return c.id_a == 900001 && c.id_b == 900002;
    });
  };
  ASSERT_TRUE(involves_pair(baseline.conjunctions));

  // The maneuver: A jumps 200 m outward, crossing the face. At the t = 0
  // sample it now quantizes into the neighbouring cell.
  a.elements.semi_major_axis = face + 0.1;
  service.upsert(a);
  const ServiceReport report = service.screen(ScreenMode::kIncremental);
  EXPECT_TRUE(report.incremental);
  EXPECT_GE(report.dirty, 1u);

  EXPECT_TRUE(involves_pair(report.conjunctions));
  expect_equivalent(report.conjunctions, service.reference_conjunctions(),
                    "cell-face crossing");

  // And back across, for the opposite transition.
  a.elements.semi_major_axis = face - 0.1;
  service.upsert(a);
  const ServiceReport back = service.screen(ScreenMode::kIncremental);
  EXPECT_TRUE(involves_pair(back.conjunctions));
  expect_equivalent(back.conjunctions, service.reference_conjunctions(),
                    "cell-face return");
}

TEST(ScreeningService, StatsCountersTrackActivity) {
  ScreeningService service(dense_options());
  const auto population = generate_population({100, 7});
  service.upsert(population);
  service.upsert(population.front());
  service.remove(population.front().id);
  service.screen();

  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.upserts, population.size() + 1);
  EXPECT_EQ(stats.removals, 1u);
  EXPECT_EQ(stats.full_screens, 1u);
  EXPECT_EQ(stats.last_epoch_screened, service.store().epoch());
  EXPECT_GT(stats.total_screen_seconds, 0.0);
}

}  // namespace
}  // namespace scod
