#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pca/brent.hpp"
#include "pca/refine.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"

namespace scod {
namespace {

TEST(Brent, QuadraticMinimum) {
  const auto f = [](double x) { return (x - 3.5) * (x - 3.5) + 2.0; };
  const MinimizeResult r = brent_minimize(f, 0.0, 10.0, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.5, 1e-8);
  EXPECT_NEAR(r.value, 2.0, 1e-12);
}

TEST(Brent, NonSmoothFunction) {
  const auto f = [](double x) { return std::abs(x - 1.25) + 0.5; };
  const MinimizeResult r = brent_minimize(f, -4.0, 6.0, 1e-9);
  EXPECT_NEAR(r.x, 1.25, 1e-7);
  EXPECT_NEAR(r.value, 0.5, 1e-7);
}

TEST(Brent, CosineMinimum) {
  const MinimizeResult r = brent_minimize([](double x) { return std::cos(x); },
                                          2.0, 5.0, 1e-12);
  EXPECT_NEAR(r.x, kPi, 1e-8);
  EXPECT_NEAR(r.value, -1.0, 1e-12);
}

TEST(Brent, ReversedBoundsAccepted) {
  const auto f = [](double x) { return x * x; };
  const MinimizeResult r = brent_minimize(f, 2.0, -2.0, 1e-10);
  EXPECT_NEAR(r.x, 0.0, 1e-8);
}

TEST(Brent, MinimumAtBoundary) {
  // Monotone increasing: minimum is the left endpoint.
  const MinimizeResult r = brent_minimize([](double x) { return x; }, 1.0, 4.0, 1e-10);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.value, r.x, 1e-12);
}

TEST(Brent, UsesFewerEvaluationsThanGolden) {
  // On smooth functions the parabolic steps should beat pure golden
  // section by a wide margin.
  const auto f = [](double x) { return std::pow(x - 2.0, 4) + (x - 2.0) * (x - 2.0); };
  const MinimizeResult brent = brent_minimize(f, -10.0, 10.0, 1e-10);
  const MinimizeResult golden = golden_section_minimize(f, -10.0, 10.0, 1e-10);
  EXPECT_NEAR(brent.x, golden.x, 1e-6);
  EXPECT_LT(brent.iterations, golden.iterations);
}

class BrentVsGolden : public testing::TestWithParam<double> {};

TEST_P(BrentVsGolden, AgreeOnShiftedQuartics) {
  const double shift = GetParam();
  const auto f = [shift](double x) {
    return std::pow(x - shift, 4) - 2.0 * std::pow(x - shift, 2) + 0.3 * (x - shift);
  };
  // This function has two local minima; restrict to a unimodal bracket
  // right of the maximum.
  const MinimizeResult b = brent_minimize(f, shift, shift + 3.0, 1e-10);
  const MinimizeResult g = golden_section_minimize(f, shift, shift + 3.0, 1e-10);
  EXPECT_NEAR(b.x, g.x, 1e-6);
  EXPECT_NEAR(b.value, g.value, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shifts, BrentVsGolden,
                         testing::Values(-20.0, -1.0, 0.0, 0.7, 5.0, 300.0));

TEST(GridSearchRadius, TwoCellCrossingTime) {
  EXPECT_DOUBLE_EQ(grid_search_radius(10.0, 5.0), 4.0);
  EXPECT_DOUBLE_EQ(grid_search_radius(9.8, 7.8), 2.0 * 9.8 / 7.8);
}

class RefineFixture : public testing::Test {
 protected:
  RefineFixture() {
    // Two circular orbits in perpendicular planes with equal radius: they
    // intersect on a line, and with the right phasing the satellites pass
    // the intersection nearly simultaneously -> a deep, well-defined PCA.
    sats_.push_back({0, {7000.0, 0.0001, 0.0, 0.0, 0.0, 0.0}});
    sats_.push_back({1, {7000.0, 0.0001, kPi / 2.0, 0.0, 0.0, 0.01}});
    prop_ = std::make_unique<TwoBodyPropagator>(sats_, solver_);
  }

  NewtonKeplerSolver solver_;
  std::vector<Satellite> sats_;
  std::unique_ptr<TwoBodyPropagator> prop_;
};

TEST_F(RefineFixture, FindsInteriorMinimum) {
  // Locate the true minimum with a fine scan, then check refine_candidate
  // finds it from a nearby sample point.
  double best_t = 0.0, best_d = 1e300;
  for (double t = 1000.0; t < 4000.0; t += 0.5) {
    const double d = prop_->distance(0, 1, t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }
  const auto enc = refine_candidate(*prop_, 0, 1, best_t + 3.0, 30.0, 0.0, 5000.0);
  ASSERT_TRUE(enc.has_value());
  EXPECT_NEAR(enc->tca, best_t, 1.0);
  EXPECT_LE(enc->pca, best_d + 1e-6);
}

TEST_F(RefineFixture, DiscardsBoundaryMinimumOwnedByNeighbourInterval) {
  // Place the interval so the distance still falls at its right edge; the
  // candidate must be discarded (the neighbouring interval owns the
  // minimum).
  double best_t = 0.0, best_d = 1e300;
  for (double t = 1000.0; t < 4000.0; t += 0.5) {
    const double d = prop_->distance(0, 1, t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }
  const double center = best_t - 100.0;  // minimum lies 100 s right of center
  const auto enc = refine_candidate(*prop_, 0, 1, center, 50.0, 0.0, 5000.0);
  EXPECT_FALSE(enc.has_value());
}

TEST_F(RefineFixture, SpanBoundaryMinimumIsClamped) {
  // If the span itself ends before the approach completes, the clamped
  // edge minimum must be reported, not discarded (there is no neighbouring
  // interval beyond the span).
  double best_t = 0.0, best_d = 1e300;
  for (double t = 1000.0; t < 4000.0; t += 0.5) {
    const double d = prop_->distance(0, 1, t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }
  const double span_end = best_t - 20.0;  // span ends while still approaching
  const auto enc = refine_candidate(*prop_, 0, 1, span_end - 5.0, 10.0, 0.0, span_end);
  ASSERT_TRUE(enc.has_value());
  EXPECT_NEAR(enc->tca, span_end, 1.0);
}

TEST_F(RefineFixture, RefineOnIntervalAgrees) {
  double best_t = 0.0, best_d = 1e300;
  for (double t = 1000.0; t < 4000.0; t += 0.5) {
    const double d = prop_->distance(0, 1, t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }
  const auto enc = refine_on_interval(*prop_, 0, 1, best_t - 40.0, best_t + 40.0);
  ASSERT_TRUE(enc.has_value());
  EXPECT_NEAR(enc->tca, best_t, 1.0);

  // Degenerate interval.
  EXPECT_FALSE(refine_on_interval(*prop_, 0, 1, 10.0, 10.0).has_value());
  EXPECT_FALSE(refine_on_interval(*prop_, 0, 1, 10.0, 5.0).has_value());
}

TEST(MergeEncounters, CollapsesNearbyMinima) {
  std::vector<Encounter> raw{{100.0, 5.0}, {100.3, 4.0}, {500.0, 7.0}, {99.8, 6.0}};
  const auto merged = merge_encounters(raw, 1.0);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_NEAR(merged[0].tca, 100.3, 1e-12);  // kept the smallest PCA
  EXPECT_DOUBLE_EQ(merged[0].pca, 4.0);
  EXPECT_DOUBLE_EQ(merged[1].tca, 500.0);
}

TEST(MergeEncounters, EmptyAndSingle) {
  EXPECT_TRUE(merge_encounters({}, 1.0).empty());
  const auto one = merge_encounters({{42.0, 1.0}}, 1.0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].tca, 42.0);
}

}  // namespace
}  // namespace scod
