#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "util/constants.hpp"
#include "util/rng.hpp"
#include "verify/adversarial.hpp"
#include "verify/case_io.hpp"
#include "verify/differential.hpp"
#include "verify/oracle.hpp"
#include "verify/shrink.hpp"

namespace scod::verify {
namespace {

AdversarialConfig small_config(std::uint64_t seed) {
  AdversarialConfig config;
  config.seed = seed;
  config.background = 8;
  config.per_regime = 1;
  config.t_end = 900.0;
  return config;
}

// ---------------------------------------------------------------------------
// Adversarial generator

TEST(AdversarialGenerator, CoversEveryRegime) {
  const FuzzCase fuzz_case = generate_case(small_config(7));
  ASSERT_EQ(fuzz_case.satellites.size(), fuzz_case.regimes.size());

  std::set<OrbitRegime> seen(fuzz_case.regimes.begin(), fuzz_case.regimes.end());
  for (const OrbitRegime regime : kAllRegimes) {
    EXPECT_TRUE(seen.count(regime)) << regime_name(regime);
  }
  // 8 background + per_regime * (1 + 1 + 2 + 1 + 2 + 1) engineered objects.
  EXPECT_EQ(fuzz_case.size(), 8u + 8u);
  // Ids are the dense indices of generation order, each exactly once.
  std::set<std::uint32_t> ids;
  for (const Satellite& sat : fuzz_case.satellites) ids.insert(sat.id);
  EXPECT_EQ(ids.size(), fuzz_case.size());
}

TEST(AdversarialGenerator, DeterministicInSeed) {
  const FuzzCase a = generate_case(small_config(42));
  const FuzzCase b = generate_case(small_config(42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.satellites[i].elements, b.satellites[i].elements) << i;
  }
  const FuzzCase c = generate_case(small_config(43));
  bool any_different = c.size() != a.size();
  for (std::size_t i = 0; !any_different && i < a.size(); ++i) {
    any_different = !(a.satellites[i].elements == c.satellites[i].elements);
  }
  EXPECT_TRUE(any_different);
}

TEST(AdversarialGenerator, DeltaReferencesLiveIdsOnly) {
  const FuzzCase fuzz_case = generate_case(small_config(3));
  std::set<std::uint32_t> ids;
  for (const Satellite& sat : fuzz_case.satellites) ids.insert(sat.id);

  EXPECT_FALSE(fuzz_case.delta_updates.empty());
  for (const Satellite& sat : fuzz_case.delta_updates) {
    EXPECT_TRUE(ids.count(sat.id)) << sat.id;
  }
  for (const std::uint32_t id : fuzz_case.delta_removals) {
    EXPECT_TRUE(ids.count(id)) << id;
  }
  ASSERT_FALSE(fuzz_case.delta_adds.empty());
  for (const Satellite& sat : fuzz_case.delta_adds) {
    EXPECT_FALSE(ids.count(sat.id)) << sat.id;  // adds use fresh ids
  }
}

TEST(AdversarialGenerator, RegimeNamesRoundTrip) {
  for (const OrbitRegime regime : kAllRegimes) {
    EXPECT_EQ(regime_from_name(regime_name(regime)), regime);
  }
  EXPECT_THROW(regime_from_name("banana"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dense-scan oracle

TEST(Oracle, FindsHandBuiltEncounterAtKnownTimeAndDepth) {
  // A circular LEO target plus an interceptor engineered to pass 2 km from
  // it at t = 600 s: the oracle must report exactly that encounter.
  KeplerElements target;
  target.semi_major_axis = 7000.0;
  target.eccentricity = 1e-4;
  target.inclination = 0.9;
  target.raan = 1.0;
  target.arg_perigee = 0.3;
  target.mean_anomaly = 2.0;

  Rng rng(5);
  const Satellite interceptor = make_interceptor(target, 600.0, 2.0, rng, 1);
  const std::vector<Satellite> sats{{0, target}, interceptor};

  ScreeningConfig config;
  config.threshold_km = 5.0;
  config.t_begin = 0.0;
  config.t_end = 1200.0;

  const std::vector<Conjunction> events = oracle_conjunctions(sats, config);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sat_a, 0u);
  EXPECT_EQ(events[0].sat_b, 1u);
  EXPECT_NEAR(events[0].tca, 600.0, 2.0);
  // The construction guarantees a sub-|offset| miss at t_star.
  EXPECT_LE(events[0].pca, 2.0 + 1e-6);
  EXPECT_GT(events[0].pca, 0.01);
}

TEST(Oracle, SilentOnWellSeparatedPair) {
  KeplerElements a;
  a.semi_major_axis = 7000.0;
  a.inclination = 0.9;
  KeplerElements b = a;
  b.semi_major_axis = 7300.0;  // 300 km of radial separation at all times

  ScreeningConfig config;
  config.threshold_km = 5.0;
  config.t_end = 1800.0;
  const std::vector<Satellite> sats{{0, a}, {1, b}};
  EXPECT_TRUE(oracle_conjunctions(sats, config).empty());
}

TEST(Oracle, ClampsSpanEdgeMinimumToBoundary) {
  // Coplanar pair 1.5 km apart that slowly drifts: the distance minimum
  // over the span sits exactly at t_begin and must be reported there.
  KeplerElements lead;
  lead.semi_major_axis = 7000.0;
  lead.inclination = 0.9;
  KeplerElements trail = lead;
  trail.semi_major_axis += 1.5;

  ScreeningConfig config;
  config.threshold_km = 5.0;
  config.t_end = 600.0;
  const std::vector<Satellite> sats{{0, lead}, {1, trail}};

  const std::vector<Conjunction> events = oracle_conjunctions(sats, config);
  ASSERT_FALSE(events.empty());
  EXPECT_NEAR(events[0].tca, config.t_begin, 1.0);
  EXPECT_NEAR(events[0].pca, 1.5, 0.1);
}

TEST(Oracle, SlackRecordsNearMissesAboveThreshold) {
  KeplerElements target;
  target.semi_major_axis = 7000.0;
  target.inclination = 1.1;
  target.mean_anomaly = 0.5;

  Rng rng(11);
  // 6 km miss: above the 5 km threshold but inside slack * threshold.
  const Satellite graze = make_interceptor(target, 400.0, 6.0, rng, 1);
  const std::vector<Satellite> sats{{0, target}, graze};

  ScreeningConfig config;
  config.threshold_km = 5.0;
  config.t_end = 800.0;

  OracleOptions tight;
  tight.slack = 1.0;
  EXPECT_TRUE(oracle_conjunctions(sats, config, tight).empty());

  OracleOptions slack;
  slack.slack = 1.5;
  const std::vector<Conjunction> events = oracle_conjunctions(sats, config, slack);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].pca, config.threshold_km);
  EXPECT_LT(events[0].pca, slack.slack * config.threshold_km);
}

// ---------------------------------------------------------------------------
// Differential runner

TEST(Differential, CleanCaseAgreesAcrossAllVariants) {
  const CaseResult result = run_differential(generate_case(small_config(17)));
  EXPECT_TRUE(result.ok()) << result.divergences.size() << " divergence(s), first: "
                           << (result.divergences.empty()
                                   ? ""
                                   : result.divergences[0].detail);
  EXPECT_GT(result.oracle_events, 0u);  // the regimes guarantee activity
}

TEST(Differential, RunStatsAggregateAndSerializeToJson) {
  RunStats stats;
  CaseResult clean;
  clean.oracle_events = 3;
  clean.must_find = 2;
  clean.near_misses = 1;
  stats.add(clean);

  CaseResult bad = clean;
  bad.divergences.push_back({"grid", Divergence::Kind::kMissed, {}, "x"});
  bad.divergences.push_back({"sieve", Divergence::Kind::kSpurious, {}, "y"});
  stats.add(bad);

  EXPECT_EQ(stats.cases, 2u);
  EXPECT_EQ(stats.divergent_cases, 1u);
  EXPECT_EQ(stats.divergences, 2u);
  EXPECT_EQ(stats.oracle_events, 6u);

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"cases\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"divergent_cases\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"grid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sieve\":1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Shrinker

TEST(Shrinker, ConvergesToMinimalPairOnInjectedDivergence) {
  // Inject a synthetic divergence that depends on exactly two objects: the
  // shrinker must strip everything else and report a 1-minimal case.
  const FuzzCase fuzz_case = generate_case(small_config(29));
  const std::uint32_t id_a = fuzz_case.satellites[3].id;
  const std::uint32_t id_b = fuzz_case.satellites[11].id;
  const auto depends_on_pair = [&](const FuzzCase& candidate) {
    bool has_a = false, has_b = false;
    for (const Satellite& sat : candidate.satellites) {
      has_a |= sat.id == id_a;
      has_b |= sat.id == id_b;
    }
    return has_a && has_b;
  };

  const ShrinkResult result = shrink_case(fuzz_case, depends_on_pair);
  EXPECT_EQ(result.initial_objects, fuzz_case.size());
  EXPECT_EQ(result.minimized.size(), 2u);
  EXPECT_TRUE(depends_on_pair(result.minimized));
  EXPECT_GT(result.checks, 0u);
  // The window-narrowing phase must not produce an empty span.
  EXPECT_LT(result.minimized.config.t_begin, result.minimized.config.t_end);
}

TEST(Shrinker, PrunesDeltaRecordsOfDroppedObjects) {
  const FuzzCase fuzz_case = generate_case(small_config(31));
  ASSERT_FALSE(fuzz_case.delta_updates.empty());
  const std::uint32_t keep_a = fuzz_case.satellites[0].id;
  const std::uint32_t keep_b = fuzz_case.satellites[1].id;
  const auto predicate = [&](const FuzzCase& candidate) {
    bool has_a = false, has_b = false;
    for (const Satellite& sat : candidate.satellites) {
      has_a |= sat.id == keep_a;
      has_b |= sat.id == keep_b;
    }
    return has_a && has_b;
  };

  const FuzzCase minimized = shrink_case(fuzz_case, predicate).minimized;
  std::set<std::uint32_t> surviving;
  for (const Satellite& sat : minimized.satellites) surviving.insert(sat.id);
  for (const Satellite& sat : minimized.delta_updates) {
    EXPECT_TRUE(surviving.count(sat.id)) << sat.id;
  }
  for (const std::uint32_t id : minimized.delta_removals) {
    EXPECT_TRUE(surviving.count(id)) << id;
  }
}

TEST(Shrinker, RespectsCheckBudget) {
  const FuzzCase fuzz_case = generate_case(small_config(37));
  ShrinkOptions options;
  options.max_checks = 5;
  std::size_t calls = 0;
  const ShrinkResult result = shrink_case(
      fuzz_case,
      [&](const FuzzCase&) {
        ++calls;
        return true;
      },
      options);
  EXPECT_LE(result.checks, options.max_checks);
  EXPECT_LE(calls, options.max_checks);
  EXPECT_GE(result.minimized.size(), 2u);
}

// ---------------------------------------------------------------------------
// Case files

TEST(CaseIo, SaveLoadRoundTripsBitExactly) {
  const FuzzCase original = generate_case(small_config(53));
  const std::string path = testing::TempDir() + "/scod_verify_roundtrip.case";
  save_case(path, original);
  const FuzzCase loaded = load_case(path);

  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.config.threshold_km, original.config.threshold_km);
  EXPECT_EQ(loaded.config.t_begin, original.config.t_begin);
  EXPECT_EQ(loaded.config.t_end, original.config.t_end);
  EXPECT_EQ(loaded.config.seconds_per_sample, original.config.seconds_per_sample);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.satellites[i].id, original.satellites[i].id);
    EXPECT_EQ(loaded.satellites[i].elements, original.satellites[i].elements) << i;
    EXPECT_EQ(loaded.regimes[i], original.regimes[i]) << i;
  }
  ASSERT_EQ(loaded.delta_updates.size(), original.delta_updates.size());
  for (std::size_t i = 0; i < original.delta_updates.size(); ++i) {
    EXPECT_EQ(loaded.delta_updates[i].elements, original.delta_updates[i].elements);
  }
  EXPECT_EQ(loaded.delta_removals, original.delta_removals);
  ASSERT_EQ(loaded.delta_adds.size(), original.delta_adds.size());
  std::remove(path.c_str());
}

TEST(CaseIo, ReplayedCaseScreensIdentically) {
  // The property deterministic replay rests on: a saved case produces the
  // same differential outcome as the in-memory original.
  const FuzzCase original = generate_case(small_config(59));
  const std::string path = testing::TempDir() + "/scod_verify_replay.case";
  save_case(path, original);
  const FuzzCase loaded = load_case(path);
  std::remove(path.c_str());

  const ScreeningConfig& config = original.config;
  const std::vector<Conjunction> a = oracle_conjunctions(original.satellites, config);
  const std::vector<Conjunction> b = oracle_conjunctions(loaded.satellites, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sat_a, b[i].sat_a);
    EXPECT_EQ(a[i].sat_b, b[i].sat_b);
    EXPECT_EQ(a[i].tca, b[i].tca) << i;  // bit-exact, not just close
    EXPECT_EQ(a[i].pca, b[i].pca) << i;
  }
}

TEST(CaseIo, RejectsMalformedFiles) {
  const std::string path = testing::TempDir() + "/scod_verify_bad.case";
  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs("not a case file\n", out);
    std::fclose(out);
  }
  EXPECT_THROW(load_case(path), std::runtime_error);

  {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs("scod-fuzz-case v1\nconfig 5 0 600 4\nwat 1 2 3\n", out);
    std::fclose(out);
  }
  EXPECT_THROW(load_case(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_case(path), std::runtime_error);  // missing file
}

}  // namespace
}  // namespace scod::verify
