#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/screen.hpp"
#include "obs/telemetry.hpp"
#include "population/generator.hpp"
#include "service/screening_service.hpp"
#include "verify/case_io.hpp"

#ifndef SCOD_CORPUS_DIR
#error "SCOD_CORPUS_DIR must be defined by the build"
#endif

namespace scod {
namespace {

using obs::Counter;

std::uint64_t histogram_total(const obs::TelemetrySnapshot& snap) {
  return std::accumulate(snap.probe_histogram.begin(),
                         snap.probe_histogram.end(), std::uint64_t{0});
}

/// Every test runs with counters freshly zeroed and enabled; telemetry is
/// switched back off on exit so the rest of the binary pays nothing.
class Telemetry : public testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled()) GTEST_SKIP() << "built with SCOD_TELEMETRY=OFF";
    obs::reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    if (obs::compiled()) {
      obs::set_enabled(false);
      obs::reset();
    }
  }

  static ScreeningConfig config(double threshold_km, double span,
                                double sps) {
    ScreeningConfig cfg;
    cfg.threshold_km = threshold_km;
    cfg.t_begin = 0.0;
    cfg.t_end = span;
    cfg.seconds_per_sample = sps;
    return cfg;
  }
};

TEST_F(Telemetry, RuntimeDisabledCountsNothing) {
  obs::set_enabled(false);
  const auto sats = generate_population({300, 7});
  screen(sats, config(10.0, 1800.0, 8.0), Variant::kGrid);
  const obs::TelemetrySnapshot snap = obs::snapshot();
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    EXPECT_EQ(snap.counters[i], 0u)
        << "counter " << obs::counter_name(static_cast<Counter>(i))
        << " incremented while telemetry was disabled";
  }
  EXPECT_EQ(histogram_total(snap), 0u);
}

TEST_F(Telemetry, ResetZeroesEverything) {
  const auto sats = generate_population({300, 7});
  screen(sats, config(10.0, 1800.0, 8.0), Variant::kGrid);
  ASSERT_GT(obs::snapshot().value(Counter::kGridInserts), 0u);
  obs::reset();
  const obs::TelemetrySnapshot snap = obs::snapshot();
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    EXPECT_EQ(snap.counters[i], 0u);
  }
  EXPECT_EQ(histogram_total(snap), 0u);
}

// The grid detection funnel is conservative: every tested pair is either
// masked clean, distance-prefiltered, emitted as a fresh candidate, or
// deduplicated — and the emitted count is exactly the pipeline's own
// candidate statistic.
TEST_F(Telemetry, GridFunnelConservation) {
  const auto sats = generate_population({400, 11});
  const ScreeningReport report =
      screen(sats, config(10.0, 1800.0, 8.0), Variant::kGrid);
  const obs::TelemetrySnapshot snap = obs::snapshot();

  const std::uint64_t tested = snap.value(Counter::kPairsTested);
  const std::uint64_t masked = snap.value(Counter::kPairsMaskedClean);
  const std::uint64_t prefiltered = snap.value(Counter::kPairsPrefiltered);
  const std::uint64_t emitted = snap.value(Counter::kCandidatesEmitted);
  const std::uint64_t deduped = snap.value(Counter::kCandidatesDeduplicated);
  ASSERT_GT(tested, 0u);
  EXPECT_EQ(tested, masked + prefiltered + emitted + deduped);
  EXPECT_EQ(emitted, report.stats.candidates);

  // Insertion side: one grid insert per propagated sample, and the probe
  // histogram partitions the inserts.
  const std::uint64_t samples = snap.value(Counter::kSamplesPropagated);
  const std::uint64_t inserts = snap.value(Counter::kGridInserts);
  EXPECT_EQ(samples,
            static_cast<std::uint64_t>(report.stats.total_samples) *
                report.stats.satellites);
  EXPECT_EQ(inserts, samples);
  EXPECT_EQ(histogram_total(snap), inserts);
  EXPECT_EQ(snap.value(Counter::kGridPoolRejects), 0u);

  // Refinement tail is monotone down to the reported set.
  const std::uint64_t refinements = snap.value(Counter::kRefinements);
  const std::uint64_t raw = snap.value(Counter::kConjunctionsRaw);
  const std::uint64_t reported = snap.value(Counter::kConjunctionsReported);
  EXPECT_GE(refinements, raw);
  EXPECT_GE(raw, reported);
  EXPECT_EQ(reported, report.conjunctions.size());
  EXPECT_EQ(refinements, report.stats.refinements);

  EXPECT_LE(snap.value(Counter::kCellsOccupied),
            snap.value(Counter::kCellsScanned));

  // Stage timers saw the phases that ran.
  EXPECT_GT(snap.value(Counter::kTimeInsertionNs), 0u);
  EXPECT_GT(snap.value(Counter::kTimeDetectionNs), 0u);
}

// Eq. 1 sizes cells at g_c = d + 7.8 s_ps and the pipeline doubles the
// slot table, so scanned-slot occupancy stays at or below ~one half.
TEST_F(Telemetry, GridOccupancyMatchesEq1Sizing) {
  const auto sats = generate_population({600, 3});
  screen(sats, config(10.0, 1800.0, 8.0), Variant::kGrid);
  const obs::TelemetrySnapshot snap = obs::snapshot();
  ASSERT_GT(snap.value(Counter::kCellsScanned), 0u);
  EXPECT_GT(snap.occupancy(), 0.0);
  EXPECT_LE(snap.occupancy(), 0.55);
  EXPECT_GE(snap.mean_probe_length(), 0.0);
}

// The classical filter chain is conservative too: every pair entering it
// is rejected by exactly one filter or survives to refinement.
TEST_F(Telemetry, HybridFilterConservation) {
  const auto sats = generate_population({400, 11});
  const ScreeningReport report =
      screen(sats, config(10.0, 1800.0, 16.0), Variant::kHybrid);
  const obs::TelemetrySnapshot snap = obs::snapshot();

  const std::uint64_t in = snap.value(Counter::kFilterPairsIn);
  const std::uint64_t ap = snap.value(Counter::kFilterApogeePerigeeRejects);
  const std::uint64_t path_rej = snap.value(Counter::kFilterPathRejects);
  const std::uint64_t win_rej = snap.value(Counter::kFilterWindowRejects);
  const std::uint64_t survivors = snap.value(Counter::kFilterSurvivors);
  ASSERT_GT(in, 0u);
  EXPECT_EQ(in, ap + path_rej + win_rej + survivors);
  EXPECT_EQ(in, report.stats.pairs_examined);
  EXPECT_EQ(ap, report.stats.filtered_apogee_perigee);
  EXPECT_EQ(path_rej, report.stats.filtered_path);
  EXPECT_EQ(win_rej, report.stats.filtered_windows);
  EXPECT_EQ(snap.value(Counter::kFilterCoplanarPairs),
            report.stats.coplanar_pairs);

  // Filter monotonicity: each stage sees no more pairs than the one before.
  const std::uint64_t path_checks = snap.value(Counter::kFilterPathChecks);
  const std::uint64_t win_checks = snap.value(Counter::kFilterWindowChecks);
  EXPECT_EQ(path_checks, in - ap);
  EXPECT_LE(win_checks, path_checks);
  EXPECT_LE(win_rej, win_checks);
  EXPECT_LE(survivors, in);

  EXPECT_EQ(snap.value(Counter::kConjunctionsReported),
            report.conjunctions.size());
  EXPECT_GT(snap.value(Counter::kTimeFilteringNs), 0u);
}

TEST_F(Telemetry, LegacyFilterConservation) {
  const auto sats = generate_population({200, 5});
  const ScreeningReport report =
      screen(sats, config(10.0, 1800.0, 16.0), Variant::kLegacy);
  const obs::TelemetrySnapshot snap = obs::snapshot();

  const std::uint64_t in = snap.value(Counter::kFilterPairsIn);
  const std::uint64_t ap = snap.value(Counter::kFilterApogeePerigeeRejects);
  const std::uint64_t path_rej = snap.value(Counter::kFilterPathRejects);
  const std::uint64_t win_rej = snap.value(Counter::kFilterWindowRejects);
  const std::uint64_t survivors = snap.value(Counter::kFilterSurvivors);
  ASSERT_EQ(in, static_cast<std::uint64_t>(sats.size()) * (sats.size() - 1) / 2);
  EXPECT_EQ(in, ap + path_rej + win_rej + survivors);
  EXPECT_EQ(snap.value(Counter::kFilterPathChecks), in - ap);

  // The legacy funnel never touches the grid-side counters.
  EXPECT_EQ(snap.value(Counter::kPairsTested), 0u);
  EXPECT_EQ(snap.value(Counter::kGridInserts), 0u);

  EXPECT_GE(snap.value(Counter::kRefinements),
            snap.value(Counter::kConjunctionsRaw));
  EXPECT_EQ(snap.value(Counter::kConjunctionsReported),
            report.conjunctions.size());
}

TEST_F(Telemetry, SieveFunnelConservation) {
  const auto sats = generate_population({300, 13});
  const ScreeningReport report =
      screen(sats, config(10.0, 1800.0, 8.0), Variant::kSieve);
  const obs::TelemetrySnapshot snap = obs::snapshot();

  const std::uint64_t in = snap.value(Counter::kFilterPairsIn);
  const std::uint64_t ap = snap.value(Counter::kFilterApogeePerigeeRejects);
  const std::uint64_t survivors = snap.value(Counter::kFilterSurvivors);
  ASSERT_GT(in, 0u);
  EXPECT_EQ(in, ap + survivors);
  EXPECT_GT(snap.value(Counter::kSieveDistanceEvals), 0u);
  EXPECT_EQ(snap.value(Counter::kRefinements), report.stats.refinements);
  EXPECT_EQ(snap.value(Counter::kConjunctionsReported),
            report.conjunctions.size());
}

// Grid and hybrid must report the same physical conjunctions while their
// telemetry funnels look completely different: the grid burns pair tests
// in cells, the hybrid burns classical filter evaluations. Events within
// 10% of the threshold are exempt from the cross-check (refinement jitter
// legitimately flips them), matching the accuracy-suite convention.
TEST_F(Telemetry, GridAndHybridAgreeWithDifferentFunnels) {
  constexpr double kThreshold = 10.0;
  const auto sats = generate_population({400, 17});
  const ScreeningReport grid_report =
      screen(sats, config(kThreshold, 1800.0, 4.0), Variant::kGrid);
  const obs::TelemetrySnapshot grid_snap = obs::snapshot();

  obs::reset();
  const ScreeningReport hybrid_report =
      screen(sats, config(kThreshold, 1800.0, 16.0), Variant::kHybrid);
  const obs::TelemetrySnapshot hybrid_snap = obs::snapshot();

  const auto confident = [&](const std::vector<Conjunction>& all) {
    std::vector<Conjunction> out;
    for (const Conjunction& c : all) {
      if (c.pca <= 0.9 * kThreshold) out.push_back(c);
    }
    return out;
  };
  const ConjunctionSetDiff grid_in_hybrid = compare_conjunction_sets(
      confident(grid_report.conjunctions), hybrid_report.conjunctions);
  EXPECT_TRUE(grid_in_hybrid.only_in_first.empty())
      << grid_in_hybrid.only_in_first.size() << " grid events hybrid missed";
  EXPECT_TRUE(grid_in_hybrid.pca_mismatches.empty());
  const ConjunctionSetDiff hybrid_in_grid = compare_conjunction_sets(
      confident(hybrid_report.conjunctions), grid_report.conjunctions);
  EXPECT_TRUE(hybrid_in_grid.only_in_first.empty())
      << hybrid_in_grid.only_in_first.size() << " hybrid events grid missed";

  // Same answer, different funnels: the pure grid never consults the
  // classical filters, while the hybrid runs its grid candidates through
  // them before refinement.
  EXPECT_GT(grid_snap.value(Counter::kPairsTested), 0u);
  EXPECT_EQ(grid_snap.value(Counter::kFilterPairsIn), 0u);
  EXPECT_GT(hybrid_snap.value(Counter::kPairsTested), 0u);
  EXPECT_GT(hybrid_snap.value(Counter::kFilterPairsIn), 0u);
}

// The service's path counters mirror its full / incremental / cached
// decision and its merge bookkeeping.
TEST_F(Telemetry, ServicePathCounters) {
  ServiceOptions options;
  options.config = config(10.0, 1800.0, 8.0);
  ScreeningService service(options);
  const auto sats = generate_population({400, 23});
  service.upsert(std::span<const Satellite>(sats));

  const ServiceReport first = service.screen();
  obs::TelemetrySnapshot snap = obs::snapshot();
  EXPECT_FALSE(first.incremental);
  ASSERT_GT(first.conjunctions.size(), 0u)
      << "workload produced no conjunctions; carried/refreshed checks vacuous";
  EXPECT_EQ(snap.value(Counter::kServiceFullScreens), 1u);
  EXPECT_EQ(snap.value(Counter::kServiceIncrementalScreens), 0u);
  EXPECT_EQ(snap.value(Counter::kServiceCachedScreens), 0u);
  EXPECT_EQ(snap.value(Counter::kServiceSnapshotObjects), sats.size());

  // No delta: the baseline is returned, counted as a cached screen.
  service.screen();
  snap = obs::snapshot();
  EXPECT_EQ(snap.value(Counter::kServiceFullScreens), 1u);
  EXPECT_EQ(snap.value(Counter::kServiceCachedScreens), 1u);

  // A one-object delta goes down the incremental path and the dirty /
  // carried bookkeeping shows up.
  Satellite touched = sats.front();
  touched.elements.mean_anomaly += 0.25;
  service.upsert(touched);
  const ServiceReport third = service.screen();
  snap = obs::snapshot();
  EXPECT_TRUE(third.incremental);
  EXPECT_EQ(snap.value(Counter::kServiceIncrementalScreens), 1u);
  EXPECT_EQ(snap.value(Counter::kServiceDirtyObjects), 1u);
  EXPECT_GT(snap.value(Counter::kServiceCarried) +
                snap.value(Counter::kServiceRefreshed),
            0u);
}

// Corpus replay with exact expectations: the counters of a deterministic
// single-threaded quantity must match the report exactly, and running the
// same case twice must exactly double them. (Probe steps and CAS retries
// depend on thread interleaving and are deliberately not pinned.)
TEST_F(Telemetry, CorpusReplayExactCounters) {
  const verify::FuzzCase fuzz_case =
      verify::load_case(std::string(SCOD_CORPUS_DIR) + "/seed-101.case");
  ASSERT_GT(fuzz_case.size(), 0u);

  const ScreeningReport report =
      screen(fuzz_case.satellites, fuzz_case.config, Variant::kGrid);
  const obs::TelemetrySnapshot once = obs::snapshot();

  EXPECT_EQ(once.value(Counter::kCandidatesEmitted), report.stats.candidates);
  EXPECT_EQ(once.value(Counter::kRefinements), report.stats.refinements);
  EXPECT_EQ(once.value(Counter::kConjunctionsReported),
            report.conjunctions.size());
  EXPECT_EQ(once.value(Counter::kSamplesPropagated),
            static_cast<std::uint64_t>(report.stats.total_samples) *
                report.stats.satellites);
  EXPECT_EQ(once.value(Counter::kGridInserts),
            once.value(Counter::kSamplesPropagated));
  EXPECT_EQ(histogram_total(once), once.value(Counter::kGridInserts));

  obs::reset();
  screen(fuzz_case.satellites, fuzz_case.config, Variant::kGrid);
  screen(fuzz_case.satellites, fuzz_case.config, Variant::kGrid);
  const obs::TelemetrySnapshot twice = obs::snapshot();
  for (const Counter c :
       {Counter::kSamplesPropagated, Counter::kGridInserts,
        Counter::kPairsTested, Counter::kCandidatesEmitted,
        Counter::kRefinements, Counter::kConjunctionsRaw,
        Counter::kConjunctionsReported}) {
    EXPECT_EQ(twice.value(c), 2 * once.value(c))
        << "counter " << obs::counter_name(c)
        << " is not deterministic across identical runs";
  }
}

// The JSON snapshot carries every counter by name plus the derived fields.
TEST_F(Telemetry, SnapshotJsonContainsAllCounters) {
  const auto sats = generate_population({200, 29});
  screen(sats, config(10.0, 1800.0, 8.0), Variant::kGrid);
  const std::string json = obs::snapshot().to_json();
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const std::string key =
        std::string("\"") + obs::counter_name(static_cast<Counter>(i)) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"probe_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_probe_length\""), std::string::npos);
}

}  // namespace
}  // namespace scod
