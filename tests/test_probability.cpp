#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "assessment/probability.hpp"

namespace scod {
namespace {

// ---------------------------------------------------------------------------
// Bessel I0: series / asymptotic agreement and known values

TEST(BesselI0, KnownValuesAndSymmetry) {
  EXPECT_DOUBLE_EQ(bessel_i0(0.0), 1.0);
  // Abramowitz & Stegun 9.8: I0(1) = 1.2660658..., I0(2) = 2.2795853...
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(bessel_i0(2.0), 2.2795853023360673, 1e-12);
  EXPECT_DOUBLE_EQ(bessel_i0(-3.0), bessel_i0(3.0));
}

TEST(BesselI0, SeriesMatchesAsymptoticAtTheSwitch) {
  // The implementation switches regimes at x = 15; both expansions must
  // agree there to well under the advertised 1e-8 relative error.
  const double below = bessel_i0(14.999999);
  const double above = bessel_i0(15.000001);
  EXPECT_NEAR(below / above, 1.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Isotropic Pc: bounds, monotonicity, and degenerate inputs

TEST(ProbabilityIsotropic, StaysWithinUnitInterval) {
  for (const double m : {0.0, 0.01, 0.1, 1.0, 5.0, 50.0, 500.0}) {
    for (const double s : {0.005, 0.05, 0.5, 5.0, 50.0}) {
      for (const double r : {0.001, 0.01, 0.1, 1.0, 10.0}) {
        const double pc = collision_probability_isotropic(m, s, r);
        EXPECT_GE(pc, 0.0) << "m=" << m << " s=" << s << " r=" << r;
        EXPECT_LE(pc, 1.0) << "m=" << m << " s=" << s << " r=" << r;
      }
    }
  }
}

TEST(ProbabilityIsotropic, DecreasesWithMissDistance) {
  double prev = 1.0;
  for (const double m : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const double pc = collision_probability_isotropic(m, 1.0, 0.1);
    EXPECT_LE(pc, prev + 1e-15) << "Pc rose as the miss grew, m=" << m;
    prev = pc;
  }
}

TEST(ProbabilityIsotropic, MissSignIsIrrelevant) {
  EXPECT_DOUBLE_EQ(collision_probability_isotropic(3.0, 1.0, 0.2),
                   collision_probability_isotropic(-3.0, 1.0, 0.2));
}

TEST(ProbabilityIsotropic, HeadOnWithHugeBodyIsCertain) {
  // R >> sigma captures essentially all the probability mass.
  EXPECT_NEAR(collision_probability_isotropic(0.0, 0.1, 10.0), 1.0, 1e-9);
}

TEST(ProbabilityIsotropic, DegenerateInputs) {
  EXPECT_THROW(collision_probability_isotropic(1.0, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(collision_probability_isotropic(1.0, -1.0, 0.1),
               std::invalid_argument);
  EXPECT_EQ(collision_probability_isotropic(1.0, 1.0, 0.0), 0.0);
  EXPECT_EQ(collision_probability_isotropic(1.0, 1.0, -0.5), 0.0);
}

TEST(ProbabilityIsotropic, HeadOnClosedForm) {
  // For m = 0 the Rician integral collapses to 1 - exp(-R^2 / (2 s^2)).
  for (const double s : {0.1, 0.5, 2.0}) {
    for (const double r : {0.05, 0.2, 1.0}) {
      const double expected = 1.0 - std::exp(-r * r / (2.0 * s * s));
      EXPECT_NEAR(collision_probability_isotropic(0.0, s, r), expected, 1e-10)
          << "s=" << s << " r=" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Anisotropic Pc: bounds, symmetries, and the isotropic cross-check

TEST(Probability2d, StaysWithinUnitInterval) {
  for (const double mx : {-5.0, 0.0, 0.3, 4.0}) {
    for (const double my : {-2.0, 0.0, 1.5}) {
      for (const double sx : {0.05, 0.5, 5.0}) {
        const double pc = collision_probability_2d(mx, my, sx, 2.0 * sx, 0.2);
        EXPECT_GE(pc, 0.0);
        EXPECT_LE(pc, 1.0);
      }
    }
  }
}

TEST(Probability2d, MirrorSymmetry) {
  // The Gaussian is even in each axis, so flipping the miss vector through
  // either axis (or both) leaves Pc unchanged.
  const double base = collision_probability_2d(1.2, -0.7, 0.8, 1.5, 0.3);
  EXPECT_NEAR(collision_probability_2d(-1.2, -0.7, 0.8, 1.5, 0.3), base, 1e-12);
  EXPECT_NEAR(collision_probability_2d(1.2, 0.7, 0.8, 1.5, 0.3), base, 1e-12);
  EXPECT_NEAR(collision_probability_2d(-1.2, 0.7, 0.8, 1.5, 0.3), base, 1e-12);
}

TEST(Probability2d, AxisSwapSymmetry) {
  // Swapping the two encounter-plane axes (miss and sigma together) is a
  // relabeling; the probability cannot change.
  const double ab = collision_probability_2d(0.9, -1.4, 0.6, 2.2, 0.25);
  const double ba = collision_probability_2d(-1.4, 0.9, 2.2, 0.6, 0.25);
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST(Probability2d, ReducesToIsotropicOnCircularCovariance) {
  // With sx == sy the quadrature and the Rician integral evaluate the same
  // quantity through entirely different numerics; require agreement to a
  // tolerance far below any physical decision threshold.
  for (const double m : {0.0, 0.3, 1.0, 3.0}) {
    for (const double s : {0.2, 1.0, 4.0}) {
      const double iso =
          collision_probability_isotropic(m, s, 0.5);
      const double quad = collision_probability_2d(
          m / std::sqrt(2.0), m / std::sqrt(2.0), s, s, 0.5);
      EXPECT_NEAR(quad, iso, 1e-6) << "m=" << m << " s=" << s;
    }
  }
}

TEST(Probability2d, DegenerateInputs) {
  EXPECT_THROW(collision_probability_2d(1.0, 1.0, 0.0, 1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(collision_probability_2d(1.0, 1.0, 1.0, -2.0, 0.1),
               std::invalid_argument);
  EXPECT_EQ(collision_probability_2d(1.0, 1.0, 1.0, 1.0, 0.0), 0.0);
  EXPECT_EQ(collision_probability_2d(1.0, 1.0, 1.0, 1.0, -1.0), 0.0);
}

TEST(CombinedSigma, RootSumSquare) {
  EXPECT_DOUBLE_EQ(combined_sigma(3.0, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(combined_sigma(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(combined_sigma(2.0, 0.0), 2.0);
}

}  // namespace
}  // namespace scod
