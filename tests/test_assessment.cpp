#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "assessment/cdm.hpp"
#include "assessment/geometry.hpp"
#include "assessment/probability.hpp"
#include "assessment/rtn.hpp"
#include "core/screen.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "scenario_helpers.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(RtnFrame, IsOrthonormalRightHanded) {
  const StateVector state{{7000.0, 100.0, -200.0}, {0.5, 7.4, 0.3}};
  const RtnFrame frame = rtn_frame(state);
  EXPECT_NEAR(frame.radial.norm(), 1.0, 1e-12);
  EXPECT_NEAR(frame.transverse.norm(), 1.0, 1e-12);
  EXPECT_NEAR(frame.normal.norm(), 1.0, 1e-12);
  EXPECT_NEAR(frame.radial.dot(frame.transverse), 0.0, 1e-12);
  EXPECT_NEAR(frame.radial.dot(frame.normal), 0.0, 1e-12);
  EXPECT_NEAR(frame.radial.cross(frame.transverse).distance(frame.normal), 0.0, 1e-12);
}

TEST(RtnFrame, RoundTripsVectors) {
  const StateVector state{{6800.0, -1200.0, 900.0}, {1.2, 7.1, -0.4}};
  const RtnFrame frame = rtn_frame(state);
  const Vec3 v{3.0, -4.0, 5.0};
  EXPECT_NEAR(frame.to_eci(frame.to_rtn(v)).distance(v), 0.0, 1e-12);
  // The satellite's own position is purely radial.
  const Vec3 rtn = frame.to_rtn(state.position);
  EXPECT_NEAR(rtn.x, state.position.norm(), 1e-9);
  EXPECT_NEAR(rtn.y, 0.0, 1e-9);
  EXPECT_NEAR(rtn.z, 0.0, 1e-9);
}

TEST(RtnFrame, TransverseAlignsWithVelocityForCircularOrbit) {
  // Circular orbit: velocity is exactly along-track.
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, {7000.0, 1e-9, 0.8, 1.0, 0.0, 2.0}}};
  const TwoBodyPropagator prop(sats, solver);
  const StateVector s = prop.state(0, 500.0);
  const RtnFrame frame = rtn_frame(s);
  EXPECT_GT(frame.transverse.dot(s.velocity.normalized()), 0.99999);
}

TEST(BesselI0, MatchesKnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(bessel_i0(2.5), 3.2898391440501231, 1e-11);
  EXPECT_NEAR(bessel_i0(-2.5), bessel_i0(2.5), 1e-15);  // even function
  // At the series/asymptotic switch point (x = 15) both branches must give
  // the right value: I0(15) ~ 3.39649e5.
  EXPECT_NEAR(bessel_i0(14.9999999) / 339649.5, 1.0, 2e-4);
  EXPECT_NEAR(bessel_i0(15.0000001) / 339649.5, 1.0, 2e-4);
  // Large-argument sanity: I0(50) ~ 2.93e20.
  EXPECT_NEAR(bessel_i0(50.0) / 2.93255378e20, 1.0, 1e-4);
}

TEST(CollisionProbability, ZeroMissAnalyticCase) {
  // m = 0: Pc = 1 - exp(-R^2 / (2 sigma^2)) exactly.
  for (double sigma : {0.05, 0.5, 2.0}) {
    for (double radius : {0.01, 0.1, 1.0}) {
      const double expected =
          1.0 - std::exp(-radius * radius / (2.0 * sigma * sigma));
      EXPECT_NEAR(collision_probability_isotropic(0.0, sigma, radius), expected,
                  1e-9)
          << "sigma=" << sigma << " R=" << radius;
    }
  }
}

TEST(CollisionProbability, MonotonicInMissDistance) {
  double previous = 1.0;
  for (double miss : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double pc = collision_probability_isotropic(miss, 0.5, 0.02);
    EXPECT_LE(pc, previous + 1e-15);
    previous = pc;
  }
}

TEST(CollisionProbability, DilutionRegion) {
  // The classic dilution effect: for a fixed miss distance, Pc is not
  // monotone in sigma — tiny sigma pins the miss as certain (Pc -> 0),
  // huge sigma spreads the probability thin (Pc -> 0), with a maximum at
  // sigma ~ m / sqrt(2) for small R.
  const double miss = 1.0, radius = 0.01;
  const double low = collision_probability_isotropic(miss, 0.05, radius);
  const double peak = collision_probability_isotropic(miss, miss / std::sqrt(2.0), radius);
  const double high = collision_probability_isotropic(miss, 50.0, radius);
  EXPECT_GT(peak, low);
  EXPECT_GT(peak, high);
}

TEST(CollisionProbability, LargeMissUnderflowsGracefully) {
  const double pc = collision_probability_isotropic(500.0, 0.5, 0.02);
  EXPECT_GE(pc, 0.0);
  EXPECT_LT(pc, 1e-30);
}

TEST(CollisionProbability, RejectsInvalidSigma) {
  EXPECT_THROW(collision_probability_isotropic(1.0, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(collision_probability_2d(1.0, 0.0, -1.0, 1.0, 0.1),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(collision_probability_isotropic(1.0, 1.0, 0.0), 0.0);
}

class Isotropic2dAgreement : public testing::TestWithParam<double> {};

TEST_P(Isotropic2dAgreement, TwoImplementationsMatch) {
  // When sx == sy the 2-D quadrature must reproduce the Rician integral.
  const double miss = GetParam();
  const double sigma = 0.4, radius = 0.05;
  const double iso = collision_probability_isotropic(miss, sigma, radius);
  // Split the miss across both axes to exercise the 2-D geometry.
  const double both = collision_probability_2d(miss / std::sqrt(2.0),
                                               miss / std::sqrt(2.0), sigma,
                                               sigma, radius);
  EXPECT_NEAR(both, iso, 1e-6 + iso * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(MissDistances, Isotropic2dAgreement,
                         testing::Values(0.0, 0.2, 0.5, 1.0, 2.0));

TEST(CollisionProbability, AnisotropyMatters) {
  // Miss along the tight axis is less likely to be an error than along the
  // loose axis.
  const double tight = collision_probability_2d(1.0, 0.0, 0.1, 2.0, 0.02);
  const double loose = collision_probability_2d(0.0, 1.0, 0.1, 2.0, 0.02);
  EXPECT_LT(tight, loose);
}

TEST(CombinedSigma, RootSumSquare) {
  EXPECT_DOUBLE_EQ(combined_sigma(3.0, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(combined_sigma(0.0, 2.0), 2.0);
}

class GeometryFixture : public testing::Test {
 protected:
  GeometryFixture() {
    Rng rng(0xA55E55);
    KeplerElements target{7000.0, 1e-4, 0.9, 0.5, 0.0, 1.0};
    sats_.push_back({0, target});
    sats_.push_back(testutil::make_interceptor(target, 2000.0, 1.5, rng, 1));
    prop_ = std::make_unique<TwoBodyPropagator>(sats_, solver_);

    // Refine the engineered encounter to its exact TCA.
    double best_t = 0.0, best_d = 1e300;
    for (double t = 1900.0; t < 2100.0; t += 0.25) {
      const double d = prop_->distance(0, 1, t);
      if (d < best_d) {
        best_d = d;
        best_t = t;
      }
    }
    tca_ = best_t;
    pca_ = best_d;
  }

  NewtonKeplerSolver solver_;
  std::vector<Satellite> sats_;
  std::unique_ptr<TwoBodyPropagator> prop_;
  double tca_ = 0.0;
  double pca_ = 0.0;
};

TEST_F(GeometryFixture, MissVectorConsistent) {
  const EncounterGeometry g = encounter_geometry(*prop_, 0, 1, tca_);
  EXPECT_NEAR(g.miss_distance, pca_, 0.01);
  EXPECT_NEAR(g.miss_rtn.norm(), g.miss_distance, 1e-9);
  EXPECT_GT(g.relative_speed, 0.1);  // different planes: a real fly-by
  EXPECT_GE(g.approach_angle, 0.0);
  EXPECT_LE(g.approach_angle, kPi);
}

TEST_F(GeometryFixture, MissPerpendicularToRelativeVelocityAtTca) {
  // At a distance minimum d/dt |dr|^2 = 2 dr . dv = 0.
  const EncounterGeometry g = encounter_geometry(*prop_, 0, 1, tca_);
  const Vec3 miss_eci = g.state_b.position - g.state_a.position;
  const double cosine = miss_eci.normalized().dot(
      g.relative_velocity_eci / g.relative_speed);
  EXPECT_NEAR(cosine, 0.0, 0.01);
}

TEST_F(GeometryFixture, EncounterPlaneCapturesFullMiss) {
  const EncounterGeometry g = encounter_geometry(*prop_, 0, 1, tca_);
  const EncounterPlane plane = encounter_plane(g);
  // At TCA the miss vector lies in the encounter plane, so its in-plane
  // components reconstruct the full miss distance.
  const double in_plane =
      std::sqrt(plane.miss_x * plane.miss_x + plane.miss_y * plane.miss_y);
  EXPECT_NEAR(in_plane, g.miss_distance, g.miss_distance * 0.01 + 1e-6);
  // Basis orthonormality.
  EXPECT_NEAR(plane.axis_x.dot(plane.axis_y), 0.0, 1e-12);
  EXPECT_NEAR(plane.axis_x.dot(plane.axis_z), 0.0, 1e-12);
  EXPECT_NEAR(plane.axis_x.norm(), 1.0, 1e-12);
}

TEST_F(GeometryFixture, AssessmentPipelineEndToEnd) {
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 4000.0;
  const ScreeningReport report = screen(sats_, cfg, Variant::kGrid);
  ASSERT_FALSE(report.conjunctions.empty());

  std::vector<CdmObject> objects(2);
  objects[0] = {"TARGET-0001", 0.01, 0.3};
  objects[1] = {"CHASER-0002", 0.005, 0.2};
  const auto assessments = assess_conjunctions(*prop_, report, objects);
  ASSERT_EQ(assessments.size(), report.conjunctions.size());

  const ConjunctionAssessment& a = assessments.front();
  EXPECT_NEAR(a.geometry.miss_distance, a.conjunction.pca, 0.01);
  EXPECT_DOUBLE_EQ(a.combined_hard_body_km, 0.015);
  EXPECT_NEAR(a.combined_sigma_km, std::sqrt(0.09 + 0.04), 1e-12);
  EXPECT_GT(a.collision_probability, 0.0);
  EXPECT_LT(a.collision_probability, 1.0);
}

TEST_F(GeometryFixture, CdmWriterEmitsAllFields) {
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 4000.0;
  const ScreeningReport report = screen(sats_, cfg, Variant::kGrid);
  ASSERT_FALSE(report.conjunctions.empty());
  const auto assessments = assess_conjunctions(*prop_, report);

  std::ostringstream os;
  CdmObject a{"OBJECT-A", 0.01, 0.5};
  CdmObject b{"OBJECT-B", 0.01, 0.5};
  write_cdm(os, assessments.front(), a, b);
  const std::string cdm = os.str();

  for (const char* key :
       {"CCSDS_CDM_VERS", "TCA", "MISS_DISTANCE", "RELATIVE_SPEED",
        "RELATIVE_POSITION_R", "RELATIVE_POSITION_T", "RELATIVE_POSITION_N",
        "COLLISION_PROBABILITY", "OBJECT1_OBJECT_DESIGNATOR",
        "OBJECT2_OBJECT_DESIGNATOR", "OBJECT1_X_DOT", "OBJECT2_Z"}) {
    EXPECT_NE(cdm.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(cdm.find("OBJECT-A"), std::string::npos);
  EXPECT_NE(cdm.find("OBJECT-B"), std::string::npos);
}

TEST(Assessment, DefaultsUsedWhenMetadataMissing) {
  const NewtonKeplerSolver solver;
  Rng rng(0xFACE);
  KeplerElements target{7000.0, 1e-4, 1.1, 0.2, 0.0, 0.5};
  std::vector<Satellite> sats{{0, target},
                              testutil::make_interceptor(target, 1500.0, 1.0, rng, 1)};
  const TwoBodyPropagator prop(sats, solver);

  ScreeningReport report;
  report.conjunctions.push_back({0, 1, 1500.0, 1.0});
  const auto assessments = assess_conjunctions(prop, report);  // no metadata
  ASSERT_EQ(assessments.size(), 1u);
  EXPECT_GT(assessments[0].combined_sigma_km, 0.0);
  EXPECT_GT(assessments[0].combined_hard_body_km, 0.0);
}

}  // namespace
}  // namespace scod
