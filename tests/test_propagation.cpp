#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/j2_secular.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"

namespace scod {
namespace {

struct SolverCase {
  double mean_anomaly;
  double eccentricity;
};

class KeplerSolvers : public testing::TestWithParam<SolverCase> {};

TEST_P(KeplerSolvers, NewtonSatisfiesKeplersEquation) {
  const auto [m, e] = GetParam();
  const NewtonKeplerSolver solver;
  const double big_e = solver.eccentric_anomaly(m, e);
  EXPECT_LT(kepler_residual(big_e, e, m), 1e-12);
}

TEST_P(KeplerSolvers, ContourSatisfiesKeplersEquation) {
  const auto [m, e] = GetParam();
  const ContourKeplerSolver solver;
  const double big_e = solver.eccentric_anomaly(m, e);
  EXPECT_LT(kepler_residual(big_e, e, m), 1e-12);
}

TEST_P(KeplerSolvers, AllSolversAgree) {
  const auto [m, e] = GetParam();
  const NewtonKeplerSolver newton;
  const BisectionKeplerSolver bisection;
  const ContourKeplerSolver contour;
  const double reference = bisection.eccentric_anomaly(m, e);
  EXPECT_NEAR(wrap_pi(newton.eccentric_anomaly(m, e) - reference), 0.0, 1e-9);
  EXPECT_NEAR(wrap_pi(contour.eccentric_anomaly(m, e) - reference), 0.0, 1e-9);
}

std::vector<SolverCase> solver_grid() {
  std::vector<SolverCase> cases;
  for (double e : {0.0, 1e-6, 0.0025, 0.1, 0.5, 0.9, 0.99}) {
    for (int k = 0; k <= 16; ++k) {
      cases.push_back({kTwoPi * k / 16.0, e});
    }
  }
  // Awkward spots: near 0, pi and 2 pi.
  for (double e : {0.3, 0.95}) {
    for (double m : {1e-9, 1e-4, kPi - 1e-6, kPi + 1e-6, kTwoPi - 1e-9, -2.5, 17.0}) {
      cases.push_back({m, e});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(MeanAnomalyEccentricityGrid, KeplerSolvers,
                         testing::ValuesIn(solver_grid()));

TEST(ContourSolver, UnpolishedQuadratureIsAccurate) {
  // The contour quadrature alone (no Newton polish) must already converge
  // geometrically with the node count.
  const ContourKeplerSolver coarse(8, /*polish=*/false);
  const ContourKeplerSolver fine(24, /*polish=*/false);
  for (double e : {0.01, 0.3, 0.7}) {
    for (double m : {0.4, 1.3, 2.8}) {
      EXPECT_LT(kepler_residual(coarse.eccentric_anomaly(m, e), e, m), 1e-4);
      EXPECT_LT(kepler_residual(fine.eccentric_anomaly(m, e), e, m), 1e-10);
    }
  }
}

TEST(ContourSolver, RejectsTooFewPoints) {
  EXPECT_THROW(ContourKeplerSolver(3), std::invalid_argument);
}

TEST(ContourSolver, MirrorSymmetry) {
  const ContourKeplerSolver solver;
  for (double e : {0.2, 0.6}) {
    for (double m : {0.5, 1.5, 2.5}) {
      const double e1 = solver.eccentric_anomaly(m, e);
      const double e2 = solver.eccentric_anomaly(kTwoPi - m, e);
      EXPECT_NEAR(e1 + e2, kTwoPi, 1e-10);
    }
  }
}

Satellite make_sat(std::uint32_t id, KeplerElements el) { return {id, el}; }

TEST(TwoBodyPropagator, PeriodicityAndRadiusBounds) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{make_sat(0, {7200.0, 0.05, 1.0, 0.5, 1.0, 0.3})};
  const TwoBodyPropagator prop(sats, solver);
  const double period = orbital_period(sats[0].elements);

  const Vec3 p0 = prop.position(0, 100.0);
  const Vec3 p1 = prop.position(0, 100.0 + period);
  EXPECT_NEAR(p0.distance(p1), 0.0, 1e-5);

  for (double t = 0.0; t < period; t += period / 37.0) {
    const double r = prop.position(0, t).norm();
    EXPECT_GE(r, perigee_radius(sats[0].elements) - 1e-6);
    EXPECT_LE(r, apogee_radius(sats[0].elements) + 1e-6);
  }
}

TEST(TwoBodyPropagator, VelocityMatchesFiniteDifference) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{make_sat(0, {6900.0, 0.02, 1.4, 2.0, 0.7, 1.1})};
  const TwoBodyPropagator prop(sats, solver);
  const double t = 500.0, dt = 1e-3;
  const Vec3 numeric =
      (prop.position(0, t + dt) - prop.position(0, t - dt)) / (2.0 * dt);
  const Vec3 analytic = prop.state(0, t).velocity;
  EXPECT_NEAR(numeric.distance(analytic), 0.0, 1e-5);
}

TEST(TwoBodyPropagator, EnergyConservedAlongTrajectory) {
  const ContourKeplerSolver solver;
  const std::vector<Satellite> sats{make_sat(7, {8500.0, 0.15, 0.6, 3.0, 2.5, 4.0})};
  const TwoBodyPropagator prop(sats, solver);
  const double expected = -kMuEarth / (2.0 * sats[0].elements.semi_major_axis);
  for (double t = 0.0; t < 7000.0; t += 333.0) {
    const StateVector s = prop.state(0, t);
    const double energy = s.velocity.norm2() / 2.0 - kMuEarth / s.position.norm();
    EXPECT_NEAR(energy, expected, 1e-8);
  }
}

TEST(TwoBodyPropagator, RejectsInvalidOrbits) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> bad{make_sat(3, {6000.0, 0.0, 0, 0, 0, 0})};
  EXPECT_THROW(TwoBodyPropagator(bad, solver), std::invalid_argument);
}

TEST(TwoBodyPropagator, CacheMatchesElements) {
  const NewtonKeplerSolver solver;
  const KeplerElements el{7000.0, 0.01, 0.9, 1.2, 0.4, 2.1};
  const std::vector<Satellite> sats{make_sat(0, el)};
  const TwoBodyPropagator prop(sats, solver);
  EXPECT_DOUBLE_EQ(prop.cache(0).mean_motion, mean_motion(el));
  EXPECT_DOUBLE_EQ(prop.cache(0).semi_latus, semi_latus_rectum(el));
  EXPECT_EQ(prop.elements(0), el);
  EXPECT_EQ(prop.size(), 1u);
}

TEST(J2Rates, SignsMatchTheory) {
  // Prograde orbit: node regresses (negative RAAN rate); below the
  // critical inclination (63.4 deg) the perigee advances.
  const KeplerElements prograde{7000.0, 0.01, 0.5, 0.0, 0.0, 0.0};
  const J2Rates r1 = j2_secular_rates(prograde);
  EXPECT_LT(r1.raan_rate, 0.0);
  EXPECT_GT(r1.arg_perigee_rate, 0.0);

  // Retrograde orbit: node precesses forward.
  const KeplerElements retrograde{7000.0, 0.01, 2.6, 0.0, 0.0, 0.0};
  EXPECT_GT(j2_secular_rates(retrograde).raan_rate, 0.0);

  // At the critical inclination the apsidal rotation vanishes.
  const double critical = std::acos(std::sqrt(1.0 / 5.0));
  const KeplerElements crit{7000.0, 0.01, critical, 0.0, 0.0, 0.0};
  EXPECT_NEAR(j2_secular_rates(crit).arg_perigee_rate, 0.0, 1e-12);
}

TEST(J2Rates, SunSynchronousMagnitude) {
  // A ~800 km SSO at i ~ 98.6 deg regresses ~360 deg/year eastward.
  const KeplerElements sso{kEarthRadius + 800.0, 0.001, 98.6 * kPi / 180.0, 0, 0, 0};
  const J2Rates rates = j2_secular_rates(sso);
  const double year = 365.25 * 86400.0;
  EXPECT_NEAR(rates.raan_rate * year, kTwoPi, 0.05 * kTwoPi);
}

TEST(J2SecularPropagator, ReducesToTwoBodyWhenRatesSmall) {
  // For GEO the J2 rates are tiny; the divergence from the two-body path
  // must stay within the analytic angular-drift bound (rate * t * radius).
  const NewtonKeplerSolver solver;
  const KeplerElements el{42164.0, 0.0005, 0.01, 1.0, 2.0, 3.0};
  const std::vector<Satellite> sats{make_sat(0, el)};
  const TwoBodyPropagator two_body(sats, solver);
  const J2SecularPropagator j2(sats, solver);

  const J2Rates rates = j2_secular_rates(el);
  const double angular_rate = std::abs(rates.raan_rate) +
                              std::abs(rates.arg_perigee_rate) +
                              std::abs(rates.mean_anomaly_rate - mean_motion(el));
  for (double t = 200.0; t <= 600.0; t += 200.0) {
    const double drift = two_body.position(0, t).distance(j2.position(0, t));
    const double bound = 1.5 * angular_rate * t * apogee_radius(el);
    EXPECT_LT(drift, bound);
    EXPECT_LT(drift, 0.5);  // GEO J2 drift stays sub-km over 10 minutes
  }
}

TEST(J2SecularPropagator, NodePrecessesOverTime) {
  const NewtonKeplerSolver solver;
  const KeplerElements el{7000.0, 0.001, 0.9, 1.0, 0.0, 0.0};
  const std::vector<Satellite> sats{make_sat(0, el)};
  const J2SecularPropagator j2(sats, solver);
  const TwoBodyPropagator two_body(sats, solver);

  // After a day the orbital planes should measurably differ.
  const double day = 86400.0;
  const double drift = two_body.position(0, day).distance(j2.position(0, day));
  EXPECT_GT(drift, 10.0);  // tens of km of nodal drift per day in LEO

  // The J2 position must still lie at the correct radius band.
  const double r = j2.position(0, day).norm();
  EXPECT_GE(r, perigee_radius(el) - 1.0);
  EXPECT_LE(r, apogee_radius(el) + 1.0);
}

TEST(Propagator, DistanceIsSymmetric) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{make_sat(0, {7000.0, 0.01, 0.9, 1.2, 0.4, 2.1}),
                                    make_sat(1, {7050.0, 0.02, 1.1, 0.2, 1.4, 0.1})};
  const TwoBodyPropagator prop(sats, solver);
  EXPECT_DOUBLE_EQ(prop.distance(0, 1, 321.0), prop.distance(1, 0, 321.0));
  EXPECT_DOUBLE_EQ(prop.distance(0, 0, 321.0), 0.0);
}

TEST(BatchSolver, ContourBatchIsBitIdenticalToScalar) {
  // The batched kernel runs the exact operation sequence of the scalar
  // path, so the results must agree to the last bit — including the
  // degenerate inputs that take the Newton fallback and partial tail
  // blocks (the grid covers several non-multiples of the 64-lane block).
  const ContourKeplerSolver solver;
  std::vector<double> ms, es;
  for (double e : {0.0, 1e-12, 1e-6, 0.0025, 0.1, 0.5, 0.9, 0.95, 0.99}) {
    for (int k = 0; k <= 16; ++k) {
      ms.push_back(kTwoPi * k / 16.0);
      es.push_back(e);
    }
    for (double m : {1e-9, 1e-4, kPi - 1e-6, kPi + 1e-6, kTwoPi - 1e-9, -2.5, 17.0}) {
      ms.push_back(m);
      es.push_back(e);
    }
  }
  std::vector<double> batch(ms.size());
  solver.eccentric_anomalies(ms, es, batch);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(batch[i], solver.eccentric_anomaly(ms[i], es[i]))
        << "m=" << ms[i] << " e=" << es[i];
  }
}

TEST(BatchSolver, BaseClassFallbackLoopsScalar) {
  // Solvers without a batched override inherit a scalar loop.
  const NewtonKeplerSolver solver;
  const std::vector<double> ms{0.1, 1.0, 3.0, 5.5};
  const std::vector<double> es{0.0, 0.2, 0.7, 0.95};
  std::vector<double> batch(ms.size());
  solver.eccentric_anomalies(ms, es, batch);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(batch[i], solver.eccentric_anomaly(ms[i], es[i]));
  }
}

TEST(BatchSolver, RejectsMismatchedSpans) {
  const ContourKeplerSolver contour;
  const NewtonKeplerSolver newton;
  std::vector<double> ms{0.1, 0.2}, es{0.3}, out(2);
  EXPECT_THROW(contour.eccentric_anomalies(ms, es, out), std::invalid_argument);
  EXPECT_THROW(newton.eccentric_anomalies(ms, es, out), std::invalid_argument);
}

TEST(TwoBodyPropagator, BatchPositionsMatchScalarAcrossEccentricities) {
  // Property sweep of the SoA kernel: eccentricities up to 0.95 x a full
  // revolution of mean anomaly. The batch path is bit-identical by
  // construction; 1e-12 km is far below one ulp at orbital radii, so any
  // divergence between the two code paths fails loudly.
  const ContourKeplerSolver solver;
  std::vector<Satellite> sats;
  std::uint32_t id = 0;
  for (double e : {0.0, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    // Perigee must clear the Earth's surface: a (1 - e) > 6378 km.
    const double a = 7000.0 / (1.0 - e);
    for (int k = 0; k < 12; ++k) {
      const double m = kTwoPi * k / 12.0;
      sats.push_back(make_sat(id, {a, e, 0.7 + 0.1 * (id % 5), 0.3 * (id % 7),
                                   0.5 * (id % 3), m}));
      ++id;
    }
  }
  const TwoBodyPropagator prop(sats, solver);

  std::vector<Vec3> batch(sats.size());
  for (double t : {0.0, 13.7, 911.0, 5000.0, 86400.0}) {
    prop.positions_at(t, 0, sats.size(), batch.data());
    for (std::size_t i = 0; i < sats.size(); ++i) {
      EXPECT_LE(prop.position(i, t).distance(batch[i]), 1e-12)
          << "sat " << i << " t=" << t;
    }
  }
}

TEST(TwoBodyPropagator, BatchPositionsHonorSubranges) {
  const ContourKeplerSolver solver;
  std::vector<Satellite> sats;
  for (std::uint32_t i = 0; i < 300; ++i) {
    sats.push_back(make_sat(i, {7000.0 + 3.0 * i, 0.001 * (i % 50), 1.0, 0.5,
                                1.0, 0.02 * i}));
  }
  const TwoBodyPropagator prop(sats, solver);

  // Ranges chosen to exercise offsets that are not multiples of the
  // internal block size, including a single-element range.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 300}, {1, 300}, {37, 97}, {255, 258}, {299, 300}};
  for (const auto& [begin, end] : ranges) {
    std::vector<Vec3> batch(end - begin);
    prop.positions_at(777.0, begin, end, batch.data());
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_LE(prop.position(i, 777.0).distance(batch[i - begin]), 1e-12);
    }
  }
}

TEST(TwoBodyPropagator, StateVelocityConsistentWithPositions) {
  // The velocity formula was rewritten in E-form with the SoA refactor;
  // cross-check against a central difference of the position.
  const ContourKeplerSolver solver;
  const std::vector<Satellite> sats{make_sat(0, {9000.0, 0.25, 1.1, 0.8, 2.2, 0.9})};
  const TwoBodyPropagator prop(sats, solver);
  const double h = 1e-3;
  for (double t : {10.0, 1234.5, 4321.0}) {
    const Vec3 v = prop.state(0, t).velocity;
    const Vec3 lo = prop.position(0, t - h);
    const Vec3 hi = prop.position(0, t + h);
    const Vec3 fd{(hi.x - lo.x) / (2.0 * h), (hi.y - lo.y) / (2.0 * h),
                  (hi.z - lo.z) / (2.0 * h)};
    EXPECT_LE(v.distance(fd), 1e-4 * v.norm());
  }
}

}  // namespace
}  // namespace scod
