#include <gtest/gtest.h>

#include <cmath>

#include "core/uncertainty.hpp"
#include "scenario_helpers.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(UncertaintyModel, PairThresholdFormula) {
  UncertaintyModel model;
  model.sigma_km = {0.3, 0.4};
  model.k_sigma = 3.0;
  model.hard_body_km = 0.02;
  EXPECT_NEAR(model.pair_threshold(0, 1), 0.02 + 3.0 * 0.5, 1e-12);
  // Missing entries use the default sigma.
  model.default_sigma_km = 1.0;
  EXPECT_NEAR(model.pair_threshold(0, 99),
              0.02 + 3.0 * std::sqrt(0.09 + 1.0), 1e-12);
}

TEST(UncertaintyModel, MaxThresholdUsesTwoLargestSigmas) {
  UncertaintyModel model;
  model.sigma_km = {0.1, 0.9, 0.5, 0.7};
  model.default_sigma_km = 0.0;
  model.k_sigma = 2.0;
  model.hard_body_km = 0.0;
  EXPECT_NEAR(model.max_threshold(), 2.0 * std::sqrt(0.81 + 0.49), 1e-12);
  // No (distinct) pair can exceed it.
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = a + 1; b < 4; ++b) {
      EXPECT_LE(model.pair_threshold(a, b), model.max_threshold() + 1e-12);
    }
  }
}

TEST(UncertaintyScreening, TightPairsRequireCloserApproaches) {
  // Two engineered encounters at ~1.8 km: one pair with loose catalog
  // uncertainty (accepted), one with tight operator ephemerides
  // (rejected — 1.8 km is far beyond 3 sigma for them).
  Rng rng(0x51);
  KeplerElements target_a{7000.0, 1e-4, 0.9, 0.3, 0.0, 1.0};
  KeplerElements target_b{7050.0, 1e-4, 1.4, 2.3, 0.0, 4.0};
  std::vector<Satellite> sats{{0, target_a}, {1, target_b}};
  sats.push_back(testutil::make_interceptor(target_a, 1500.0, 1.8, rng, 2));
  sats.push_back(testutil::make_interceptor(target_b, 2500.0, 1.8, rng, 3));

  ScreeningConfig cfg;
  cfg.t_end = 4000.0;

  UncertaintyModel model;
  model.k_sigma = 3.0;
  model.hard_body_km = 0.02;
  model.sigma_km = {1.0, 0.05, 1.0, 0.05};  // pair (0,2) loose, pair (1,3) tight

  const ScreeningReport report =
      screen_with_uncertainty(sats, cfg, Variant::kGrid, model);

  bool found_loose = false, found_tight = false;
  for (const Conjunction& c : report.conjunctions) {
    if (c.sat_a == 0 && c.sat_b == 2) found_loose = true;
    if (c.sat_a == 1 && c.sat_b == 3) found_tight = true;
  }
  // Loose pair: threshold = 0.02 + 3*sqrt(2) ~ 4.3 km > 1.8 -> kept.
  EXPECT_TRUE(found_loose);
  // Tight pair: threshold = 0.02 + 3*sqrt(0.005) ~ 0.23 km < 1.8 -> dropped.
  EXPECT_FALSE(found_tight);

  // Every surviving conjunction satisfies its own pair threshold.
  for (const Conjunction& c : report.conjunctions) {
    EXPECT_LE(c.pca, model.pair_threshold(c.sat_a, c.sat_b));
  }
}

TEST(UncertaintyScreening, UniformSigmasReduceToPlainScreening) {
  Rng rng(0x52);
  KeplerElements target{7000.0, 1e-4, 1.0, 0.0, 0.0, 0.0};
  std::vector<Satellite> sats{{0, target}};
  sats.push_back(testutil::make_interceptor(target, 1200.0, 1.0, rng, 1));

  UncertaintyModel model;
  model.default_sigma_km = 0.4;
  model.k_sigma = 3.0;
  model.hard_body_km = 0.01;

  ScreeningConfig cfg;
  cfg.t_end = 2400.0;
  const ScreeningReport with_model =
      screen_with_uncertainty(sats, cfg, Variant::kGrid, model);

  cfg.threshold_km = model.max_threshold();
  const ScreeningReport plain = screen(sats, cfg, Variant::kGrid);

  // With uniform sigmas every pair threshold equals the max threshold, so
  // the filter removes nothing.
  ASSERT_EQ(with_model.conjunctions.size(), plain.conjunctions.size());
  for (std::size_t i = 0; i < plain.conjunctions.size(); ++i) {
    EXPECT_NEAR(with_model.conjunctions[i].pca, plain.conjunctions[i].pca, 1e-9);
  }
}

TEST(UncertaintyScreening, WorksWithEveryVariant) {
  Rng rng(0x53);
  KeplerElements target{7000.0, 1e-4, 0.7, 0.1, 0.0, 0.5};
  std::vector<Satellite> sats{{0, target}};
  sats.push_back(testutil::make_interceptor(target, 900.0, 0.5, rng, 1));

  UncertaintyModel model;
  model.default_sigma_km = 0.3;

  ScreeningConfig cfg;
  cfg.t_end = 1800.0;
  for (Variant v : {Variant::kGrid, Variant::kHybrid, Variant::kLegacy,
                    Variant::kSieve}) {
    const ScreeningReport report = screen_with_uncertainty(sats, cfg, v, model);
    bool found = false;
    for (const Conjunction& c : report.conjunctions) {
      if (c.sat_a == 0 && c.sat_b == 1 && std::abs(c.tca - 900.0) < 30.0) found = true;
    }
    EXPECT_TRUE(found) << variant_name(v);
  }
}

}  // namespace
}  // namespace scod
