#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "filters/coplanarity.hpp"
#include "orbit/anomaly.hpp"
#include "orbit/elements.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod::testutil {

/// Builds a near-circular satellite whose orbit passes within ~|offset_km|
/// of `target`'s position at time `t_star`, in a plane that is NOT
/// coplanar with the target's. This engineers a guaranteed sub-|offset|
/// close approach at a known time — the deterministic way to seed test
/// populations with true conjunctions instead of waiting for random
/// geometry to align.
inline Satellite make_interceptor(const KeplerElements& target, double t_star,
                                  double offset_km, Rng& rng, std::uint32_t id) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> one{{0, target}};
  const TwoBodyPropagator prop(one, solver);
  const Vec3 p = prop.position(0, t_star);
  const Vec3 p_hat = p.normalized();

  // Random plane containing the encounter point, rejected until it is
  // clearly non-coplanar with the target's plane.
  KeplerElements el;
  for (;;) {
    const Vec3 u{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 normal = p_hat.cross(u).normalized();
    if (normal.norm() < 0.5) continue;  // u parallel to p: retry

    el.semi_major_axis = p.norm() + offset_km;
    el.eccentricity = 1e-6;
    el.inclination = std::acos(std::clamp(normal.z, -1.0, 1.0));
    // orbit_normal() = (sin(raan) sin(i), -cos(raan) sin(i), cos(i)).
    el.raan = wrap_two_pi(std::atan2(normal.x, -normal.y));
    el.arg_perigee = 0.0;
    el.mean_anomaly = 0.0;
    if (plane_angle(el, target) < 0.1) continue;

    // True anomaly of the encounter direction within the new plane, then
    // back out the epoch mean anomaly that puts the object there at t_star.
    const Mat3 rot = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
    const Vec3 in_plane = rot.transposed() * p_hat;
    const double f = wrap_two_pi(std::atan2(in_plane.y, in_plane.x));
    const double m_at_t = true_to_mean(f, el.eccentricity);
    el.mean_anomaly = wrap_two_pi(m_at_t - mean_motion(el) * t_star);
    break;
  }
  return {id, el};
}

}  // namespace scod::testutil
