#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "orbit/geometry.hpp"
#include "population/tle.hpp"
#include "util/constants.hpp"

namespace scod {
namespace {

TleRecord sample_record() {
  TleRecord rec;
  rec.name = "TESTSAT 1";
  rec.catalog_number = 25544;
  rec.classification = 'U';
  rec.intl_designator = "98067A";
  rec.epoch_year = 2021;
  rec.epoch_day = 98.76543210;
  rec.mean_motion_dot = 2.182e-5;
  rec.mean_motion_ddot = 0.0;
  rec.bstar = 3.8792e-5;
  rec.element_set = 999;
  rec.revolution_number = 27384;
  rec.mean_motion_rev_day = 15.48815328;
  rec.elements.inclination = 51.6442 * kPi / 180.0;
  rec.elements.raan = 147.4611 * kPi / 180.0;
  rec.elements.eccentricity = 0.0003572;
  rec.elements.arg_perigee = 91.2029 * kPi / 180.0;
  rec.elements.mean_anomaly = 268.9446 * kPi / 180.0;
  // a is derived from the mean motion on parse; fill it for symmetry.
  const double n = rec.mean_motion_rev_day * kTwoPi / 86400.0;
  rec.elements.semi_major_axis = std::cbrt(kMuEarth / (n * n));
  return rec;
}

TEST(TleChecksum, CountsDigitsAndMinus) {
  EXPECT_EQ(tle_checksum("0000000000"), 0);
  EXPECT_EQ(tle_checksum("123"), 6);
  EXPECT_EQ(tle_checksum("1-2-3"), 8);   // minus counts as 1
  EXPECT_EQ(tle_checksum("19"), 0);      // 10 mod 10
  EXPECT_EQ(tle_checksum("abc def"), 0); // letters/spaces ignored
}

TEST(TleFormat, ProducesValidLines) {
  const auto [l1, l2] = format_tle(sample_record());
  ASSERT_EQ(l1.size(), 69u);
  ASSERT_EQ(l2.size(), 69u);
  EXPECT_EQ(l1[0], '1');
  EXPECT_EQ(l2[0], '2');
  EXPECT_EQ(tle_checksum(l1), l1[68] - '0');
  EXPECT_EQ(tle_checksum(l2), l2[68] - '0');
  EXPECT_EQ(l1.substr(2, 5), "25544");
  EXPECT_EQ(l2.substr(2, 5), "25544");
}

TEST(TleRoundTrip, AllFieldsSurvive) {
  const TleRecord original = sample_record();
  const auto [l1, l2] = format_tle(original);
  const TleRecord parsed = parse_tle(l1, l2, original.name);

  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.catalog_number, original.catalog_number);
  EXPECT_EQ(parsed.classification, original.classification);
  EXPECT_EQ(parsed.intl_designator, original.intl_designator);
  EXPECT_EQ(parsed.epoch_year, original.epoch_year);
  EXPECT_NEAR(parsed.epoch_day, original.epoch_day, 1e-8);
  EXPECT_NEAR(parsed.mean_motion_dot, original.mean_motion_dot, 1e-8);
  EXPECT_NEAR(parsed.bstar, original.bstar, original.bstar * 1e-4);
  EXPECT_EQ(parsed.element_set, original.element_set);
  EXPECT_EQ(parsed.revolution_number, original.revolution_number);
  EXPECT_NEAR(parsed.mean_motion_rev_day, original.mean_motion_rev_day, 1e-7);

  const KeplerElements& pe = parsed.elements;
  const KeplerElements& oe = original.elements;
  EXPECT_NEAR(pe.inclination, oe.inclination, 1e-5);
  EXPECT_NEAR(pe.raan, oe.raan, 1e-5);
  EXPECT_NEAR(pe.eccentricity, oe.eccentricity, 1e-7);
  EXPECT_NEAR(pe.arg_perigee, oe.arg_perigee, 1e-5);
  EXPECT_NEAR(pe.mean_anomaly, oe.mean_anomaly, 1e-5);
  EXPECT_NEAR(pe.semi_major_axis, oe.semi_major_axis, 1e-4);
}

TEST(TleParse, DerivesSemiMajorAxisFromMeanMotion) {
  const auto [l1, l2] = format_tle(sample_record());
  const TleRecord parsed = parse_tle(l1, l2);
  // 15.49 rev/day is ISS-like: a ~ 6795 km, ~420 km altitude.
  EXPECT_NEAR(parsed.elements.semi_major_axis, 6795.0, 15.0);
  EXPECT_TRUE(is_valid_orbit(parsed.elements));
}

TEST(TleParse, EpochCenturyRule) {
  TleRecord rec = sample_record();
  rec.epoch_year = 1999;
  auto [l1, l2] = format_tle(rec);
  EXPECT_EQ(parse_tle(l1, l2).epoch_year, 1999);
  rec.epoch_year = 2056;
  std::tie(l1, l2) = format_tle(rec);
  EXPECT_EQ(parse_tle(l1, l2).epoch_year, 2056);
}

TEST(TleParse, NegativeExponentFieldsAndNdot) {
  TleRecord rec = sample_record();
  rec.bstar = -4.56e-6;
  rec.mean_motion_dot = -1.5e-6;
  const auto [l1, l2] = format_tle(rec);
  const TleRecord parsed = parse_tle(l1, l2);
  EXPECT_NEAR(parsed.bstar, rec.bstar, std::abs(rec.bstar) * 1e-4);
  EXPECT_NEAR(parsed.mean_motion_dot, rec.mean_motion_dot, 1e-9);
}

TEST(TleParse, RejectsCorruptedLines) {
  const auto [l1, l2] = format_tle(sample_record());

  // Flipped digit -> checksum failure.
  std::string bad = l1;
  bad[20] = bad[20] == '0' ? '1' : '0';
  EXPECT_THROW(parse_tle(bad, l2), std::runtime_error);

  // Wrong line markers.
  std::string swapped = l1;
  swapped[0] = '2';
  EXPECT_THROW(parse_tle(swapped, l2), std::runtime_error);

  // Truncated.
  EXPECT_THROW(parse_tle(l1.substr(0, 40), l2), std::runtime_error);

  // Mismatched catalog numbers (rebuild line 2 with another satnum and a
  // fixed-up checksum).
  TleRecord other = sample_record();
  other.catalog_number = 11111;
  const auto [o1, o2] = format_tle(other);
  EXPECT_THROW(parse_tle(l1, o2), std::runtime_error);
}

TEST(TleFile, LoadsTwoAndThreeLineFormats) {
  const TleRecord rec_a = sample_record();
  TleRecord rec_b = sample_record();
  rec_b.name.clear();
  rec_b.catalog_number = 43013;
  rec_b.mean_motion_rev_day = 14.2;
  rec_b.revolution_number = 100;

  const std::string path = testing::TempDir() + "/scod_tle_test.txt";
  {
    std::ofstream out(path);
    const auto [a1, a2] = format_tle(rec_a);
    out << rec_a.name << "\n" << a1 << "\n" << a2 << "\n";
    out << "\n";  // blank lines are tolerated
    const auto [b1, b2] = format_tle(rec_b);
    out << b1 << "\n" << b2 << "\n";
  }

  const auto records = load_tle_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, rec_a.name);
  EXPECT_EQ(records[0].catalog_number, rec_a.catalog_number);
  EXPECT_EQ(records[1].name, "");
  EXPECT_EQ(records[1].catalog_number, 43013u);
  std::remove(path.c_str());

  EXPECT_THROW(load_tle_file("/nonexistent/tle.txt"), std::runtime_error);
}

TEST(TleFile, ReportsLineNumberOfBadEntry) {
  const std::string path = testing::TempDir() + "/scod_tle_bad.txt";
  {
    std::ofstream out(path);
    const auto [l1, l2] = format_tle(sample_record());
    std::string corrupted = l2;
    corrupted[30] = 'x';
    out << l1 << "\n" << corrupted << "\n";
  }
  try {
    load_tle_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(TleFile, ChecksumErrorReportsOffendingLineNumber) {
  // Two entries; the checksum of the FIRST line of the SECOND entry (file
  // line 3) is corrupted. The error must name path:3 — not the entry's
  // last line — alongside the offending line text.
  const std::string path = testing::TempDir() + "/scod_tle_cksum.txt";
  const auto [l1, l2] = format_tle(sample_record());
  TleRecord other = sample_record();
  other.catalog_number = 11111;
  auto [o1, o2] = format_tle(other);
  o1[68] = o1[68] == '0' ? '1' : '0';  // break the stored checksum digit
  {
    std::ofstream out(path);
    out << l1 << "\n" << l2 << "\n" << o1 << "\n" << o2 << "\n";
  }
  try {
    load_tle_file(path);
    FAIL() << "expected a checksum error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(path + ":3"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TleFile, MalformedFieldReportsOffendingLineNumber) {
  // A malformed field on line 1 of the second entry (file line 4; the
  // first entry is name-prefixed, lines 1-3). Column 20 sits in the epoch
  // year; the checksum is recomputed so the field parser is what trips.
  const std::string path = testing::TempDir() + "/scod_tle_field.txt";
  const auto [l1, l2] = format_tle(sample_record());
  TleRecord other = sample_record();
  other.catalog_number = 11111;
  auto [o1, o2] = format_tle(other);
  o1[19] = 'x';
  o1[68] = static_cast<char>('0' + tle_checksum(o1));
  {
    std::ofstream out(path);
    out << "NAMED SAT\n" << l1 << "\n" << l2 << "\n" << o1 << "\n" << o2 << "\n";
  }
  try {
    load_tle_file(path);
    FAIL() << "expected a field parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad epoch year field"), std::string::npos) << what;
    EXPECT_NE(what.find(path + ":4"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TleParse, StandaloneLocationUsesBareLineNumbers) {
  // parse_tle with line context but no path says "at line N"; line-2
  // errors point one past the entry's first line.
  const auto [l1, l2] = format_tle(sample_record());
  std::string bad2 = l2;
  bad2[30] = 'x';
  bad2[68] = static_cast<char>('0' + tle_checksum(bad2));
  try {
    parse_tle(l1, bad2, "", {"", 7});
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at line 8"), std::string::npos)
        << e.what();
  }
  // Without context the messages stay unadorned.
  try {
    parse_tle(l1, bad2);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find("at line"), std::string::npos) << e.what();
  }
}

TEST(TleToSatellite, UsesGivenIndex) {
  const TleRecord rec = sample_record();
  const Satellite sat = to_satellite(rec, 42);
  EXPECT_EQ(sat.id, 42u);
  EXPECT_EQ(sat.elements, rec.elements);
}

}  // namespace
}  // namespace scod
