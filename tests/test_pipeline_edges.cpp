#include <gtest/gtest.h>

#include <cmath>

#include "core/grid_pipeline.hpp"
#include "core/screen.hpp"
#include "filters/dense_scan.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "scenario_helpers.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

std::vector<Satellite> small_shell(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Satellite> sats;
  for (std::size_t i = 0; i < n; ++i) {
    KeplerElements el;
    el.semi_major_axis = 7000.0 + rng.uniform(-5.0, 5.0);
    el.eccentricity = rng.uniform(0.0, 1e-4);
    el.inclination = rng.uniform(0.2, kPi - 0.2);
    el.raan = rng.uniform(0.0, kTwoPi);
    el.arg_perigee = rng.uniform(0.0, kTwoPi);
    el.mean_anomaly = rng.uniform(0.0, kTwoPi);
    sats.push_back({static_cast<std::uint32_t>(i), el});
  }
  return sats;
}

TEST(PipelineEdges, HostBudgetTooSmallThrows) {
  const auto sats = small_shell(500, 1);
  ScreeningConfig cfg;
  cfg.t_end = 600.0;
  cfg.memory_budget = 64 << 10;  // 64 KiB: not even one grid + candidate map
  EXPECT_THROW(screen(sats, cfg, Variant::kGrid), std::runtime_error);
}

TEST(PipelineEdges, DeviceMemorySizesThePlan) {
  // The devicesim capacity, not the host budget, must drive the sizing:
  // a tiny device forces multiple rounds even though the host budget is
  // huge, and the result stays correct.
  const auto sats = small_shell(200, 2);
  ScreeningConfig roomy;
  roomy.t_end = 1800.0;
  const auto reference = screen(sats, roomy, Variant::kGrid);

  DeviceProperties props;
  props.memory_bytes = 3 << 20;  // 3 MiB device
  Device tiny(props);
  ScreeningConfig dev_cfg = roomy;
  dev_cfg.device = &tiny;
  dev_cfg.memory_budget = 1ull << 40;  // irrelevant in device mode
  const auto constrained = screen(sats, dev_cfg, Variant::kGrid);

  EXPECT_GT(constrained.stats.rounds, 1u);
  ASSERT_EQ(constrained.conjunctions.size(), reference.conjunctions.size());
  for (std::size_t i = 0; i < reference.conjunctions.size(); ++i) {
    EXPECT_EQ(constrained.conjunctions[i].sat_a, reference.conjunctions[i].sat_a);
    EXPECT_NEAR(constrained.conjunctions[i].tca, reference.conjunctions[i].tca, 1e-3);
  }
  EXPECT_EQ(tiny.memory_used(), 0u);  // everything released
}

TEST(PipelineEdges, DeviceTooSmallThrows) {
  const auto sats = small_shell(2000, 3);
  DeviceProperties props;
  props.memory_bytes = 64 << 10;  // 64 KiB device
  Device tiny(props);
  ScreeningConfig cfg;
  cfg.t_end = 600.0;
  cfg.device = &tiny;
  EXPECT_THROW(screen(sats, cfg, Variant::kGrid), std::runtime_error);
}

TEST(PipelineEdges, HeoApogeesBeyondCubeAreClampedSafely) {
  // Objects whose apogee leaves the (85,000 km)^3 cube clamp into the
  // boundary cells. Distant clamped objects may share a boundary cell,
  // but the distance prefilter / refinement must never turn that into a
  // false conjunction — and the run must not crash or hang.
  std::vector<Satellite> sats;
  // Two GTO-like orbits with apogee ~ 80,000 km in different planes.
  sats.push_back({0, {44000.0, 0.84, 0.4, 0.0, 0.0, 0.0}});
  sats.push_back({1, {44000.0, 0.84, 1.2, 2.0, 1.0, 0.1}});
  // And a LEO pair for contrast.
  sats.push_back({2, {7000.0, 1e-4, 0.5, 0.0, 0.0, 0.0}});
  sats.push_back({3, {7200.0, 1e-4, 1.5, 1.0, 0.0, 1.0}});

  ScreeningConfig cfg;
  cfg.t_end = 20000.0;
  const auto report = screen(sats, cfg, Variant::kGrid);

  // Oracle check: no pair actually approaches within the threshold.
  const ContourKeplerSolver solver;
  const TwoBodyPropagator prop(sats, solver);
  for (const Conjunction& c : report.conjunctions) {
    const double d = prop.distance(c.sat_a, c.sat_b, c.tca);
    EXPECT_LE(d, cfg.threshold_km + 1e-6)
        << "false conjunction " << c.sat_a << "-" << c.sat_b;
  }
}

TEST(PipelineEdges, EncounterAtSpanStartIsReported) {
  // An approach already at its minimum at t_begin: the clamped edge
  // minimum must be reported (Section IV-C span-boundary rule).
  Rng rng(0xE0);
  KeplerElements target{7000.0, 1e-4, 0.8, 0.2, 0.0, 0.7};
  std::vector<Satellite> sats{{0, target}};
  sats.push_back(testutil::make_interceptor(target, 0.0, 1.0, rng, 1));

  ScreeningConfig cfg;
  cfg.t_end = 1200.0;
  const auto report = screen(sats, cfg, Variant::kGrid);
  bool found = false;
  for (const Conjunction& c : report.conjunctions) {
    if (c.tca < 10.0 && c.pca < 2.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PipelineEdges, HybridHalfStencilMatchesFull) {
  // The half-stencil ablation must also hold for the hybrid variant.
  const auto sats = small_shell(60, 4);
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 6000.0;

  GridPipelineOptions full = HybridScreener::default_options();
  GridPipelineOptions half = HybridScreener::default_options();
  half.half_stencil = true;

  const auto r_full = HybridScreener(full).screen(sats, cfg);
  const auto r_half = HybridScreener(half).screen(sats, cfg);
  ASSERT_EQ(r_full.conjunctions.size(), r_half.conjunctions.size());
  for (std::size_t i = 0; i < r_full.conjunctions.size(); ++i) {
    EXPECT_EQ(r_full.conjunctions[i].sat_a, r_half.conjunctions[i].sat_a);
    EXPECT_NEAR(r_full.conjunctions[i].tca, r_half.conjunctions[i].tca, 1e-3);
  }
}

TEST(PipelineEdges, StreamingWithSingleRoundStillWorks) {
  // Degenerate streaming: everything fits into one round; the sink gets
  // exactly one callback carrying all conjunctions.
  const auto sats = small_shell(40, 5);
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 3000.0;

  const ContourKeplerSolver solver;
  const TwoBodyPropagator prop(sats, solver);
  const GridScreener screener;
  const auto batch = screener.screen(prop, cfg);

  std::size_t callbacks = 0;
  std::size_t streamed = 0;
  const auto report = screener.screen_streaming(
      prop, cfg, [&](std::size_t, std::span<const Conjunction> out) {
        ++callbacks;
        streamed += out.size();
      });
  EXPECT_EQ(report.stats.rounds, 1u);
  EXPECT_EQ(callbacks, 1u);
  EXPECT_EQ(streamed, batch.conjunctions.size());
}

}  // namespace
}  // namespace scod
