#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/constants.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/sysinfo.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace scod {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, Vec3(5.0, -3.0, 9.0));
  EXPECT_EQ(a - b, Vec3(-3.0, 7.0, -3.0));
  EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 6.0));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, Vec3(-1.0, -2.0, -3.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 10.0 + 18.0);
}

TEST(Vec3, CrossProductIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 4.0};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
  EXPECT_EQ(Vec3(1, 0, 0).cross(Vec3(0, 1, 0)), Vec3(0, 0, 1));
}

TEST(Vec3, NormAndDistance) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.normalized().norm(), 1.0);
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
  EXPECT_DOUBLE_EQ(Vec3(1, 1, 1).distance(Vec3(1, 1, 3)), 2.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  int histogram[10] = {};
  for (int i = 0; i < 10000; ++i) {
    const auto idx = rng.uniform_index(10);
    ASSERT_LT(idx, 10u);
    ++histogram[idx];
  }
  for (int h : histogram) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Histogram2D, CountsAndClamping) {
  Histogram2D h(0.0, 10.0, 5, 0.0, 1.0, 4);
  h.add(1.0, 0.1);    // bin (0, 0)
  h.add(9.9, 0.99);   // bin (4, 3)
  h.add(-5.0, 2.0);   // clamped to (0, 3)
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.at(0, 0), 1u);
  EXPECT_EQ(h.at(4, 3), 1u);
  EXPECT_EQ(h.at(0, 3), 1u);
  EXPECT_EQ(h.max_count(), 1u);
  EXPECT_DOUBLE_EQ(h.x_bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.y_bin_center(3), 0.875);
}

TEST(Histogram2D, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram2D(0, 1, 0, 0, 1, 4), std::invalid_argument);
  EXPECT_THROW(Histogram2D(1, 1, 4, 0, 1, 4), std::invalid_argument);
}

TEST(CliArgs, ParsesAllForms) {
  const char* argv[] = {"prog", "--count", "42", "--name=xyz", "--flag", "--ratio", "2.5"};
  CliArgs args(7, argv, {"count", "name", "flag", "ratio"});
  EXPECT_EQ(args.get_int("count", 0), 42);
  EXPECT_EQ(args.get_string("name", ""), "xyz");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_TRUE(args.unknown().empty());
}

TEST(CliArgs, CollectsUnknownOptions) {
  const char* argv[] = {"prog", "--nope", "1", "stray"};
  CliArgs args(4, argv, {"count"});
  ASSERT_EQ(args.unknown().size(), 2u);
  EXPECT_EQ(args.unknown()[0], "--nope");
  EXPECT_EQ(args.unknown()[1], "stray");
}

TEST(CliArgs, ParsesIntegerLists) {
  const char* argv[] = {"prog", "--sizes", "1000,2000,4000"};
  CliArgs args(3, argv, {"sizes"});
  EXPECT_EQ(args.get_int_list("sizes", {}), (std::vector<std::int64_t>{1000, 2000, 4000}));
  EXPECT_EQ(args.get_int_list("other", {5}), (std::vector<std::int64_t>{5}));
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", TextTable::num(1.5, 2)});
  table.add_row({"longer", TextTable::integer(42)});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 42    |"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(CsvWriter, WritesAndEscapes) {
  const std::string path = testing::TempDir() + "/scod_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "he,llo"});
    EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"he,llo\"");
  std::remove(path.c_str());
}

TEST(CsvEscape, QuotesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.restart();
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(SystemInfo, QueriesHost) {
  const SystemInfo info = query_system_info();
  EXPECT_GE(info.logical_cpus, 1u);
  EXPECT_GT(info.memory_gib, 0.0);
  EXPECT_FALSE(info.os.empty());
}

TEST(Log, LevelIsProcessGlobalAndFilters) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped before formatting; these calls
  // must be cheap no-ops rather than crashes.
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped ", "three");
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Constants, PhysicallyConsistent) {
  EXPECT_GT(kGeoSemiMajorAxis, kEarthRadius);
  EXPECT_GT(kSimulationHalfExtent, kGeoSemiMajorAxis - 1000.0);
  EXPECT_NEAR(kTwoPi, 2.0 * kPi, 1e-15);
}

}  // namespace
}  // namespace scod
