#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "spatial/cell.hpp"
#include "spatial/grid_hash_set.hpp"
#include "spatial/murmur3.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(GridHashSet, SerialInsertAndFind) {
  GridHashSet set(16);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.find(123), kNoEntry);

  EXPECT_TRUE(set.insert(123, 7, {1.0, 2.0, 3.0}));
  EXPECT_EQ(set.size(), 1u);

  const std::uint32_t head = set.find(123);
  ASSERT_NE(head, kNoEntry);
  EXPECT_EQ(set.entry(head).satellite, 7u);
  EXPECT_EQ(set.entry(head).position, Vec3(1.0, 2.0, 3.0));
  EXPECT_EQ(set.entry(head).next, kNoEntry);
}

TEST(GridHashSet, MultipleSatellitesPerCellFormLinkedList) {
  GridHashSet set(16);
  set.insert(99, 1, {0, 0, 0});
  set.insert(99, 2, {1, 0, 0});
  set.insert(99, 3, {2, 0, 0});

  std::set<std::uint32_t> members;
  for (std::uint32_t e = set.find(99); e != kNoEntry; e = set.entry(e).next) {
    members.insert(set.entry(e).satellite);
  }
  EXPECT_EQ(members, (std::set<std::uint32_t>{1, 2, 3}));
}

TEST(GridHashSet, DistinctCellsAreIsolated) {
  GridHashSet set(16);
  set.insert(10, 1, {});
  set.insert(20, 2, {});
  std::uint32_t h10 = set.find(10);
  std::uint32_t h20 = set.find(20);
  ASSERT_NE(h10, kNoEntry);
  ASSERT_NE(h20, kNoEntry);
  EXPECT_EQ(set.entry(h10).satellite, 1u);
  EXPECT_EQ(set.entry(h20).satellite, 2u);
  EXPECT_EQ(set.entry(h10).next, kNoEntry);
  EXPECT_EQ(set.entry(h20).next, kNoEntry);
  EXPECT_EQ(set.find(30), kNoEntry);
}

TEST(GridHashSet, HashCollisionsResolvedByLinearProbing) {
  // With only 4 entries the slot table has 8+ slots; force many distinct
  // keys through a tiny table sized for exactly its entry count.
  GridHashSet set(64, /*slot_factor=*/1.0);
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(set.insert(k * 7919, static_cast<std::uint32_t>(k), {}));
  }
  EXPECT_EQ(set.size(), 64u);
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::uint32_t head = set.find(k * 7919);
    ASSERT_NE(head, kNoEntry) << k;
    EXPECT_EQ(set.entry(head).satellite, k);
  }
  EXPECT_GE(set.probe_steps(), 0u);
}

TEST(GridHashSet, EntryPoolExhaustionReported) {
  GridHashSet set(2);
  EXPECT_TRUE(set.insert(1, 0, {}));
  EXPECT_TRUE(set.insert(2, 1, {}));
  EXPECT_FALSE(set.insert(3, 2, {}));  // pool of 2 exhausted
}

TEST(GridHashSet, ClearRecyclesEverything) {
  GridHashSet set(8);
  set.insert(5, 0, {});
  set.insert(5, 1, {});
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.find(5), kNoEntry);
  EXPECT_TRUE(set.insert(5, 2, {}));
  const std::uint32_t head = set.find(5);
  EXPECT_EQ(set.entry(head).satellite, 2u);
  EXPECT_EQ(set.entry(head).next, kNoEntry);
}

TEST(GridHashSet, RejectsInvalidConfig) {
  EXPECT_THROW(GridHashSet(0), std::invalid_argument);
  EXPECT_THROW(GridHashSet(10, 0.5), std::invalid_argument);
}

TEST(GridHashSet, MemoryProjectionMatchesActual) {
  GridHashSet set(1000);
  EXPECT_EQ(set.memory_bytes(), GridHashSet::projected_memory_bytes(1000));
  EXPECT_GT(set.memory_bytes(), 1000 * sizeof(GridEntry));
}

class GridHashSetConcurrency : public testing::TestWithParam<std::size_t> {};

TEST_P(GridHashSetConcurrency, ParallelInsertMatchesReference) {
  // The paper's insertion phase: many threads CAS-claim slots and push
  // entries concurrently. Compare the post-barrier content against a
  // serial reference multimap for several key distributions.
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 20000;

  for (std::uint64_t key_space : {8ull, 512ull, 1ull << 20}) {
    GridHashSet set(kN);
    std::vector<std::uint64_t> keys(kN);
    Rng rng(key_space);
    for (auto& k : keys) k = rng.uniform_index(key_space);

    pool.parallel_for(kN, [&](std::size_t i) {
      ASSERT_TRUE(set.insert(keys[i], static_cast<std::uint32_t>(i),
                             {static_cast<double>(i), 0.0, 0.0}));
    });
    ASSERT_EQ(set.size(), kN);

    std::map<std::uint64_t, std::set<std::uint32_t>> reference;
    for (std::size_t i = 0; i < kN; ++i) reference[keys[i]].insert(i);

    std::size_t total = 0;
    for (const auto& [key, sats] : reference) {
      std::set<std::uint32_t> found;
      for (std::uint32_t e = set.find(key); e != kNoEntry; e = set.entry(e).next) {
        const GridEntry& entry = set.entry(e);
        // The entry's payload must be fully visible (release/acquire).
        ASSERT_DOUBLE_EQ(entry.position.x, static_cast<double>(entry.satellite));
        found.insert(entry.satellite);
      }
      ASSERT_EQ(found, sats) << "cell " << key;
      total += found.size();
    }
    EXPECT_EQ(total, kN);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, GridHashSetConcurrency,
                         testing::Values(1, 2, 4, 8));

TEST(GridHashSet, InsertToExactCapacityThenOverflow) {
  // Fill the entry pool to the brim with distinct cells (slot_factor 1.0
  // keeps the table as tight as the constructor allows), then overflow.
  constexpr std::size_t kCap = 256;
  GridHashSet set(kCap, /*slot_factor=*/1.0);
  ASSERT_EQ(set.capacity(), kCap);
  for (std::uint64_t k = 0; k < kCap; ++k) {
    ASSERT_TRUE(set.insert(k * 0x9E3779B97F4A7C15ull, static_cast<std::uint32_t>(k), {}))
        << "insert " << k << " of " << kCap;
  }
  EXPECT_EQ(set.size(), kCap);
  for (std::uint64_t k = 0; k < kCap; ++k) {
    ASSERT_NE(set.find(k * 0x9E3779B97F4A7C15ull), kNoEntry) << k;
  }
  // The pool is exhausted: a fresh cell fails, and so does an insert into
  // an existing cell (its list would need a pool entry too). Neither may
  // corrupt the stored entries.
  EXPECT_FALSE(set.insert(0xDEADBEEFull, kCap, {}));
  EXPECT_FALSE(set.insert(0, kCap, {}));
  EXPECT_EQ(set.size(), kCap);
  for (std::uint64_t k = 0; k < kCap; ++k) {
    const std::uint32_t head = set.find(k * 0x9E3779B97F4A7C15ull);
    ASSERT_NE(head, kNoEntry) << k;
    EXPECT_EQ(set.entry(head).satellite, k);
  }
}

/// Keys whose murmur-derived home slot is exactly `want`, for a table with
/// `slots` power-of-two slots — lets the tests aim probe sequences at
/// specific table regions.
std::vector<std::uint64_t> keys_hashing_to_slot(std::size_t want, std::size_t slots,
                                                std::size_t count) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; keys.size() < count; ++k) {
    if ((murmur3_fmix64(k) & (slots - 1)) == want) keys.push_back(k);
  }
  return keys;
}

TEST(GridHashSet, ProbeSequenceWrapsAroundTableEnd) {
  // Aim every key at the LAST slot of the table; after the first insert
  // claims it, each further probe sequence must wrap past the table end
  // back to slot 0, 1, ... — the (slot + 1) & mask arithmetic under test.
  GridHashSet set(8, /*slot_factor=*/1.0);
  const std::size_t slots = set.slot_count();
  const auto keys = keys_hashing_to_slot(slots - 1, slots, 8);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(set.insert(keys[i], static_cast<std::uint32_t>(i), {}));
  }
  // Inserted serially, the k-th key probes exactly k occupied slots before
  // claiming (slots - 1 + k) & mask: sum = 0 + 1 + ... + 7.
  EXPECT_EQ(set.probe_steps(), 28u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t head = set.find(keys[i]);
    ASSERT_NE(head, kNoEntry) << "key " << keys[i];
    EXPECT_EQ(set.entry(head).satellite, i);
    EXPECT_EQ(set.entry(head).next, kNoEntry);  // distinct cells, no list
  }
  // An absent key homed at slot 0 probes across the wrapped cluster until
  // the first empty slot and must come back empty-handed, not loop.
  EXPECT_EQ(set.find(keys_hashing_to_slot(0, slots, 1)[0]), kNoEntry);
}

TEST(GridHashSet, ConcurrentInsertOfHashCollidingCells) {
  // All keys home to the same slot, so every CAS slot claim and every
  // wrapped probe step contends; half the inserts also share one cell key
  // and race on the list push-front CAS instead.
  ThreadPool pool(8);
  constexpr std::size_t kN = 4096;
  GridHashSet set(kN, /*slot_factor=*/2.0);
  const auto colliding = keys_hashing_to_slot(0, set.slot_count(), kN / 2);

  pool.parallel_for(kN, [&](std::size_t i) {
    // Even i: distinct colliding cell keys. Odd i: one shared hot cell.
    const std::uint64_t key = (i % 2 == 0) ? colliding[i / 2] : colliding[0];
    ASSERT_TRUE(set.insert(key, static_cast<std::uint32_t>(i), {}));
  });
  ASSERT_EQ(set.size(), kN);

  std::set<std::uint32_t> hot_members;
  for (std::uint32_t e = set.find(colliding[0]); e != kNoEntry;
       e = set.entry(e).next) {
    EXPECT_TRUE(hot_members.insert(set.entry(e).satellite).second);
  }
  // The hot cell holds all odd ids plus even id 0 (colliding[0] is its key).
  EXPECT_EQ(hot_members.size(), kN / 2 + 1);
  for (std::size_t i = 1; i < kN / 2; ++i) {
    const std::uint32_t head = set.find(colliding[i]);
    ASSERT_NE(head, kNoEntry) << i;
    EXPECT_EQ(set.entry(head).satellite, 2 * i);
    EXPECT_EQ(set.entry(head).next, kNoEntry);
  }
}

TEST(GridHashSet, MoveTransfersContents) {
  GridHashSet a(8);
  a.insert(42, 5, {1, 1, 1});
  GridHashSet b = std::move(a);
  const std::uint32_t head = b.find(42);
  ASSERT_NE(head, kNoEntry);
  EXPECT_EQ(b.entry(head).satellite, 5u);
  EXPECT_EQ(b.size(), 1u);

  GridHashSet c(4);
  c = std::move(b);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_NE(c.find(42), kNoEntry);
}

TEST(GridHashSet, SlotIterationFindsAllCells) {
  GridHashSet set(32);
  std::set<std::uint64_t> keys{3, 77, 1024, 99999};
  std::uint32_t id = 0;
  for (std::uint64_t k : keys) set.insert(k, id++, {});

  std::set<std::uint64_t> seen;
  for (std::size_t s = 0; s < set.slot_count(); ++s) {
    const std::uint64_t key = set.slot_key(s);
    if (key == kEmptySlotKey) continue;
    seen.insert(key);
    EXPECT_NE(set.slot_head(s), kNoEntry);
  }
  EXPECT_EQ(seen, keys);
}

}  // namespace
}  // namespace scod
