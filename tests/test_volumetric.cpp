#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "population/generator.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"
#include "volumetric/cube.hpp"
#include "volumetric/octree.hpp"

namespace scod {
namespace {

// ---------------------------------------------------------------- Octree

TEST(Octree, MatchesBruteForceRadiusQueries) {
  Rng rng(44);
  std::vector<Octree::Point> points;
  for (std::uint32_t i = 0; i < 800; ++i) {
    points.push_back({{rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0),
                       rng.uniform(-200.0, 200.0)},
                      i});
  }
  const Octree tree(points, 250.0);
  EXPECT_EQ(tree.size(), 800u);
  EXPECT_GT(tree.node_count(), 8u);

  for (int q = 0; q < 60; ++q) {
    const Vec3 query{rng.uniform(-220.0, 220.0), rng.uniform(-220.0, 220.0),
                     rng.uniform(-220.0, 220.0)};
    const double radius = rng.uniform(2.0, 60.0);
    std::set<std::uint32_t> expected;
    for (const auto& p : points) {
      if (p.position.distance(query) <= radius) expected.insert(p.id);
    }
    const auto found = tree.within(query, radius);
    EXPECT_EQ(std::set<std::uint32_t>(found.begin(), found.end()), expected)
        << "query " << q;
  }
}

TEST(Octree, HandlesDegenerateInputs) {
  EXPECT_EQ(Octree({}, 100.0).size(), 0u);
  EXPECT_TRUE(Octree({}, 100.0).within({0, 0, 0}, 5.0).empty());
  EXPECT_THROW(Octree({}, 0.0), std::invalid_argument);

  // Many identical points: subdivision cannot separate them and must stop
  // at max_depth instead of recursing forever.
  std::vector<Octree::Point> same(100, {{1.0, 2.0, 3.0}, 0});
  for (std::uint32_t i = 0; i < same.size(); ++i) same[i].id = i;
  const Octree tree(same, 10.0, 4, 6);
  EXPECT_EQ(tree.within({1.0, 2.0, 3.0}, 0.1).size(), 100u);
  EXPECT_TRUE(tree.within({-5.0, 0.0, 0.0}, 0.1).empty());
}

TEST(Octree, LeafCapacityControlsDepth) {
  Rng rng(9);
  std::vector<Octree::Point> points;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    points.push_back({{rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0),
                       rng.uniform(-50.0, 50.0)},
                      i});
  }
  const Octree coarse(points, 60.0, /*leaf_capacity=*/256);
  const Octree fine(points, 60.0, /*leaf_capacity=*/4);
  EXPECT_LT(coarse.node_count(), fine.node_count());
  // Both must still answer identically.
  const auto a = coarse.within({0, 0, 0}, 20.0);
  const auto b = fine.within({0, 0, 0}, 20.0);
  EXPECT_EQ(std::set<std::uint32_t>(a.begin(), a.end()),
            std::set<std::uint32_t>(b.begin(), b.end()));
}

// ------------------------------------------------------------------ Cube

TEST(CubeMethod, ValidatesArguments) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, {7000.0, 1e-4, 0.5, 0, 0, 0}},
                                    {1, {7000.0, 1e-4, 1.5, 1, 0, 1}}};
  const TwoBodyPropagator prop(sats, solver);
  EXPECT_THROW(cube_collision_estimate(prop, 10.0, 10.0), std::invalid_argument);
  CubeConfig bad;
  bad.cube_size_km = 0.0;
  EXPECT_THROW(cube_collision_estimate(prop, 0.0, 100.0, bad), std::invalid_argument);
  CubeConfig none;
  none.samples = 0;
  EXPECT_THROW(cube_collision_estimate(prop, 0.0, 100.0, none), std::invalid_argument);
}

TEST(CubeMethod, EmptyAndSinglePopulations) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> one{{0, {7000.0, 1e-4, 0.5, 0, 0, 0}}};
  const TwoBodyPropagator prop(one, solver);
  const CubeResult r = cube_collision_estimate(prop, 0.0, 1000.0);
  EXPECT_DOUBLE_EQ(r.expected_collisions, 0.0);
  EXPECT_TRUE(r.pair_rates.empty());
}

TEST(CubeMethod, SeparatedShellsNeverShareCubes) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, {7000.0, 1e-4, 0.5, 0, 0, 0}},
                                    {1, {8000.0, 1e-4, 1.5, 1, 0, 1}}};
  const TwoBodyPropagator prop(sats, solver);
  CubeConfig config;
  config.cube_size_km = 50.0;
  config.samples = 500;
  const CubeResult r = cube_collision_estimate(prop, 0.0, 20000.0, config);
  EXPECT_DOUBLE_EQ(r.expected_collisions, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_pairs_per_sample, 0.0);
}

TEST(CubeMethod, CoOrbitingPairMatchesAnalyticCoResidency) {
  // Two objects on the same circular orbit, separated along-track by less
  // than a cube edge: with an axis-aligned-ish geometry they share a cube
  // a large, predictable fraction of the time. Check the co-residency
  // fraction and the analytic rate formula v_rel * sigma / dU.
  const NewtonKeplerSolver solver;
  KeplerElements a{7000.0, 1e-6, 0.0, 0.0, 0.0, 0.0};
  KeplerElements b = a;
  b.mean_anomaly = 2.0 / 7000.0;  // ~2 km along-track separation
  const std::vector<Satellite> sats{{0, a}, {1, b}};
  const TwoBodyPropagator prop(sats, solver);

  CubeConfig config;
  config.cube_size_km = 100.0;
  config.samples = 4000;
  config.object_radius_km = 0.01;
  const double span = 20000.0;
  const CubeResult r = cube_collision_estimate(prop, 0.0, span, config);

  // With 2 km separation in 100 km cubes they share a cube unless the
  // boundary falls between them: expected co-residency ~ 1 - 3*(2/100).
  ASSERT_EQ(r.pair_rates.size(), 1u);
  const double fraction = static_cast<double>(r.pair_rates[0].co_residencies) /
                          static_cast<double>(config.samples);
  EXPECT_GT(fraction, 0.85);
  EXPECT_LE(fraction, 1.0);

  // Co-orbiting: v_rel ~ 0, so the *rate* is tiny even though the pair is
  // always co-resident — the known blind spot of the Cube method for
  // constellations (Lewis et al. 2019), quantified:
  const double v_leo = std::sqrt(kMuEarth / 7000.0);
  const double sigma = kPi * config.object_radius_km * config.object_radius_km;
  const double du = std::pow(config.cube_size_km, 3);
  const double crossing_rate_bound = v_leo * sigma / du * span;
  EXPECT_LT(r.expected_collisions, crossing_rate_bound * 0.01)
      << "co-orbiting pair should contribute ~zero kinetic collision rate";
}

TEST(CubeMethod, CrossingPairRateMatchesFormula) {
  // Two circular orbits of equal radius in perpendicular planes cross at
  // the nodes with v_rel ~ sqrt(2) v_orb; each co-residency sample must
  // contribute exactly v_rel * sigma / dU * span / samples.
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, {7000.0, 1e-6, 0.0, 0.0, 0.0, 0.0}},
                                    {1, {7000.0, 1e-6, kPi / 2.0, 0.0, 0.0, 0.0}}};
  const TwoBodyPropagator prop(sats, solver);

  CubeConfig config;
  config.cube_size_km = 200.0;
  config.samples = 6000;
  config.object_radius_km = 0.01;
  const double span = 30000.0;
  const CubeResult r = cube_collision_estimate(prop, 0.0, span, config);

  ASSERT_EQ(r.pair_rates.size(), 1u);
  const auto& pair = r.pair_rates[0];
  ASSERT_GT(pair.co_residencies, 10u);  // they do meet at the node

  const double v_orb = std::sqrt(kMuEarth / 7000.0);
  const double v_rel = std::sqrt(2.0) * v_orb;  // perpendicular planes
  const double sigma = kPi * config.object_radius_km * config.object_radius_km;
  const double du = std::pow(config.cube_size_km, 3);
  const double expected_per_sample = v_rel * sigma / du * span /
                                     static_cast<double>(config.samples);
  const double measured_per_sample =
      pair.expected_collisions / static_cast<double>(pair.co_residencies);
  // v_rel during co-residency varies with the distance to the node; near
  // the node it is sqrt(2) v_orb to within a few percent.
  EXPECT_NEAR(measured_per_sample / expected_per_sample, 1.0, 0.1);
}

TEST(CubeMethod, DeterministicInSeed) {
  const NewtonKeplerSolver solver;
  const auto sats = generate_population({60, 3});
  const TwoBodyPropagator prop(sats, solver);
  CubeConfig config;
  config.samples = 300;
  config.cube_size_km = 50.0;
  const CubeResult r1 = cube_collision_estimate(prop, 0.0, 5000.0, config);
  const CubeResult r2 = cube_collision_estimate(prop, 0.0, 5000.0, config);
  EXPECT_DOUBLE_EQ(r1.expected_collisions, r2.expected_collisions);
  EXPECT_EQ(r1.pair_rates.size(), r2.pair_rates.size());

  config.seed += 1;
  const CubeResult r3 = cube_collision_estimate(prop, 0.0, 5000.0, config);
  // Different sampling epochs: almost surely different co-residency sets.
  EXPECT_NE(r1.mean_pairs_per_sample, r3.mean_pairs_per_sample);
}

TEST(CubeMethod, ThreadCountInvariant) {
  const NewtonKeplerSolver solver;
  const auto sats = generate_population({40, 5});
  const TwoBodyPropagator prop(sats, solver);
  ThreadPool one(1), four(4);
  CubeConfig c1;
  c1.samples = 400;
  c1.cube_size_km = 50.0;
  c1.pool = &one;
  CubeConfig c4 = c1;
  c4.pool = &four;
  const CubeResult r1 = cube_collision_estimate(prop, 0.0, 5000.0, c1);
  const CubeResult r4 = cube_collision_estimate(prop, 0.0, 5000.0, c4);
  EXPECT_DOUBLE_EQ(r1.expected_collisions, r4.expected_collisions);
  EXPECT_DOUBLE_EQ(r1.mean_pairs_per_sample, r4.mean_pairs_per_sample);
  ASSERT_EQ(r1.pair_rates.size(), r4.pair_rates.size());
  for (std::size_t i = 0; i < r1.pair_rates.size(); ++i) {
    EXPECT_EQ(r1.pair_rates[i].sat_a, r4.pair_rates[i].sat_a);
    EXPECT_EQ(r1.pair_rates[i].co_residencies, r4.pair_rates[i].co_residencies);
  }
}

}  // namespace
}  // namespace scod
