#include <gtest/gtest.h>

#include <cmath>

#include "orbit/anomaly.hpp"
#include "orbit/elements.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "orbit/state.hpp"
#include "util/constants.hpp"

namespace scod {
namespace {

KeplerElements leo_orbit() {
  return {7000.0, 0.01, 0.9, 1.2, 0.4, 2.1};
}

TEST(Anomaly, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(0.5), 0.5, 1e-15);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(5.0 * kTwoPi), 0.0, 1e-9);
}

TEST(Anomaly, WrapPi) {
  EXPECT_NEAR(wrap_pi(0.5), 0.5, 1e-15);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi + 0.1), -kPi + 0.1, 1e-12);
}

class AnomalyRoundTrip : public testing::TestWithParam<double> {};

TEST_P(AnomalyRoundTrip, EccentricTrueInverse) {
  const double e = GetParam();
  for (int k = 0; k < 48; ++k) {
    const double big_e = kTwoPi * k / 48.0;
    const double f = eccentric_to_true(big_e, e);
    EXPECT_NEAR(true_to_eccentric(f, e), wrap_two_pi(big_e), 1e-10)
        << "E=" << big_e << " e=" << e;
  }
}

TEST_P(AnomalyRoundTrip, MeanFollowsKeplersEquation) {
  const double e = GetParam();
  for (int k = 0; k < 48; ++k) {
    const double big_e = kTwoPi * k / 48.0;
    const double m = eccentric_to_mean(big_e, e);
    EXPECT_NEAR(m, wrap_two_pi(big_e - e * std::sin(big_e)), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Eccentricities, AnomalyRoundTrip,
                         testing::Values(0.0, 0.001, 0.1, 0.5, 0.9, 0.99));

TEST(Anomaly, CircularOrbitAnomaliesCoincide) {
  for (double f = 0.0; f < kTwoPi; f += 0.37) {
    EXPECT_NEAR(true_to_mean(f, 0.0), wrap_two_pi(f), 1e-12);
  }
}

TEST(Frames, RotationIsOrthonormal) {
  const Mat3 r = perifocal_to_eci(0.7, 1.1, 2.3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (int k = 0; k < 3; ++k) dot += r.m[k][i] * r.m[k][j];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Frames, IdentityForZeroAngles) {
  const Mat3 r = perifocal_to_eci(0.0, 0.0, 0.0);
  const Vec3 v{1.0, 2.0, 3.0};
  const Vec3 rv = r * v;
  EXPECT_NEAR(rv.x, v.x, 1e-14);
  EXPECT_NEAR(rv.y, v.y, 1e-14);
  EXPECT_NEAR(rv.z, v.z, 1e-14);
}

TEST(Frames, TransposeIsInverse) {
  const Mat3 r = perifocal_to_eci(1.4, 0.3, 5.1);
  const Vec3 v{4.0, -2.0, 7.0};
  const Vec3 back = r.transposed() * (r * v);
  EXPECT_NEAR(back.x, v.x, 1e-12);
  EXPECT_NEAR(back.y, v.y, 1e-12);
  EXPECT_NEAR(back.z, v.z, 1e-12);
}

TEST(Frames, OrbitNormalMatchesRotationZColumn) {
  const double inc = 1.1, raan = 2.7;
  const Vec3 n = orbit_normal(inc, raan);
  const Mat3 r = perifocal_to_eci(inc, raan, 0.6);
  EXPECT_NEAR(n.x, r.m[0][2], 1e-12);
  EXPECT_NEAR(n.y, r.m[1][2], 1e-12);
  EXPECT_NEAR(n.z, r.m[2][2], 1e-12);
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
}

TEST(Geometry, ApsidesAndLatus) {
  const KeplerElements el = leo_orbit();
  EXPECT_DOUBLE_EQ(apogee_radius(el), 7070.0);
  EXPECT_DOUBLE_EQ(perigee_radius(el), 6930.0);
  EXPECT_DOUBLE_EQ(semi_latus_rectum(el), 7000.0 * (1.0 - 0.0001));
  EXPECT_DOUBLE_EQ(radius_at_true_anomaly(el, 0.0), perigee_radius(el));
  EXPECT_NEAR(radius_at_true_anomaly(el, kPi), apogee_radius(el), 1e-9);
}

TEST(Geometry, GeostationaryPeriodIsOneDay) {
  KeplerElements geo{kGeoSemiMajorAxis, 0.0, 0.0, 0.0, 0.0, 0.0};
  // Sidereal day ~ 86164 s.
  EXPECT_NEAR(orbital_period(geo), 86164.0, 20.0);
  EXPECT_NEAR(mean_motion(geo) * orbital_period(geo), kTwoPi, 1e-12);
}

TEST(Geometry, VisVivaSpeeds) {
  const KeplerElements el = leo_orbit();
  EXPECT_GT(max_speed(el), min_speed(el));
  // Circular-orbit speed at 7000 km is ~7.55 km/s.
  KeplerElements circ{7000.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(speed_at_radius(circ, 7000.0), std::sqrt(kMuEarth / 7000.0), 1e-12);
  EXPECT_NEAR(max_speed(circ), min_speed(circ), 1e-12);
}

TEST(Geometry, PlaneAngle) {
  KeplerElements a = leo_orbit();
  KeplerElements b = a;
  EXPECT_NEAR(plane_angle(a, b), 0.0, 1e-12);
  b.inclination += 0.3;
  EXPECT_NEAR(plane_angle(a, b), 0.3, 1e-12);
  // Opposite normals describe the same plane.
  KeplerElements c = a;
  c.inclination = kPi - a.inclination;
  c.raan = wrap_two_pi(a.raan + kPi);
  EXPECT_NEAR(plane_angle(a, c), 0.0, 1e-9);
}

TEST(Geometry, ValidityChecks) {
  EXPECT_TRUE(is_valid_orbit(leo_orbit()));
  EXPECT_FALSE(is_valid_orbit({-7000.0, 0.0, 0, 0, 0, 0}));   // negative a
  EXPECT_FALSE(is_valid_orbit({7000.0, 1.1, 0, 0, 0, 0}));    // hyperbolic
  EXPECT_FALSE(is_valid_orbit({6200.0, 0.0, 0, 0, 0, 0}));    // below surface
  EXPECT_FALSE(is_valid_orbit({20000.0, 0.7, 0, 0, 0, 0}));   // perigee dips in
}

TEST(State, PositionOnConicAtKeyAnomalies) {
  const KeplerElements el{8000.0, 0.2, 0.0, 0.0, 0.0, 0.0};
  const StateVector at_perigee = state_at_true_anomaly(el, 0.0);
  EXPECT_NEAR(at_perigee.position.norm(), perigee_radius(el), 1e-9);
  const StateVector at_apogee = state_at_true_anomaly(el, kPi);
  EXPECT_NEAR(at_apogee.position.norm(), apogee_radius(el), 1e-9);
  // Velocity is perpendicular to position at the apsides.
  EXPECT_NEAR(at_perigee.position.dot(at_perigee.velocity), 0.0, 1e-6);
  EXPECT_NEAR(at_apogee.position.dot(at_apogee.velocity), 0.0, 1e-6);
}

TEST(State, EnergyAndAngularMomentumMatchElements) {
  const KeplerElements el = leo_orbit();
  for (double f = 0.1; f < kTwoPi; f += 0.9) {
    const StateVector s = state_at_true_anomaly(el, f);
    const double r = s.position.norm();
    const double v2 = s.velocity.norm2();
    const double energy = v2 / 2.0 - kMuEarth / r;
    EXPECT_NEAR(energy, -kMuEarth / (2.0 * el.semi_major_axis), 1e-8);
    const double h = s.position.cross(s.velocity).norm();
    EXPECT_NEAR(h, std::sqrt(kMuEarth * semi_latus_rectum(el)), 1e-8);
  }
}

class StateRoundTrip : public testing::TestWithParam<KeplerElements> {};

TEST_P(StateRoundTrip, ElementsSurviveConversion) {
  const KeplerElements el = GetParam();
  for (double f : {0.3, 1.7, 3.0, 4.9}) {
    // The element set is defined at the instant of the state, so compare
    // against elements whose mean anomaly equals that of the sample point.
    const StateVector s = state_at_true_anomaly(el, f);
    const KeplerElements back = elements_from_state(s);
    EXPECT_NEAR(back.semi_major_axis, el.semi_major_axis, 1e-6);
    EXPECT_NEAR(back.eccentricity, el.eccentricity, 1e-9);
    EXPECT_NEAR(back.inclination, el.inclination, 1e-9);
    EXPECT_NEAR(wrap_pi(back.raan - el.raan), 0.0, 1e-9);
    EXPECT_NEAR(wrap_pi(back.arg_perigee - el.arg_perigee), 0.0, 1e-7);
    EXPECT_NEAR(wrap_pi(back.mean_anomaly - true_to_mean(f, el.eccentricity)), 0.0,
                1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariousOrbits, StateRoundTrip,
    testing::Values(KeplerElements{7000.0, 0.01, 0.9, 1.2, 0.4, 0.0},
                    KeplerElements{8000.0, 0.2, 1.5, 4.0, 2.0, 0.0},
                    KeplerElements{26560.0, 0.005, 0.96, 0.3, 5.5, 0.0},
                    KeplerElements{42164.0, 0.0003, 0.05, 2.2, 1.0, 0.0},
                    KeplerElements{24400.0, 0.72, 1.1, 3.3, 4.7, 0.0}));

TEST(State, CircularEquatorialDegenerateCase) {
  // e ~ 0, i ~ 0: RAAN and argp undefined; conventions must still give a
  // consistent state round trip.
  const KeplerElements el{42164.0, 0.0, 0.0, 0.0, 0.0, 1.3};
  const StateVector s = state_at_true_anomaly(el, 1.3);
  const KeplerElements back = elements_from_state(s);
  EXPECT_NEAR(back.semi_major_axis, el.semi_major_axis, 1e-6);
  EXPECT_NEAR(back.eccentricity, 0.0, 1e-10);
  const StateVector s2 = state_at_true_anomaly(
      back, eccentric_to_true(back.mean_anomaly, back.eccentricity));
  EXPECT_NEAR(s2.position.distance(s.position), 0.0, 1e-5);
}

}  // namespace
}  // namespace scod
