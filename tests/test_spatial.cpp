#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "spatial/cell.hpp"
#include "spatial/conjunction_set.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/murmur3.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(Murmur3, Fmix64AvalanchesAndIsDeterministic) {
  EXPECT_EQ(murmur3_fmix64(0x1234), murmur3_fmix64(0x1234));
  EXPECT_NE(murmur3_fmix64(1), murmur3_fmix64(2));
  // fmix64 is a bijection: distinct inputs map to distinct outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t k = 0; k < 4096; ++k) outputs.insert(murmur3_fmix64(k));
  EXPECT_EQ(outputs.size(), 4096u);
  // fmix64(0) == 0 by construction.
  EXPECT_EQ(murmur3_fmix64(0), 0u);
}

TEST(Murmur3, EmptyInputSeedZeroIsZero) {
  std::uint64_t lo = 1, hi = 1;
  murmur3_x64_128("", 0, 0, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
}

TEST(Murmur3, SmhasherVerificationValue) {
  // Austin Appleby's smhasher VerificationTest: hash keys {0}, {0,1}, ...,
  // {0..254} with seed 256-len, hash the concatenated digests with seed 0,
  // and compare the first 32 bits against the published constant for
  // MurmurHash3_x64_128. This pins our port bit-for-bit to the original.
  std::uint8_t key[256];
  std::uint8_t hashes[256 * 16];
  for (int i = 0; i < 256; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    std::uint64_t lo = 0, hi = 0;
    murmur3_x64_128(key, static_cast<std::size_t>(i),
                    static_cast<std::uint64_t>(256 - i), &lo, &hi);
    std::memcpy(hashes + i * 16, &lo, 8);
    std::memcpy(hashes + i * 16 + 8, &hi, 8);
  }
  std::uint64_t lo = 0, hi = 0;
  murmur3_x64_128(hashes, sizeof(hashes), 0, &lo, &hi);
  std::uint32_t verification;
  std::memcpy(&verification, &lo, 4);
  EXPECT_EQ(verification, 0x6384BA69u);
}

TEST(Murmur3, SeedChangesHash) {
  const char* data = "spatial";
  EXPECT_NE(murmur3_x64_64(data, 7, 0), murmur3_x64_64(data, 7, 1));
}

TEST(Murmur3, AllTailLengthsCovered) {
  // Exercise every tail-switch branch (lengths 0..16) and check
  // prefix-extension changes the hash.
  const std::string base(32, 'x');
  std::uint64_t previous = 0;
  for (std::size_t len = 0; len <= 17; ++len) {
    const std::uint64_t h = murmur3_x64_64(base.data(), len, 7);
    if (len > 0) {
      EXPECT_NE(h, previous) << "len=" << len;
    }
    previous = h;
  }
}

TEST(CellSize, FollowsEquationOne) {
  EXPECT_DOUBLE_EQ(grid_cell_size(2.0, 1.0), 2.0 + 7.8);
  EXPECT_DOUBLE_EQ(grid_cell_size(2.0, 9.0), 2.0 + 70.2);
  EXPECT_DOUBLE_EQ(grid_cell_size(0.5, 0.0), 0.5);
}

TEST(CellIndexer, MapsPositionsToCells) {
  const CellIndexer indexer(10.0, 100.0);
  EXPECT_EQ(indexer.cells_per_axis(), 20);
  EXPECT_EQ(indexer.cell_of({-100.0, -100.0, -100.0}), (CellCoord{0, 0, 0}));
  EXPECT_EQ(indexer.cell_of({0.0, 0.0, 0.0}), (CellCoord{10, 10, 10}));
  EXPECT_EQ(indexer.cell_of({99.9, 99.9, 99.9}), (CellCoord{19, 19, 19}));
  // Out-of-range positions clamp into the border cells.
  EXPECT_EQ(indexer.cell_of({1e6, -1e6, 0.0}), (CellCoord{19, 0, 10}));
}

TEST(CellIndexer, PackUnpackRoundTrip) {
  const CellIndexer indexer(5.0, 50000.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const CellCoord c{static_cast<std::int32_t>(rng.uniform_index(20000)) - 1000,
                      static_cast<std::int32_t>(rng.uniform_index(20000)) - 1000,
                      static_cast<std::int32_t>(rng.uniform_index(20000)) - 1000};
    EXPECT_EQ(indexer.unpack(indexer.pack(c)), c);
  }
}

TEST(CellIndexer, NegativeNeighborCoordsPackDistinctly) {
  // Neighbour scans at the cube boundary produce coordinate -1; those keys
  // must be valid and distinct from every in-range cell.
  const CellIndexer indexer(10.0, 100.0);
  const std::uint64_t edge = indexer.pack({0, 0, 0});
  const std::uint64_t outside = indexer.pack({-1, 0, 0});
  EXPECT_NE(edge, outside);
  EXPECT_EQ(indexer.unpack(outside), (CellCoord{-1, 0, 0}));
}

TEST(CellIndexer, AdjacentPositionsWithinCellSizeAreNeighbours) {
  // The geometric property behind Eq. (1): two points closer than one cell
  // size differ by at most 1 in every cell coordinate.
  const CellIndexer indexer(12.0, 50000.0);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p{rng.uniform(-40000.0, 40000.0), rng.uniform(-40000.0, 40000.0),
                 rng.uniform(-40000.0, 40000.0)};
    Vec3 q = p;
    // Random offset with norm < cell size.
    const Vec3 offset{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                      rng.uniform(-1.0, 1.0)};
    q += offset.normalized() * rng.uniform(0.0, 12.0 * 0.999);
    const CellCoord ca = indexer.cell_of(p);
    const CellCoord cb = indexer.cell_of(q);
    EXPECT_LE(std::abs(ca.x - cb.x), 1);
    EXPECT_LE(std::abs(ca.y - cb.y), 1);
    EXPECT_LE(std::abs(ca.z - cb.z), 1);
  }
}

TEST(CellIndexer, RejectsInvalidConfig) {
  EXPECT_THROW(CellIndexer(0.0), std::invalid_argument);
  EXPECT_THROW(CellIndexer(-1.0), std::invalid_argument);
  EXPECT_THROW(CellIndexer(10.0, -5.0), std::invalid_argument);
  // 21-bit axis limit: half-extent 42500 km at 1 m cells would overflow.
  EXPECT_THROW(CellIndexer(0.001), std::invalid_argument);
}

TEST(Neighborhood, FullStencilHas27UniqueOffsets) {
  const auto& offsets = cell_neighborhood();
  EXPECT_EQ(offsets.size(), 27u);
  EXPECT_EQ(offsets[0], (CellCoord{0, 0, 0}));
  std::set<std::tuple<int, int, int>> unique;
  for (const CellCoord& o : offsets) {
    EXPECT_GE(o.x, -1);
    EXPECT_LE(o.x, 1);
    unique.insert({o.x, o.y, o.z});
  }
  EXPECT_EQ(unique.size(), 27u);
}

TEST(Neighborhood, HalfStencilCoversEachPairOnce) {
  const auto& half = cell_half_neighborhood();
  EXPECT_EQ(half.size(), 14u);
  EXPECT_EQ(half[0], (CellCoord{0, 0, 0}));
  // For every non-self offset o, exactly one of {o, -o} is in the half
  // stencil.
  for (const CellCoord& o : cell_neighborhood()) {
    if (o == CellCoord{0, 0, 0}) continue;
    int count = 0;
    for (const CellCoord& h : half) {
      if (h == o) ++count;
      if (h == CellCoord{-o.x, -o.y, -o.z}) ++count;
    }
    EXPECT_EQ(count, 1) << o.x << "," << o.y << "," << o.z;
  }
}

TEST(CandidateSet, PackUnpackRoundTrip) {
  const std::uint64_t key = pack_candidate(42, 7, 1234);
  const Candidate c = unpack_candidate(key);
  EXPECT_EQ(c.sat_a, 7u);  // normalized to (min, max)
  EXPECT_EQ(c.sat_b, 42u);
  EXPECT_EQ(c.step, 1234u);
  EXPECT_EQ(pack_candidate(7, 42, 1234), key);
}

TEST(CandidateSet, PackValidatesRanges) {
  EXPECT_NO_THROW(pack_candidate((1u << 20) - 1, 0, 0));
  EXPECT_THROW(pack_candidate(1u << 20, 0, 0), std::out_of_range);
  EXPECT_THROW(pack_candidate(0, 1, 1u << 24), std::out_of_range);
}

TEST(CandidateSet, InsertDeduplicates) {
  CandidateSet set(100);
  EXPECT_EQ(set.insert(1, 2, 3), CandidateSet::Insert::kInserted);
  EXPECT_EQ(set.insert(2, 1, 3), CandidateSet::Insert::kDuplicate);
  EXPECT_EQ(set.insert(1, 2, 4), CandidateSet::Insert::kInserted);
  EXPECT_EQ(set.size(), 2u);
}

TEST(CandidateSet, DrainReturnsAllStored) {
  CandidateSet set(1000);
  std::set<std::uint64_t> reference;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.uniform_index(100));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.uniform_index(100));
    if (a == b) continue;
    const std::uint32_t step = static_cast<std::uint32_t>(rng.uniform_index(50));
    set.insert(a, b, step);
    reference.insert(pack_candidate(a, b, step));
  }
  const auto drained = set.drain();
  EXPECT_EQ(drained.size(), reference.size());
  for (const Candidate& c : drained) {
    EXPECT_TRUE(reference.count(pack_candidate(c.sat_a, c.sat_b, c.step)));
  }
}

TEST(CandidateSet, ReportsFullAndGrows) {
  CandidateSet set(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(set.insert(i, i + 1, 0), CandidateSet::Insert::kInserted);
  }
  EXPECT_EQ(set.insert(50, 51, 0), CandidateSet::Insert::kFull);
  // Duplicates are still recognized when full.
  EXPECT_EQ(set.insert(0, 1, 0), CandidateSet::Insert::kDuplicate);

  set.grow();
  EXPECT_EQ(set.size(), 4u);  // contents preserved
  EXPECT_EQ(set.insert(50, 51, 0), CandidateSet::Insert::kInserted);
  EXPECT_EQ(set.insert(0, 1, 0), CandidateSet::Insert::kDuplicate);
  EXPECT_EQ(set.size(), 5u);
}

TEST(CandidateSet, ClearEmptiesTheSet) {
  CandidateSet set(16);
  set.insert(1, 2, 3);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.drain().empty());
  EXPECT_EQ(set.insert(1, 2, 3), CandidateSet::Insert::kInserted);
}

TEST(KdTree, MatchesBruteForceRadiusQueries) {
  Rng rng(21);
  std::vector<KdTree::Point> points;
  for (std::uint32_t i = 0; i < 500; ++i) {
    points.push_back({{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0),
                       rng.uniform(-100.0, 100.0)},
                      i});
  }
  const KdTree tree(points);
  EXPECT_EQ(tree.size(), 500u);

  for (int q = 0; q < 50; ++q) {
    const Vec3 query{rng.uniform(-110.0, 110.0), rng.uniform(-110.0, 110.0),
                     rng.uniform(-110.0, 110.0)};
    const double radius = rng.uniform(1.0, 40.0);

    std::set<std::uint32_t> expected;
    for (const auto& p : points) {
      if (p.position.distance(query) <= radius) expected.insert(p.id);
    }
    const auto found = tree.within(query, radius);
    EXPECT_EQ(std::set<std::uint32_t>(found.begin(), found.end()), expected);
  }
}

TEST(KdTree, EmptyAndSingleton) {
  const KdTree empty({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.within({0, 0, 0}, 10.0).empty());

  const KdTree one({{{1.0, 2.0, 3.0}, 9}});
  EXPECT_EQ(one.within({1.0, 2.0, 3.0}, 0.1), std::vector<std::uint32_t>{9});
  EXPECT_TRUE(one.within({50.0, 0.0, 0.0}, 1.0).empty());
}

}  // namespace
}  // namespace scod
