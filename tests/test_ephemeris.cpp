#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/ephemeris.hpp"
#include "propagation/j2_secular.hpp"
#include "propagation/tle_secular.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

TEST(GravityModel, PointMassMatchesNewton) {
  ForceModel none;
  none.include_j2 = false;
  const Vec3 r{7000.0, 0.0, 0.0};
  const Vec3 a = gravity_acceleration(r, none);
  EXPECT_NEAR(a.x, -kMuEarth / (7000.0 * 7000.0), 1e-12);
  EXPECT_NEAR(a.y, 0.0, 1e-15);
  EXPECT_NEAR(a.z, 0.0, 1e-15);
}

class GravityGradient : public testing::TestWithParam<Vec3> {};

TEST_P(GravityGradient, AccelerationIsPotentialGradient) {
  // The closed-form J2/J3 accelerations must equal the finite-difference
  // gradient of the zonal potential — this pins the signs and powers of r
  // in the hand-derived formulas.
  const Vec3 r = GetParam();
  for (const bool with_j3 : {false, true}) {
    ForceModel model;
    model.include_j2 = true;
    model.include_j3 = with_j3;
    const Vec3 analytic = gravity_acceleration(r, model);

    const double h = 1e-4;  // km
    auto u = [&](const Vec3& p) { return gravity_potential(p, model); };
    const Vec3 numeric{
        (u({r.x + h, r.y, r.z}) - u({r.x - h, r.y, r.z})) / (2.0 * h),
        (u({r.x, r.y + h, r.z}) - u({r.x, r.y - h, r.z})) / (2.0 * h),
        (u({r.x, r.y, r.z + h}) - u({r.x, r.y, r.z - h})) / (2.0 * h)};
    // The 1e-7 relative tolerance is set by the finite-difference
    // truncation, far below the O(1) error a wrong sign or power of r in
    // the closed forms would produce.
    EXPECT_NEAR(analytic.distance(numeric), 0.0, 1e-7 * analytic.norm())
        << "J3=" << with_j3;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Positions, GravityGradient,
    testing::Values(Vec3{7000.0, 0.0, 0.0}, Vec3{0.0, 0.0, 7000.0},
                    Vec3{4000.0, -3500.0, 4200.0}, Vec3{-6500.0, 1000.0, -2500.0},
                    Vec3{20000.0, 30000.0, 10000.0}));

TEST(Rk4, PointMassStepConservesEnergyLocally) {
  ForceModel none;
  none.include_j2 = false;
  StateVector s{{7000.0, 0.0, 0.0}, {0.0, std::sqrt(kMuEarth / 7000.0), 0.0}};
  const double e0 = s.velocity.norm2() / 2.0 - kMuEarth / s.position.norm();
  for (int i = 0; i < 1000; ++i) s = rk4_step(s, 5.0, none);
  const double e1 = s.velocity.norm2() / 2.0 - kMuEarth / s.position.norm();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 1e-9);
}

std::vector<Satellite> test_sats() {
  return {{0, {7000.0, 0.01, 0.9, 1.0, 0.5, 2.0}},
          {1, {7300.0, 0.05, 1.5, 3.0, 1.0, 0.1}},
          {2, {26560.0, 0.003, 0.96, 0.2, 4.0, 5.0}}};
}

TEST(EphemerisSample, ReproducesSourceBetweenKnots) {
  const ContourKeplerSolver solver;
  const auto sats = test_sats();
  const TwoBodyPropagator source(sats, solver);
  const auto ephemeris = EphemerisPropagator::sample(source, 0.0, 3600.0, 30.0);

  EXPECT_EQ(ephemeris.size(), sats.size());
  Rng rng(4);
  for (int k = 0; k < 300; ++k) {
    const std::size_t sat = rng.uniform_index(sats.size());
    const double t = rng.uniform(0.0, 3600.0);  // deliberately off-knot
    const double err = ephemeris.position(sat, t).distance(source.position(sat, t));
    EXPECT_LT(err, 1e-3) << "sat " << sat << " t " << t;  // < 1 m
    const StateVector es = ephemeris.state(sat, t);
    const StateVector ss = source.state(sat, t);
    EXPECT_LT(es.velocity.distance(ss.velocity), 1e-4);  // < 0.1 m/s
  }
}

TEST(EphemerisSample, InterpolationErrorShrinksWithKnotStep) {
  const ContourKeplerSolver solver;
  const auto sats = test_sats();
  const TwoBodyPropagator source(sats, solver);
  const auto coarse = EphemerisPropagator::sample(source, 0.0, 3600.0, 120.0);
  const auto fine = EphemerisPropagator::sample(source, 0.0, 3600.0, 15.0);

  double coarse_err = 0.0, fine_err = 0.0;
  for (double t = 7.0; t < 3600.0; t += 97.0) {
    coarse_err = std::max(coarse_err,
                          coarse.position(0, t).distance(source.position(0, t)));
    fine_err = std::max(fine_err,
                        fine.position(0, t).distance(source.position(0, t)));
  }
  EXPECT_LT(fine_err, coarse_err / 16.0);  // O(h^4): 8x step -> >4096x, allow slack
}

TEST(EphemerisSample, CoversSpanEdgesWithMargin) {
  const ContourKeplerSolver solver;
  const auto sats = test_sats();
  const TwoBodyPropagator source(sats, solver);
  const auto ephemeris = EphemerisPropagator::sample(source, 0.0, 600.0, 30.0);
  // The Brent edge probes reach slightly past the span; those queries must
  // still be accurate (they sit on the margin knots, not extrapolation).
  for (double t : {-20.0, 0.0, 600.0, 620.0}) {
    EXPECT_LT(ephemeris.position(1, t).distance(source.position(1, t)), 1e-3);
  }
}

TEST(EphemerisIntegrate, PointMassMatchesAnalyticTwoBody) {
  const ContourKeplerSolver solver;
  const auto sats = test_sats();
  const TwoBodyPropagator analytic(sats, solver);

  ForceModel none;
  none.include_j2 = false;
  const auto numeric =
      EphemerisPropagator::integrate(sats, 0.0, 3600.0, none, 5.0, 30.0);

  for (double t = 0.0; t <= 3600.0; t += 217.0) {
    for (std::size_t sat = 0; sat < sats.size(); ++sat) {
      EXPECT_LT(numeric.position(sat, t).distance(analytic.position(sat, t)), 5e-3)
          << "sat " << sat << " t " << t;
    }
  }
}

TEST(EphemerisIntegrate, J2SecularRatesEmergeFromIntegration) {
  // Integrate a LEO orbit with J2 for several revolutions and check the
  // node actually regresses at the first-order analytic rate.
  const ContourKeplerSolver solver;
  const std::vector<Satellite> sats{{0, {7000.0, 0.001, 1.0, 2.0, 0.0, 0.0}}};
  const double day = 86400.0;
  const auto numeric = EphemerisPropagator::integrate(sats, 0.0, day, {}, 10.0, 60.0);

  const J2Rates rates = j2_secular_rates(sats[0].elements);
  // Recover the osculating RAAN from the integrated state at t = day.
  const KeplerElements el_end = elements_from_state(numeric.state(0, day));
  const double expected_raan = wrap_two_pi(sats[0].elements.raan + rates.raan_rate * day);
  // Tolerance covers the J2 short-period oscillation of the osculating
  // RAAN (~1e-3 rad) and the integration margin before t = 0.
  EXPECT_NEAR(wrap_pi(el_end.raan - expected_raan), 0.0, 0.02)
      << "raan drift " << rates.raan_rate * day;
  // And the drift is substantial, so the test is not vacuous.
  EXPECT_GT(std::abs(rates.raan_rate) * day, 0.05);
}

TEST(EphemerisIntegrate, ValidatesArguments) {
  const auto sats = test_sats();
  EXPECT_THROW(EphemerisPropagator::integrate(sats, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(EphemerisPropagator::integrate(sats, 0.0, 100.0, {}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(EphemerisPropagator::integrate(sats, 0.0, 100.0, {}, 30.0, 10.0),
               std::invalid_argument);
  const ContourKeplerSolver solver;
  const TwoBodyPropagator source(sats, solver);
  EXPECT_THROW(EphemerisPropagator::sample(source, 10.0, 5.0), std::invalid_argument);
}

TleRecord make_record(const KeplerElements& el, double ndot_half = 0.0) {
  TleRecord rec;
  rec.catalog_number = 1;
  rec.elements = el;
  rec.mean_motion_rev_day = 86400.0 / orbital_period(el);
  rec.mean_motion_dot = ndot_half;
  return rec;
}

TEST(TleSecularPropagator, ZeroDragMatchesJ2Secular) {
  const NewtonKeplerSolver solver;
  const KeplerElements el{7000.0, 0.002, 1.0, 0.5, 0.3, 1.2};
  const std::vector<TleRecord> records{make_record(el)};
  const TleSecularPropagator tle(records, solver);

  const std::vector<Satellite> sats{{0, el}};
  const J2SecularPropagator j2(sats, solver);

  for (double t = 0.0; t <= 7200.0; t += 1800.0) {
    EXPECT_LT(tle.position(0, t).distance(j2.position(0, t)), 1e-3)
        << "t=" << t;
  }
}

TEST(TleSecularPropagator, DragDecaysTheOrbit) {
  const NewtonKeplerSolver solver;
  const KeplerElements el{6900.0, 0.001, 0.9, 0.0, 0.0, 0.0};
  // A strongly decaying object: ndot/2 = 5e-4 rev/day^2.
  const std::vector<TleRecord> records{make_record(el, 5e-4)};
  const TleSecularPropagator tle(records, solver);

  const double day = 86400.0;
  const KeplerElements after = tle.elements_at(0, day);
  EXPECT_LT(after.semi_major_axis, el.semi_major_axis);
  // n(1 day) = n0 + 2*5e-4 -> da ~ -(2/3) a dn/n ~ -0.3 km.
  EXPECT_NEAR(el.semi_major_axis - after.semi_major_axis, 0.28, 0.1);
  // And the object runs ahead of the no-drag prediction along track by
  // the analytic delta-M arc: (ndot/2) * t^2 = 5e-4 rev after one day,
  // i.e. 2*pi*5e-4*a ~ 21.7 km.
  const std::vector<TleRecord> no_drag{make_record(el)};
  const TleSecularPropagator reference(no_drag, solver);
  const double offset = tle.position(0, day).distance(reference.position(0, day));
  EXPECT_NEAR(offset, kTwoPi * 5e-4 * el.semi_major_axis, 2.0);
}

TEST(TleSecularPropagator, RejectsInvalidRecords) {
  const NewtonKeplerSolver solver;
  KeplerElements bad{6000.0, 0.0, 0, 0, 0, 0};
  TleRecord rec = make_record({7000.0, 0.001, 1.0, 0, 0, 0});
  rec.elements = bad;
  const std::vector<TleRecord> records{rec};
  EXPECT_THROW(TleSecularPropagator(records, solver), std::invalid_argument);
}

TEST(EphemerisIntegrate, ElementsPreserved) {
  const auto sats = test_sats();
  const auto numeric = EphemerisPropagator::integrate(sats, 0.0, 600.0);
  for (std::size_t i = 0; i < sats.size(); ++i) {
    EXPECT_EQ(numeric.elements(i), sats[i].elements);
  }
  EXPECT_GT(numeric.memory_bytes(), 0u);
  EXPECT_GT(numeric.knot_count(), 10u);
}

}  // namespace
}  // namespace scod
