#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/partitioned.hpp"
#include "core/screen.hpp"
#include "filters/dense_scan.hpp"
#include "orbit/geometry.hpp"
#include "population/generator.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/ephemeris.hpp"
#include "propagation/two_body.hpp"
#include "scenario_helpers.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

/// A dense spherical shell of near-circular orbits: radial band so narrow
/// that node misses are frequently below the screening threshold, giving a
/// small population with a meaningful number of true conjunctions.
std::vector<Satellite> dense_shell(std::size_t n, std::uint64_t seed,
                                   double r0 = 7000.0, double band = 10.0) {
  Rng rng(seed);
  std::vector<Satellite> sats;
  sats.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    KeplerElements el;
    el.semi_major_axis = r0 + rng.uniform(-band / 2.0, band / 2.0);
    el.eccentricity = rng.uniform(0.0, 2e-4);
    el.inclination = rng.uniform(0.2, kPi - 0.2);
    el.raan = rng.uniform(0.0, kTwoPi);
    el.arg_perigee = rng.uniform(0.0, kTwoPi);
    el.mean_anomaly = rng.uniform(0.0, kTwoPi);
    sats.push_back({static_cast<std::uint32_t>(i), el});
  }
  return sats;
}

struct OracleConjunction {
  std::uint32_t sat_a, sat_b;
  double tca, pca;
};

/// Ground truth: exhaustive dense-scan over every pair.
std::vector<OracleConjunction> oracle(const std::vector<Satellite>& sats,
                                      double t_begin, double t_end,
                                      double threshold) {
  const ContourKeplerSolver solver;
  const TwoBodyPropagator prop(sats, solver);
  DenseScanOptions scan;
  scan.step = 4.0;
  std::vector<OracleConjunction> out;
  for (std::uint32_t i = 0; i + 1 < sats.size(); ++i) {
    for (std::uint32_t j = i + 1; j < sats.size(); ++j) {
      for (const Encounter& e : scan_encounters(prop, i, j, t_begin, t_end, scan)) {
        if (e.pca <= threshold) out.push_back({i, j, e.tca, e.pca});
      }
    }
  }
  return out;
}

bool report_contains(const ScreeningReport& report, std::uint32_t a, std::uint32_t b,
                     double tca, double tca_tol) {
  for (const Conjunction& c : report.conjunctions) {
    if (c.sat_a == a && c.sat_b == b && std::abs(c.tca - tca) <= tca_tol) return true;
  }
  return false;
}

class ScreenerAccuracy : public testing::Test {
 protected:
  static constexpr double kThreshold = 5.0;
  static constexpr double kSpan = 10000.0;

  static void SetUpTestSuite() {
    // A dense shell provides realistic background traffic; a dozen
    // engineered interceptors guarantee genuine conjunctions at known
    // times (random 70-object populations rarely align by chance).
    auto sats = dense_shell(60, 0xBEEF);
    Rng rng(0xD1CE);
    for (std::uint32_t k = 0; k < 12; ++k) {
      const auto target = rng.uniform_index(sats.size());
      const double t_star = rng.uniform(0.1 * kSpan, 0.9 * kSpan);
      const double offset = rng.uniform(-3.5, 3.5);
      sats.push_back(testutil::make_interceptor(
          sats[target].elements, t_star, offset, rng,
          static_cast<std::uint32_t>(60 + k)));
    }
    sats_ = new std::vector<Satellite>(std::move(sats));
    truth_ = new std::vector<OracleConjunction>(
        oracle(*sats_, 0.0, kSpan, kThreshold * 1.2));
  }

  static void TearDownTestSuite() {
    delete sats_;
    delete truth_;
    sats_ = nullptr;
    truth_ = nullptr;
  }

  static ScreeningConfig config() {
    ScreeningConfig cfg;
    cfg.threshold_km = kThreshold;
    cfg.t_begin = 0.0;
    cfg.t_end = kSpan;
    return cfg;
  }

  /// Oracle conjunctions comfortably below the threshold (no boundary
  /// flakiness) that every variant is required to find.
  static std::vector<OracleConjunction> must_find() {
    std::vector<OracleConjunction> out;
    for (const OracleConjunction& c : *truth_) {
      if (c.pca <= 0.9 * kThreshold) out.push_back(c);
    }
    return out;
  }

  static void expect_matches_oracle(const ScreeningReport& report,
                                    const std::string& label) {
    // Completeness: every comfortably-sub-threshold oracle encounter found.
    for (const OracleConjunction& c : must_find()) {
      EXPECT_TRUE(report_contains(report, c.sat_a, c.sat_b, c.tca, 5.0))
          << label << " missed " << c.sat_a << "-" << c.sat_b << " @ " << c.tca
          << " pca=" << c.pca;
    }
    // Soundness: every reported conjunction corresponds to an oracle
    // encounter at most marginally above the threshold.
    for (const Conjunction& c : report.conjunctions) {
      EXPECT_LE(c.pca, kThreshold);
      bool known = false;
      for (const OracleConjunction& o : *truth_) {
        if (o.sat_a == c.sat_a && o.sat_b == c.sat_b && std::abs(o.tca - c.tca) <= 5.0) {
          known = true;
          break;
        }
      }
      EXPECT_TRUE(known) << label << " invented " << c.sat_a << "-" << c.sat_b
                         << " @ " << c.tca << " pca=" << c.pca;
    }
  }

  static std::vector<Satellite>* sats_;
  static std::vector<OracleConjunction>* truth_;
};

std::vector<Satellite>* ScreenerAccuracy::sats_ = nullptr;
std::vector<OracleConjunction>* ScreenerAccuracy::truth_ = nullptr;

TEST_F(ScreenerAccuracy, OracleHasConjunctions) {
  // The shell geometry must actually produce encounters, otherwise the
  // agreement tests below are vacuous.
  EXPECT_GE(must_find().size(), 3u);
}

TEST_F(ScreenerAccuracy, GridMatchesOracle) {
  const ScreeningReport report = screen(*sats_, config(), Variant::kGrid);
  expect_matches_oracle(report, "grid");
  EXPECT_GT(report.stats.candidates, 0u);
  EXPECT_GT(report.stats.total_samples, 0u);
}

TEST_F(ScreenerAccuracy, HybridMatchesOracle) {
  const ScreeningReport report = screen(*sats_, config(), Variant::kHybrid);
  expect_matches_oracle(report, "hybrid");
  EXPECT_GT(report.stats.pairs_examined, 0u);
}

TEST_F(ScreenerAccuracy, LegacyMatchesOracle) {
  const ScreeningReport report = screen(*sats_, config(), Variant::kLegacy);
  expect_matches_oracle(report, "legacy");
  const std::size_t n = sats_->size();
  EXPECT_EQ(report.stats.pairs_examined, n * (n - 1) / 2);
}

TEST_F(ScreenerAccuracy, SieveMatchesOracle) {
  const ScreeningReport report = screen(*sats_, config(), Variant::kSieve);
  expect_matches_oracle(report, "sieve");
  const std::size_t n = sats_->size();
  EXPECT_EQ(report.stats.pairs_examined, n * (n - 1) / 2);
  // The sieve's whole point: far fewer distance evaluations than a dense
  // scan of every pair (span/step * pairs).
  EXPECT_LT(report.stats.candidates,
            report.stats.pairs_examined * static_cast<std::size_t>(kSpan) / 16);
}

TEST_F(ScreenerAccuracy, VariantsAgreeOnCollidingPairs) {
  const auto grid = screen(*sats_, config(), Variant::kGrid);
  const auto hybrid = screen(*sats_, config(), Variant::kHybrid);
  const auto legacy = screen(*sats_, config(), Variant::kLegacy);

  // The paper's Section V-D comparison: the colliding-pair sets agree up
  // to rare edge cases (there: 5 missed / 35 extra out of ~17k). At this
  // scale we allow a one-pair slack in each direction.
  const PairSetDiff gh = compare_pair_sets(grid.colliding_pairs(),
                                           hybrid.colliding_pairs());
  EXPECT_LE(gh.only_in_first, 1u);
  EXPECT_LE(gh.only_in_second, 1u);
  const PairSetDiff gl = compare_pair_sets(grid.colliding_pairs(),
                                           legacy.colliding_pairs());
  EXPECT_LE(gl.only_in_first, 1u);
  EXPECT_LE(gl.only_in_second, 1u);
}

TEST_F(ScreenerAccuracy, GridDeterministicAcrossRunsAndThreads) {
  ThreadPool one(1), four(4);
  ScreeningConfig cfg1 = config();
  cfg1.pool = &one;
  ScreeningConfig cfg4 = config();
  cfg4.pool = &four;

  const auto r1 = screen(*sats_, cfg1, Variant::kGrid);
  const auto r4 = screen(*sats_, cfg4, Variant::kGrid);
  const auto r4b = screen(*sats_, cfg4, Variant::kGrid);

  ASSERT_EQ(r1.conjunctions.size(), r4.conjunctions.size());
  ASSERT_EQ(r4.conjunctions.size(), r4b.conjunctions.size());
  for (std::size_t i = 0; i < r1.conjunctions.size(); ++i) {
    EXPECT_EQ(r1.conjunctions[i].sat_a, r4.conjunctions[i].sat_a);
    EXPECT_EQ(r1.conjunctions[i].sat_b, r4.conjunctions[i].sat_b);
    EXPECT_NEAR(r1.conjunctions[i].tca, r4.conjunctions[i].tca, 1e-3);
    EXPECT_NEAR(r1.conjunctions[i].pca, r4.conjunctions[i].pca, 1e-6);
  }
}

TEST_F(ScreenerAccuracy, DeviceBackendMatchesCpu) {
  Device device;  // default 4 GiB devicesim
  ScreeningConfig dev_cfg = config();
  dev_cfg.device = &device;

  const auto cpu = screen(*sats_, config(), Variant::kGrid);
  const auto dev = screen(*sats_, dev_cfg, Variant::kGrid);

  ASSERT_EQ(cpu.conjunctions.size(), dev.conjunctions.size());
  for (std::size_t i = 0; i < cpu.conjunctions.size(); ++i) {
    EXPECT_EQ(cpu.conjunctions[i].sat_a, dev.conjunctions[i].sat_a);
    EXPECT_NEAR(cpu.conjunctions[i].tca, dev.conjunctions[i].tca, 1e-3);
  }
  // The device actually did the work and the accounting shows it.
  EXPECT_GT(device.stats().kernels_launched, 0u);
  EXPECT_GT(device.stats().h2d_bytes, 0u);
  EXPECT_EQ(device.memory_used(), 0u);  // everything released after the run
}

TEST_F(ScreenerAccuracy, MultiRoundExecutionMatchesSingleRound) {
  // Shrink the budget so the span no longer fits in one round; the rounds
  // machinery must not change the result.
  const auto roomy = screen(*sats_, config(), Variant::kGrid);

  ScreeningConfig tight = config();
  tight.memory_budget = 2 << 20;  // 2 MiB
  const auto constrained = screen(*sats_, tight, Variant::kGrid);
  EXPECT_GT(constrained.stats.rounds, 1u);

  ASSERT_EQ(roomy.conjunctions.size(), constrained.conjunctions.size());
  for (std::size_t i = 0; i < roomy.conjunctions.size(); ++i) {
    EXPECT_EQ(roomy.conjunctions[i].sat_a, constrained.conjunctions[i].sat_a);
    EXPECT_NEAR(roomy.conjunctions[i].tca, constrained.conjunctions[i].tca, 1e-3);
  }
}

TEST_F(ScreenerAccuracy, HalfStencilAblationMatchesFullScan) {
  GridPipelineOptions full = GridScreener::default_options();
  GridPipelineOptions half = GridScreener::default_options();
  half.half_stencil = true;

  const auto r_full = GridScreener(full).screen(*sats_, config());
  const auto r_half = GridScreener(half).screen(*sats_, config());
  ASSERT_EQ(r_full.conjunctions.size(), r_half.conjunctions.size());
  for (std::size_t i = 0; i < r_full.conjunctions.size(); ++i) {
    EXPECT_EQ(r_full.conjunctions[i].sat_a, r_half.conjunctions[i].sat_a);
    EXPECT_NEAR(r_full.conjunctions[i].tca, r_half.conjunctions[i].tca, 1e-3);
  }
}

TEST_F(ScreenerAccuracy, DistancePrefilterIsPureOptimization) {
  GridPipelineOptions with = GridScreener::default_options();
  GridPipelineOptions without = GridScreener::default_options();
  without.distance_prefilter = false;

  const auto r_with = GridScreener(with).screen(*sats_, config());
  const auto r_without = GridScreener(without).screen(*sats_, config());
  // Without the prefilter there are at least as many candidates...
  EXPECT_GE(r_without.stats.candidates, r_with.stats.candidates);
  // ...but the reported conjunctions are identical.
  ASSERT_EQ(r_with.conjunctions.size(), r_without.conjunctions.size());
  for (std::size_t i = 0; i < r_with.conjunctions.size(); ++i) {
    EXPECT_EQ(r_with.conjunctions[i].sat_a, r_without.conjunctions[i].sat_a);
    EXPECT_NEAR(r_with.conjunctions[i].pca, r_without.conjunctions[i].pca, 1e-6);
  }
}

TEST(Screeners, HeadOnRetrogradeEncounterHasPredictableTca) {
  // Same circular equatorial orbit flown in opposite directions: the
  // objects meet when their position angles coincide, at
  // t = (2 pi - M0) / (2 n), with PCA ~ 0.
  const double a = 7000.0;
  const double m0 = 0.3;
  std::vector<Satellite> sats{
      {0, {a, 1e-4, 0.0, 0.0, 0.0, 0.0}},
      {1, {a, 1e-4, kPi, 0.0, 0.0, m0}},
  };
  const double n = std::sqrt(kMuEarth / (a * a * a));
  const double expected_tca = (kTwoPi - m0) / (2.0 * n);

  ScreeningConfig cfg;
  cfg.threshold_km = 2.0;
  cfg.t_begin = 0.0;
  cfg.t_end = expected_tca + 600.0;

  for (Variant v : {Variant::kGrid, Variant::kHybrid, Variant::kLegacy,
                    Variant::kSieve}) {
    const ScreeningReport report = screen(sats, cfg, v);
    ASSERT_FALSE(report.conjunctions.empty()) << variant_name(v);
    bool found = false;
    for (const Conjunction& c : report.conjunctions) {
      if (std::abs(c.tca - expected_tca) < 2.0 && c.pca < 0.5) found = true;
    }
    EXPECT_TRUE(found) << variant_name(v) << ": no encounter at t=" << expected_tca;
  }
}

TEST(Screeners, SeparatedOrbitsYieldNoConjunctions) {
  // 7000 vs 7500 km circular shells: no encounter is possible.
  std::vector<Satellite> sats{
      {0, {7000.0, 1e-4, 0.5, 0.0, 0.0, 0.0}},
      {1, {7500.0, 1e-4, 1.5, 1.0, 0.0, 1.0}},
  };
  ScreeningConfig cfg;
  cfg.t_end = 3600.0;
  for (Variant v : {Variant::kGrid, Variant::kHybrid, Variant::kLegacy,
                    Variant::kSieve}) {
    EXPECT_TRUE(screen(sats, cfg, v).conjunctions.empty()) << variant_name(v);
  }
}

TEST(Screeners, TinyPopulationsHandled) {
  ScreeningConfig cfg;
  cfg.t_end = 600.0;
  const std::vector<Satellite> empty;
  const std::vector<Satellite> one{{0, {7000.0, 1e-4, 0.5, 0.0, 0.0, 0.0}}};
  for (Variant v : {Variant::kGrid, Variant::kHybrid, Variant::kLegacy,
                    Variant::kSieve}) {
    EXPECT_TRUE(screen(empty, cfg, v).conjunctions.empty()) << variant_name(v);
    EXPECT_TRUE(screen(one, cfg, v).conjunctions.empty()) << variant_name(v);
  }
}

TEST(Screeners, InvalidSpanRejected) {
  std::vector<Satellite> sats = dense_shell(4, 1);
  ScreeningConfig cfg;
  cfg.t_begin = 100.0;
  cfg.t_end = 100.0;
  EXPECT_THROW(screen(sats, cfg, Variant::kGrid), std::invalid_argument);
  EXPECT_THROW(screen(sats, cfg, Variant::kHybrid), std::invalid_argument);
}

TEST(Screeners, LegacyHasNoDeviceBackend) {
  Device device;
  ScreeningConfig cfg;
  cfg.device = &device;
  std::vector<Satellite> sats = dense_shell(4, 2);
  EXPECT_THROW(screen(sats, cfg, Variant::kLegacy), std::invalid_argument);
}

TEST(Screeners, SecondsPerSampleOverrideIsHonored) {
  std::vector<Satellite> sats = dense_shell(10, 3);
  ScreeningConfig cfg;
  cfg.t_end = 1200.0;
  cfg.seconds_per_sample = 2.0;
  const auto report = screen(sats, cfg, Variant::kGrid);
  EXPECT_DOUBLE_EQ(report.stats.seconds_per_sample, 2.0);
  EXPECT_DOUBLE_EQ(report.stats.cell_size_km,
                   cfg.threshold_km + kLeoSpeed * 2.0);
  EXPECT_EQ(report.stats.total_samples, 601u);
}

TEST(Screeners, CandidateSetGrowthPathIsCorrect) {
  // A debris cloud is so dense that candidate counts blow through the
  // model's floor capacity, forcing the grow-and-retry path; the result
  // must match a run that was sized generously from the start.
  const KeplerElements parent{7000.0, 0.001, 1.0, 0.5, 0.2, 1.0};
  const auto cloud = generate_debris_cloud(parent, 40, 0.05, 99);

  ScreeningConfig cfg;
  cfg.threshold_km = 2.0;
  cfg.t_end = 600.0;

  GridPipelineOptions tiny = GridScreener::default_options();
  tiny.count_model.coefficient = 1e-20;  // force an absurdly small map

  const auto forced = GridScreener(tiny).screen(cloud, cfg);
  const auto normal = GridScreener().screen(cloud, cfg);

  ASSERT_EQ(forced.conjunctions.size(), normal.conjunctions.size());
  for (std::size_t i = 0; i < forced.conjunctions.size(); ++i) {
    EXPECT_EQ(forced.conjunctions[i].sat_a, normal.conjunctions[i].sat_a);
    EXPECT_NEAR(forced.conjunctions[i].pca, normal.conjunctions[i].pca, 1e-6);
  }
}

class GridOracleSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GridOracleSweep, GridMatchesOracleAcrossSeeds) {
  // Small multi-seed property sweep: the fixture above pins one
  // population; this re-checks the grid variant's oracle agreement on
  // fresh random geometry each time.
  const std::uint64_t seed = GetParam();
  auto sats = dense_shell(25, seed);
  Rng rng(seed ^ 0xFEED);
  for (std::uint32_t k = 0; k < 4; ++k) {
    const auto target = rng.uniform_index(sats.size());
    sats.push_back(testutil::make_interceptor(
        sats[target].elements, rng.uniform(400.0, 3600.0), rng.uniform(-3.0, 3.0),
        rng, static_cast<std::uint32_t>(25 + k)));
  }

  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 4000.0;
  const auto truth = oracle(sats, cfg.t_begin, cfg.t_end, cfg.threshold_km * 1.2);
  const ScreeningReport report = screen(sats, cfg, Variant::kGrid);

  for (const OracleConjunction& c : truth) {
    if (c.pca > 0.9 * cfg.threshold_km) continue;
    EXPECT_TRUE(report_contains(report, c.sat_a, c.sat_b, c.tca, 5.0))
        << "seed " << seed << " missed " << c.sat_a << "-" << c.sat_b << " @ "
        << c.tca << " pca=" << c.pca;
  }
  for (const Conjunction& c : report.conjunctions) {
    EXPECT_LE(c.pca, cfg.threshold_km);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridOracleSweep,
                         testing::Values(11u, 222u, 3333u, 44444u));

TEST(Screeners, PartitionedScreeningMatchesDirect) {
  // The population-division strategy of related work [24]: merging the
  // block-pair jobs must reproduce the direct screening exactly.
  const auto sats = dense_shell(48, 0xD15C);
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 6000.0;

  const ScreeningReport direct = screen(sats, cfg, Variant::kGrid);
  for (std::size_t partitions : {1u, 2u, 3u, 5u}) {
    const ScreeningReport split =
        partitioned_screen(sats, cfg, Variant::kGrid, partitions);
    ASSERT_EQ(split.conjunctions.size(), direct.conjunctions.size())
        << partitions << " partitions";
    for (std::size_t i = 0; i < direct.conjunctions.size(); ++i) {
      EXPECT_EQ(split.conjunctions[i].sat_a, direct.conjunctions[i].sat_a);
      EXPECT_EQ(split.conjunctions[i].sat_b, direct.conjunctions[i].sat_b);
      EXPECT_NEAR(split.conjunctions[i].tca, direct.conjunctions[i].tca, 1e-3);
      EXPECT_NEAR(split.conjunctions[i].pca, direct.conjunctions[i].pca, 1e-6);
    }
  }
  EXPECT_THROW(partitioned_screen(sats, cfg, Variant::kGrid, 0),
               std::invalid_argument);
}

TEST(Screeners, BatchedInsertionKernelMatchesScalarExactly) {
  // The SoA insertion kernel is documented as bit-identical to the
  // per-tuple scalar path, so toggling it must not move a single
  // conjunction: same pairs, same TCAs, same PCAs, to the last bit.
  auto sats = dense_shell(60, 0xBA7C);
  Rng rng(0x5EED);
  sats.push_back(testutil::make_interceptor(sats[5].elements, 1800.0, 1.5, rng,
                                            static_cast<std::uint32_t>(sats.size())));
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 6000.0;

  const GridScreener batched;  // batch_propagation defaults to true
  GridPipelineOptions scalar_options = GridScreener::default_options();
  scalar_options.batch_propagation = false;
  const GridScreener scalar(scalar_options);

  const ScreeningReport batch_report = batched.screen(sats, cfg);
  const ScreeningReport scalar_report = scalar.screen(sats, cfg);

  EXPECT_GT(batch_report.conjunctions.size(), 0u);
  ASSERT_EQ(batch_report.conjunctions.size(), scalar_report.conjunctions.size());
  for (std::size_t i = 0; i < batch_report.conjunctions.size(); ++i) {
    EXPECT_EQ(batch_report.conjunctions[i].sat_a, scalar_report.conjunctions[i].sat_a);
    EXPECT_EQ(batch_report.conjunctions[i].sat_b, scalar_report.conjunctions[i].sat_b);
    EXPECT_DOUBLE_EQ(batch_report.conjunctions[i].tca,
                     scalar_report.conjunctions[i].tca);
    EXPECT_DOUBLE_EQ(batch_report.conjunctions[i].pca,
                     scalar_report.conjunctions[i].pca);
  }
}

TEST(Screeners, StreamingModeMatchesBatchMode) {
  // Bounded-memory streaming must produce the same conjunction set as the
  // batch API, with candidates partitioned across many rounds.
  const auto sats = dense_shell(50, 0x57E4);
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 7200.0;
  cfg.memory_budget = 2 << 20;  // 2 MiB: force many small rounds

  const GridScreener screener;
  const ScreeningReport batch = screener.screen(sats, cfg);

  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(sats, solver);
  std::vector<Conjunction> streamed;
  std::size_t rounds_seen = 0;
  std::size_t last_round = 0;
  const ScreeningReport streaming = screener.screen_streaming(
      propagator, cfg, [&](std::size_t round, std::span<const Conjunction> batch_out) {
        EXPECT_GE(round, last_round);  // rounds arrive in order
        last_round = round;
        ++rounds_seen;
        streamed.insert(streamed.end(), batch_out.begin(), batch_out.end());
      });

  EXPECT_TRUE(streaming.conjunctions.empty());  // everything went to the sink
  EXPECT_GT(streaming.stats.rounds, 1u);
  EXPECT_EQ(rounds_seen, streaming.stats.rounds);
  EXPECT_EQ(streaming.stats.candidates, batch.stats.candidates);

  sort_conjunctions(streamed);
  ASSERT_EQ(streamed.size(), batch.conjunctions.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].sat_a, batch.conjunctions[i].sat_a);
    EXPECT_EQ(streamed[i].sat_b, batch.conjunctions[i].sat_b);
    EXPECT_NEAR(streamed[i].tca, batch.conjunctions[i].tca, 1.0);
    EXPECT_NEAR(streamed[i].pca, batch.conjunctions[i].pca, 1e-3);
  }
}

TEST(Screeners, EphemerisBackedScreeningMatchesDirectPropagation) {
  // Screening over the interpolated ephemeris (sub-metre interpolation
  // error) must reproduce the direct two-body screening: same pairs, TCAs
  // within the Brent tolerance scale.
  const auto sats = dense_shell(40, 0xE9);
  ScreeningConfig cfg;
  cfg.threshold_km = 5.0;
  cfg.t_end = 3600.0;

  const ContourKeplerSolver solver;
  const TwoBodyPropagator direct(sats, solver);
  const auto ephemeris =
      EphemerisPropagator::sample(direct, cfg.t_begin, cfg.t_end, 20.0);

  const GridScreener screener;
  const ScreeningReport from_direct = screener.screen(direct, cfg);
  const ScreeningReport from_table = screener.screen(ephemeris, cfg);

  ASSERT_EQ(from_direct.conjunctions.size(), from_table.conjunctions.size());
  for (std::size_t i = 0; i < from_direct.conjunctions.size(); ++i) {
    EXPECT_EQ(from_direct.conjunctions[i].sat_a, from_table.conjunctions[i].sat_a);
    EXPECT_EQ(from_direct.conjunctions[i].sat_b, from_table.conjunctions[i].sat_b);
    EXPECT_NEAR(from_direct.conjunctions[i].tca, from_table.conjunctions[i].tca, 0.5);
    EXPECT_NEAR(from_direct.conjunctions[i].pca, from_table.conjunctions[i].pca, 1e-3);
  }
}

TEST(Screeners, PhaseTimingsArePopulated) {
  std::vector<Satellite> sats = dense_shell(30, 4);
  ScreeningConfig cfg;
  cfg.t_end = 1800.0;

  const auto grid = screen(sats, cfg, Variant::kGrid);
  EXPECT_GT(grid.timings.insertion, 0.0);
  EXPECT_GT(grid.timings.detection, 0.0);
  EXPECT_DOUBLE_EQ(grid.timings.filtering, 0.0);  // grid variant: no filters

  const auto hybrid = screen(sats, cfg, Variant::kHybrid);
  EXPECT_GT(hybrid.timings.insertion, 0.0);
  EXPECT_GE(hybrid.timings.filtering, 0.0);

  const auto legacy = screen(sats, cfg, Variant::kLegacy);
  EXPECT_GT(legacy.timings.filtering, 0.0);
}

}  // namespace
}  // namespace scod
