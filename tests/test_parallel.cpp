#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace scod {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

class ThreadPoolSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolSizes, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 10007;  // prime, exercises ragged chunking
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolSizes, SumMatchesSerial) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 5000;
  std::atomic<long long> sum{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST_P(ThreadPoolSizes, RangesCoverWithoutOverlap) {
  ThreadPool pool(GetParam());
  constexpr std::size_t kN = 3333;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_ranges(kN, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(VariousThreadCounts, ThreadPoolSizes,
                         testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, EmptyLoopIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExplicitGrainRespected) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(
      kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptionsFromWorkers) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RunOnAllPropagatesWorkerException) {
  // The throw happens on a pool worker, not the caller: the error must
  // cross the fork-join barrier onto the caller without crashing the
  // process or deadlocking the join.
  ThreadPool pool(4);
  const std::size_t caller_id = pool.thread_count() - 1;
  try {
    pool.run_on_all([&](std::size_t id) {
      if (id != caller_id) throw std::runtime_error("worker " + std::to_string(id));
    });
    FAIL() << "expected the worker exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
  }
  // The pool must survive: workers are parked again, not wedged.
  std::atomic<int> count{0};
  pool.run_on_all([&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), static_cast<int>(pool.thread_count()));
}

TEST(ThreadPool, ConcurrentThrowsSurfaceExactlyOne) {
  // Every context throws simultaneously; exactly one exception (the first)
  // must reach the caller, with no tasks lost in later loops.
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        pool.run_on_all([&](std::size_t id) {
          throw std::runtime_error("ctx " + std::to_string(id));
        }),
        std::runtime_error);
    std::atomic<int> count{0};
    pool.parallel_for(97, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 97) << "round " << round;
  }
}

TEST(ThreadPool, RangesLoopPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_ranges(
                   1000,
                   [&](std::size_t begin, std::size_t) {
                     if (begin >= 500) throw std::logic_error("range");
                   },
                   /*grain=*/10),
               std::logic_error);
  std::atomic<int> count{0};
  pool.parallel_for_ranges(64, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, RunOnAllGivesDistinctIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> id_hits(pool.thread_count());
  pool.run_on_all([&](std::size_t id) {
    ASSERT_LT(id, id_hits.size());
    id_hits[id].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : id_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialLoopsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(GlobalThreadPool, IsSingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
  EXPECT_GE(global_thread_pool().thread_count(), 1u);
}

}  // namespace
}  // namespace scod
