#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/device.hpp"

namespace scod {
namespace {

DeviceProperties small_device(std::uint64_t bytes = 1 << 20) {
  DeviceProperties props;
  props.memory_bytes = bytes;
  return props;
}

TEST(Device, AllocationAccounting) {
  Device device(small_device());
  EXPECT_EQ(device.memory_used(), 0u);
  {
    auto buf = device.alloc<double>(1000);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(device.memory_used(), 8000u);
    EXPECT_EQ(device.stats().allocations, 1u);
    EXPECT_EQ(device.stats().bytes_peak, 8000u);
  }
  EXPECT_EQ(device.memory_used(), 0u);
  EXPECT_EQ(device.stats().frees, 1u);
}

TEST(Device, OutOfMemoryThrows) {
  Device device(small_device(1024));
  auto keep = device.alloc<std::uint8_t>(1000);
  EXPECT_THROW(device.alloc<std::uint8_t>(100), DeviceOutOfMemory);
  EXPECT_EQ(device.stats().allocations, 1u);  // failed alloc not counted
  // After freeing, the same allocation succeeds.
  keep = DeviceBuffer<std::uint8_t>();
  EXPECT_NO_THROW(device.alloc<std::uint8_t>(1000));
}

TEST(Device, MoveTransfersOwnership) {
  Device device(small_device());
  auto a = device.alloc<int>(100);
  const std::uint64_t used = device.memory_used();
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(device.memory_used(), used);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(Device, TransferRoundTripAndStats) {
  Device device(small_device());
  auto buf = device.alloc<int>(64);
  std::vector<int> host(64);
  std::iota(host.begin(), host.end(), 0);
  device.copy_to_device(buf, host.data(), host.size());

  std::vector<int> back(64, -1);
  device.copy_to_host(back.data(), buf, back.size());
  EXPECT_EQ(back, host);

  EXPECT_EQ(device.stats().h2d_transfers, 1u);
  EXPECT_EQ(device.stats().h2d_bytes, 64u * sizeof(int));
  EXPECT_EQ(device.stats().d2h_transfers, 1u);
  EXPECT_EQ(device.stats().d2h_bytes, 64u * sizeof(int));
  EXPECT_GT(device.stats().modelled_transfer_seconds(device.properties()), 0.0);
}

TEST(Device, TransferBoundsChecked) {
  Device device(small_device());
  auto buf = device.alloc<int>(4);
  std::vector<int> host(8, 0);
  EXPECT_THROW(device.copy_to_device(buf, host.data(), 8), std::out_of_range);
  EXPECT_THROW(device.copy_to_host(host.data(), buf, 8), std::out_of_range);
}

TEST(Device, LaunchCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  Device device(small_device(), &pool);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  device.launch(kN, 256, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(device.stats().kernels_launched, 1u);
  EXPECT_GT(device.stats().kernel_seconds, 0.0);
}

TEST(Device, LaunchHandlesRaggedLastBlock) {
  Device device(small_device());
  std::atomic<std::size_t> count{0};
  device.launch(1000, 256, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(Device, LaunchValidatesBlockSize) {
  Device device(small_device());
  const auto noop = [](std::size_t) {};
  EXPECT_THROW(device.launch(10, 0, noop), std::invalid_argument);
  EXPECT_THROW(device.launch(10, 4096, noop), std::invalid_argument);
  EXPECT_NO_THROW(device.launch(0, 256, noop));  // empty launch is legal
}

TEST(Device, ResetStatsKeepsLiveAllocations) {
  Device device(small_device());
  auto buf = device.alloc<double>(10);
  device.launch(5, 5, [](std::size_t) {});
  device.reset_stats();
  EXPECT_EQ(device.stats().kernels_launched, 0u);
  EXPECT_EQ(device.memory_used(), 80u);
  EXPECT_EQ(device.stats().bytes_peak, 80u);
}

TEST(Device, KernelsShareAtomicState) {
  // Blocks run concurrently; a CAS-based accumulation must behave exactly
  // as it would on a real device.
  Device device(small_device());
  std::atomic<long long> sum{0};
  constexpr std::size_t kN = 4096;
  device.launch(kN, 128, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace scod
