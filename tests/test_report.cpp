#include <gtest/gtest.h>

#include "core/report.hpp"

namespace scod {
namespace {

TEST(Report, SortConjunctionsCanonicalOrder) {
  std::vector<Conjunction> cs{
      {2, 3, 50.0, 1.0}, {1, 2, 10.0, 1.0}, {1, 2, 5.0, 2.0}, {1, 3, 1.0, 0.5}};
  sort_conjunctions(cs);
  EXPECT_EQ(cs[0].sat_b, 2u);
  EXPECT_DOUBLE_EQ(cs[0].tca, 5.0);
  EXPECT_DOUBLE_EQ(cs[1].tca, 10.0);
  EXPECT_EQ(cs[2].sat_b, 3u);
  EXPECT_EQ(cs[3].sat_a, 2u);
}

TEST(Report, MergeConjunctionsCollapsesAdjacentSteps) {
  std::vector<Conjunction> raw{
      {1, 2, 100.0, 1.5},
      {1, 2, 100.4, 1.2},  // same minimum, refined from the next step
      {1, 2, 900.0, 1.9},  // a second, distinct encounter
      {3, 4, 100.2, 0.4},  // different pair at a similar time
  };
  const auto merged = merge_conjunctions(raw, 1.0);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].sat_a, 1u);
  EXPECT_DOUBLE_EQ(merged[0].pca, 1.2);  // kept the deeper minimum
  EXPECT_DOUBLE_EQ(merged[1].tca, 900.0);
  EXPECT_EQ(merged[2].sat_a, 3u);
}

TEST(Report, MergeChainsWithinTolerance) {
  // 100.0, 100.8, 101.6: each within 1.0 of the previous -> one event.
  std::vector<Conjunction> raw{
      {1, 2, 100.0, 3.0}, {1, 2, 100.8, 2.0}, {1, 2, 101.6, 2.5}};
  const auto merged = merge_conjunctions(raw, 1.0);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].pca, 2.0);
}

TEST(Report, CollidingPairsDeduplicates) {
  ScreeningReport report;
  report.conjunctions = {{1, 2, 10.0, 1.0}, {1, 2, 500.0, 0.5}, {3, 4, 1.0, 1.0}};
  const auto pairs = report.colliding_pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
  EXPECT_EQ(pairs[1], (std::pair<std::uint32_t, std::uint32_t>{3, 4}));
}

TEST(Report, ComparePairSets) {
  using P = std::pair<std::uint32_t, std::uint32_t>;
  const std::vector<P> a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<P> b{{3, 4}, {5, 6}, {7, 8}, {9, 10}};
  const PairSetDiff diff = compare_pair_sets(a, b);
  EXPECT_EQ(diff.common, 2u);
  EXPECT_EQ(diff.only_in_first, 1u);
  EXPECT_EQ(diff.only_in_second, 2u);

  const PairSetDiff empty = compare_pair_sets({}, {});
  EXPECT_EQ(empty.common, 0u);
  EXPECT_EQ(empty.only_in_first, 0u);
}

TEST(Report, PhaseTimingsTotal) {
  PhaseTimings t;
  t.allocation = 1.0;
  t.insertion = 2.0;
  t.detection = 3.0;
  t.filtering = 4.0;
  t.refinement = 5.0;
  EXPECT_DOUBLE_EQ(t.total(), 15.0);
}

}  // namespace
}  // namespace scod
