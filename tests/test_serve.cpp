#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"
#include "population/catalog_io.hpp"
#include "population/generator.hpp"

#ifndef SCOD_SERVE_PATH
#error "SCOD_SERVE_PATH must be defined by the build"
#endif

namespace scod {
namespace {

struct ServeRun {
  int exit_code = -1;
  std::string output;
};

/// Runs scod_serve with `commands` piped to stdin and the given options.
ServeRun run_serve(const std::string& options, const std::string& commands) {
  const std::string script = testing::TempDir() + "/scod_serve_input.txt";
  {
    std::ofstream out(script);
    out << commands;
  }
  const std::string command = std::string(SCOD_SERVE_PATH) + " " + options +
                              " < " + script + " 2>&1";
  ServeRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(script.c_str());
  return result;
}

std::string write_catalog(const std::string& name, std::size_t count,
                          std::uint64_t seed) {
  const std::string path = testing::TempDir() + "/" + name;
  save_catalog_csv(path, generate_population({count, seed}));
  return path;
}

TEST(Serve, RejectsUnknownOption) {
  const ServeRun run = run_serve("--frobnicate 1", "quit\n");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("usage:"), std::string::npos);
}

TEST(Serve, IngestScreenRemoveScreenStats) {
  const std::string catalog = write_catalog("serve_cat.csv", 800, 19);
  const ServeRun run = run_serve(
      "--threshold 10 --span 1800 --sps 30 --top 2",
      "ingest " + catalog + "\n" +
      "screen\n"
      "remove 5\n"
      "screen\n"
      "stats\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("ok ingested 800 objects, epoch 1"), std::string::npos)
      << run.output;
  // First screen is full, the removal-only rescreen is incremental.
  EXPECT_NE(run.output.find("(full)"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("(incremental:"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("removed 1"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("screens: 1 full, 1 incremental"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("ok bye"), std::string::npos) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, SurvivesBadCommandsAndFiles) {
  const std::string catalog = write_catalog("serve_cat2.csv", 50, 3);
  const ServeRun run = run_serve(
      "--threshold 5 --span 900",
      "frobnicate\n"
      "ingest /nonexistent/catalog.csv\n"
      "ingest\n"
      "remove notanumber\n"
      "remove 123456\n"
      "screen sideways\n"
      "ingest " + catalog + "\n" +
      "screen\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("error: unknown command 'frobnicate'"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: ingest needs a file path"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("error: remove needs a numeric id"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: no object with id 123456"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: unknown screen mode 'sideways'"),
            std::string::npos) << run.output;
  // The bad input did not take the service down: the later ingest+screen ran.
  EXPECT_NE(run.output.find("ok ingested 50 objects"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("(full)"), std::string::npos) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, PartialFinalLineIsStillProcessed) {
  // A driver that dies mid-write (or a pipe without a trailing newline)
  // must not lose the final command: getline delivers the unterminated
  // tail and the loop processes it before EOF ends the session.
  const ServeRun run = run_serve("", "frobnicate\nstats");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("error: unknown command 'frobnicate'"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("ok epoch 0, 0 objects"), std::string::npos)
      << run.output;
}

TEST(Serve, EveryReplyLineHasAProtocolPrefix) {
  // Drivers dispatch on the first token of each reply, so every top-level
  // line must start with "ok " or "error: "; continuation detail lines are
  // indented. The banner is the only exception.
  const std::string catalog = write_catalog("serve_cat3.csv", 100, 7);
  const ServeRun run = run_serve(
      "--threshold 5 --span 900",
      "bogus\n"
      "ingest " + catalog + "\n" +
      "screen\n"
      "stats\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::istringstream lines(run.output);
  std::string line;
  std::size_t checked = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("scod_serve ready", 0) == 0) continue;
    const bool ok = line.rfind("ok ", 0) == 0;
    const bool error = line.rfind("error: ", 0) == 0;
    const bool detail = line.rfind("  ", 0) == 0;
    EXPECT_TRUE(ok || error || detail) << "unprefixed reply line: " << line;
    ++checked;
  }
  EXPECT_GT(checked, 4u) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, StatsRoundTripTracksMutationsAndScreens) {
  const std::string catalog = write_catalog("serve_cat4.csv", 120, 11);
  const ServeRun run = run_serve(
      "--threshold 5 --span 900",
      "stats\n"
      "ingest " + catalog + "\n" +
      "remove 3\n"
      "screen\n"
      "screen\n"
      "stats\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  // Before any mutation the store is empty at epoch 0.
  EXPECT_NE(run.output.find("ok epoch 0, 0 objects"), std::string::npos)
      << run.output;
  // Afterwards: one ingest, one removal, one full screen, and the no-delta
  // rescreen answered from the warm baseline as a cached screen.
  EXPECT_NE(run.output.find("ingests 1"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("removals 1"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("screens: 1 full, 0 incremental, 1 cached"),
            std::string::npos) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, TelemetryCommandRoundTrip) {
  const std::string catalog = write_catalog("serve_cat5.csv", 100, 13);
  const ServeRun run = run_serve(
      "--threshold 5 --span 900",
      "telemetry\n"
      "ingest " + catalog + "\n" +
      "screen\n"
      "telemetry\n"
      "telemetry reset\n"
      "telemetry bogus\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
#if SCOD_TELEMETRY_ENABLED
  // The reply embeds the snapshot JSON; after a screen the funnel counters
  // are non-zero, so a known counter key must appear.
  EXPECT_NE(run.output.find("ok telemetry {"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("\"samples_propagated\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("ok telemetry reset"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("error: unknown telemetry argument 'bogus'"),
            std::string::npos) << run.output;
#else
  EXPECT_NE(run.output.find("error: telemetry compiled out"), std::string::npos)
      << run.output;
#endif
  std::remove(catalog.c_str());
}

TEST(Serve, HelpAndQuit) {
  const ServeRun run = run_serve("", "help\nquit\n");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("commands:"), std::string::npos);
  EXPECT_NE(run.output.find("update-tle"), std::string::npos);
}

}  // namespace
}  // namespace scod
