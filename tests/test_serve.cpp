#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "population/catalog_io.hpp"
#include "population/generator.hpp"

#ifndef SCOD_SERVE_PATH
#error "SCOD_SERVE_PATH must be defined by the build"
#endif

namespace scod {
namespace {

struct ServeRun {
  int exit_code = -1;
  std::string output;
};

/// Runs scod_serve with `commands` piped to stdin and the given options.
ServeRun run_serve(const std::string& options, const std::string& commands) {
  const std::string script = testing::TempDir() + "/scod_serve_input.txt";
  {
    std::ofstream out(script);
    out << commands;
  }
  const std::string command = std::string(SCOD_SERVE_PATH) + " " + options +
                              " < " + script + " 2>&1";
  ServeRun result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(script.c_str());
  return result;
}

std::string write_catalog(const std::string& name, std::size_t count,
                          std::uint64_t seed) {
  const std::string path = testing::TempDir() + "/" + name;
  save_catalog_csv(path, generate_population({count, seed}));
  return path;
}

TEST(Serve, RejectsUnknownOption) {
  const ServeRun run = run_serve("--frobnicate 1", "quit\n");
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.output.find("usage:"), std::string::npos);
}

TEST(Serve, IngestScreenRemoveScreenStats) {
  const std::string catalog = write_catalog("serve_cat.csv", 800, 19);
  const ServeRun run = run_serve(
      "--threshold 10 --span 1800 --sps 30 --top 2",
      "ingest " + catalog + "\n" +
      "screen\n"
      "remove 5\n"
      "screen\n"
      "stats\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("ok ingested 800 objects, epoch 1"), std::string::npos)
      << run.output;
  // First screen is full, the removal-only rescreen is incremental.
  EXPECT_NE(run.output.find("(full)"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("(incremental:"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("removed 1"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("screens: 1 full, 1 incremental"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("ok bye"), std::string::npos) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, SurvivesBadCommandsAndFiles) {
  const std::string catalog = write_catalog("serve_cat2.csv", 50, 3);
  const ServeRun run = run_serve(
      "--threshold 5 --span 900",
      "frobnicate\n"
      "ingest /nonexistent/catalog.csv\n"
      "ingest\n"
      "remove notanumber\n"
      "remove 123456\n"
      "screen sideways\n"
      "ingest " + catalog + "\n" +
      "screen\n"
      "quit\n");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("error: unknown command 'frobnicate'"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: ingest needs a file path"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("error: remove needs a numeric id"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: no object with id 123456"),
            std::string::npos) << run.output;
  EXPECT_NE(run.output.find("error: unknown screen mode 'sideways'"),
            std::string::npos) << run.output;
  // The bad input did not take the service down: the later ingest+screen ran.
  EXPECT_NE(run.output.find("ok ingested 50 objects"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("(full)"), std::string::npos) << run.output;
  std::remove(catalog.c_str());
}

TEST(Serve, HelpAndQuit) {
  const ServeRun run = run_serve("", "help\nquit\n");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("commands:"), std::string::npos);
  EXPECT_NE(run.output.find("update-tle"), std::string::npos);
}

}  // namespace
}  // namespace scod
