#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "filters/apogee_perigee.hpp"
#include "filters/coplanarity.hpp"
#include "filters/dense_scan.hpp"
#include "filters/orbit_path.hpp"
#include "filters/time_windows.hpp"
#include "orbit/geometry.hpp"
#include "population/generator.hpp"
#include "propagation/kepler_solver.hpp"
#include "scenario_helpers.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {
namespace {

KeplerElements circular(double radius, double inc = 0.0, double raan = 0.0) {
  return {radius, 0.0001, inc, raan, 0.0, 0.0};
}

TEST(ApogeePerigeeFilter, SeparatedBandsExcluded) {
  // Orbits at 7000 and 7100 km: a 100 km radial gap can never close to 2 km.
  EXPECT_FALSE(apogee_perigee_overlap(circular(7000.0), circular(7100.0), 2.0));
  EXPECT_NEAR(radial_band_gap(circular(7000.0), circular(7100.0)), 98.6, 0.1);
}

TEST(ApogeePerigeeFilter, OverlappingBandsSurvive) {
  EXPECT_TRUE(apogee_perigee_overlap(circular(7000.0), circular(7001.0), 2.0));
  // Eccentric orbit sweeping across the other's radius.
  const KeplerElements ecc{7500.0, 0.1, 0.5, 0.0, 0.0, 0.0};  // 6750..8250 km
  EXPECT_TRUE(apogee_perigee_overlap(ecc, circular(7000.0), 2.0));
  EXPECT_LT(radial_band_gap(ecc, circular(7000.0)), 0.0);
}

TEST(ApogeePerigeeFilter, ThresholdPaddingMatters) {
  const KeplerElements a = circular(7000.0);
  const KeplerElements b = circular(7003.0);
  // Gap ~ 1.6 km (the 0.0001 eccentricities widen both bands slightly).
  EXPECT_TRUE(apogee_perigee_overlap(a, b, 2.0));
  EXPECT_FALSE(apogee_perigee_overlap(a, b, 1.0));
}

TEST(ApogeePerigeeFilter, IsSymmetric) {
  const KeplerElements a{7500.0, 0.05, 1.0, 0.0, 0.0, 0.0};
  const KeplerElements b{7800.0, 0.02, 0.5, 1.0, 2.0, 3.0};
  EXPECT_EQ(apogee_perigee_overlap(a, b, 2.0), apogee_perigee_overlap(b, a, 2.0));
  EXPECT_DOUBLE_EQ(radial_band_gap(a, b), radial_band_gap(b, a));
}

TEST(Coplanarity, DetectsIdenticalAndTiltedPlanes) {
  const KeplerElements a = circular(7000.0, 0.9, 1.2);
  EXPECT_TRUE(are_coplanar(a, a));
  KeplerElements b = a;
  b.inclination += 0.001;
  EXPECT_TRUE(are_coplanar(a, b));
  b.inclination = a.inclination + 0.5;
  EXPECT_FALSE(are_coplanar(a, b));
}

TEST(Coplanarity, OppositeNormalsAreCoplanar) {
  const KeplerElements a = circular(7000.0, 0.4, 0.3);
  KeplerElements b = a;
  b.inclination = kPi - a.inclination;
  b.raan = a.raan + kPi;
  EXPECT_TRUE(are_coplanar(a, b));
}

TEST(OrbitPath, ConcentricCoplanarCircles) {
  // Same plane, radii 7000/7050: minimum distance is the radial gap.
  const double d = min_orbit_distance(circular(7000.0), circular(7050.0));
  EXPECT_NEAR(d, 50.0, 1.5);  // near-circular e=1e-4 shifts apsides slightly
}

TEST(OrbitPath, IntersectingPerpendicularCircles) {
  // Equal radii in perpendicular planes intersect: distance ~ 0.
  const double d = min_orbit_distance(circular(7000.0), circular(7000.0, kPi / 2.0));
  EXPECT_LT(d, 2.0);
}

TEST(OrbitPath, EllipseGrazingCircle) {
  // Ellipse with perigee at the circle's radius, same plane.
  KeplerElements ellipse{8000.0, 0.125, 0.0, 0.0, 0.0, 0.0};  // perigee 7000
  const double d = min_orbit_distance(ellipse, circular(7000.0));
  EXPECT_LT(d, 3.0);
}

TEST(OrbitPath, FilterPassesAndRejects) {
  EXPECT_TRUE(orbit_path_overlap(circular(7000.0), circular(7001.0), 2.0));
  EXPECT_FALSE(orbit_path_overlap(circular(7000.0), circular(7100.0), 2.0));
}

TEST(OrbitPath, LowerBoundsTimeDependentDistance) {
  // The MOID must never exceed the distance at any common instant.
  Rng rng(31);
  const NewtonKeplerSolver solver;
  const auto sats = generate_population({20, 900});
  const TwoBodyPropagator prop(sats, solver);
  for (int k = 0; k < 15; ++k) {
    const auto i = rng.uniform_index(sats.size());
    const auto j = rng.uniform_index(sats.size());
    if (i == j) continue;
    const double moid =
        min_orbit_distance(sats[i].elements, sats[j].elements, /*coarse=*/48);
    for (double t = 0.0; t < 5000.0; t += 500.0) {
      EXPECT_LE(moid, prop.distance(i, j, t) + 0.5) << "pair " << i << "," << j;
    }
  }
}

TEST(MergeIntervals, SortsAndMerges) {
  std::vector<Interval> in{{5, 7}, {1, 2}, {6, 9}, {2, 3}};
  const auto merged = merge_intervals(in);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(merged[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(merged[1].lo, 5.0);
  EXPECT_DOUBLE_EQ(merged[1].hi, 9.0);
  EXPECT_TRUE(merge_intervals({}).empty());
}

TEST(Interval, ContainsAndLength) {
  const Interval iv{2.0, 5.0};
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(5.0));
  EXPECT_FALSE(iv.contains(5.1));
  EXPECT_DOUBLE_EQ(iv.length(), 3.0);
}

TEST(NodeCrossings, PerpendicularEqualCircles) {
  const KeplerElements a = circular(7000.0);
  const KeplerElements b = circular(7000.0, kPi / 2.0);
  const auto crossings = node_crossings(a, b);
  // Equal radii: both nodes have ~zero miss distance.
  EXPECT_LT(crossings[0].miss_distance, 1.5);
  EXPECT_LT(crossings[1].miss_distance, 1.5);
  // The two crossings of one orbit are half a revolution apart.
  const double df = std::abs(crossings[0].true_anomaly_a - crossings[1].true_anomaly_a);
  EXPECT_NEAR(std::min(df, kTwoPi - df), kPi, 1e-6);
}

TEST(NodeCrossings, RadialGapIsMissDistance) {
  const KeplerElements a = circular(7000.0);
  const KeplerElements b = circular(7080.0, 0.7, 0.4);
  const auto crossings = node_crossings(a, b);
  EXPECT_NEAR(crossings[0].miss_distance, 80.0, 2.5);
  EXPECT_NEAR(crossings[1].miss_distance, 80.0, 2.5);
}

TEST(NodeCrossings, CrossingPointsLieOnNodeLine) {
  const KeplerElements a{7300.0, 0.05, 0.8, 1.0, 0.5, 0.0};
  const KeplerElements b{7400.0, 0.02, 1.4, 2.0, 1.5, 0.0};
  const auto crossings = node_crossings(a, b);
  const Vec3 k = normal_of(a).cross(normal_of(b)).normalized();
  for (int s = 0; s < 2; ++s) {
    const Vec3 dir = s == 0 ? k : -k;
    const Vec3 pa = OrbitCurve(a).position(crossings[s].true_anomaly_a);
    const Vec3 pb = OrbitCurve(b).position(crossings[s].true_anomaly_b);
    // Positions point along the node direction...
    EXPECT_GT(pa.normalized().dot(dir), 0.999);
    EXPECT_GT(pb.normalized().dot(dir), 0.999);
    // ...so the inter-orbit distance there is the radial gap.
    EXPECT_NEAR(pa.distance(pb), crossings[s].miss_distance, 1e-6);
  }
}

TEST(TimeWindows, ExcludedWhenNodeMissTooLarge) {
  const KeplerElements a = circular(7000.0);
  const KeplerElements b = circular(7100.0, 0.9);  // 100 km node miss
  const auto windows = conjunction_time_windows(a, b, 0.0, 20000.0, 2.0);
  EXPECT_TRUE(windows.empty());
}

TEST(TimeWindows, ProducedForSynchronizedNodeCrossings) {
  // Equal-radius perpendicular circular orbits, both starting at the node:
  // they reach the intersection line simultaneously every revolution, so
  // the window intersection must be non-empty.
  const KeplerElements a = circular(7000.0);
  const KeplerElements b = circular(7000.0, kPi / 2.0);
  const auto windows = conjunction_time_windows(a, b, 0.0, 20000.0, 2.0);
  EXPECT_FALSE(windows.empty());
  for (const Interval& w : windows) {
    EXPECT_GE(w.lo, 0.0);
    EXPECT_LE(w.hi, 20000.0);
    EXPECT_GT(w.length(), 0.0);
  }
  // Windows recur with the (common) orbital period at the node passages.
  const double period = orbital_period(a);
  for (const Interval& w : windows) {
    const double phase = std::fmod(0.5 * (w.lo + w.hi) + 0.25 * period, period);
    EXPECT_NEAR(std::min(phase, period - phase), 0.25 * period, 60.0);
  }
}

TEST(TimeWindows, ContainSubThresholdMinima) {
  // Property: every dense-scan encounter below the threshold must fall
  // inside some returned window. Encounters are engineered: an interceptor
  // orbit is constructed through the target's position at a chosen time.
  Rng rng(77);
  const NewtonKeplerSolver solver;
  const double threshold = 5.0;
  const double span = 15000.0;
  int checked_minima = 0;

  for (int trial = 0; trial < 25; ++trial) {
    KeplerElements a = circular(rng.uniform(6900.0, 7100.0),
                                rng.uniform(0.1, kPi - 0.1), rng.uniform(0.0, kTwoPi));
    a.mean_anomaly = rng.uniform(0.0, kTwoPi);
    const double t_star = rng.uniform(0.1 * span, 0.9 * span);
    const double offset = rng.uniform(-3.0, 3.0);
    const Satellite interceptor =
        testutil::make_interceptor(a, t_star, offset, rng, 1);
    const KeplerElements& b = interceptor.elements;
    ASSERT_FALSE(are_coplanar(a, b));

    const std::vector<Satellite> sats{{0, a}, interceptor};
    const TwoBodyPropagator prop(sats, solver);
    DenseScanOptions scan;
    scan.step = 2.0;
    const auto encounters = scan_encounters(prop, 0, 1, 0.0, span, scan);

    const auto windows = conjunction_time_windows(a, b, 0.0, span, threshold);
    bool found_engineered = false;
    for (const Encounter& e : encounters) {
      if (e.pca > threshold) continue;
      ++checked_minima;
      if (std::abs(e.tca - t_star) < 30.0) found_engineered = true;
      bool inside = false;
      for (const Interval& w : windows) {
        if (w.contains(e.tca)) inside = true;
      }
      EXPECT_TRUE(inside) << "trial " << trial << " tca=" << e.tca
                          << " pca=" << e.pca;
    }
    EXPECT_TRUE(found_engineered) << "trial " << trial;
  }
  EXPECT_GE(checked_minima, 25);
}

TEST(DenseScan, FindsAllMinimaOfTwoOrbitSystem) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, circular(7000.0)},
                                    {1, circular(7000.0, kPi / 2.0)}};
  const TwoBodyPropagator prop(sats, solver);
  DenseScanOptions scan;
  scan.step = 5.0;
  const auto encounters = scan_encounters(prop, 0, 1, 0.0, 20000.0, scan);

  // Equal-radius perpendicular circular orbits with equal periods meet the
  // node twice per revolution; period ~ 5828 s, span covers ~3.4 revs ->
  // expect ~6-8 local minima.
  EXPECT_GE(encounters.size(), 5u);
  EXPECT_LE(encounters.size(), 10u);
  // Minima alternate: every reported TCA must be a genuine local minimum.
  for (const Encounter& e : encounters) {
    if (e.tca < 10.0 || e.tca > 19990.0) continue;  // skip span edges
    const double d0 = prop.distance(0, 1, e.tca);
    EXPECT_LE(d0, prop.distance(0, 1, e.tca - 5.0) + 1e-9);
    EXPECT_LE(d0, prop.distance(0, 1, e.tca + 5.0) + 1e-9);
  }
}

TEST(DenseScan, EmptySpanReturnsNothing) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, circular(7000.0)},
                                    {1, circular(7005.0, 1.0)}};
  const TwoBodyPropagator prop(sats, solver);
  EXPECT_TRUE(scan_encounters(prop, 0, 1, 100.0, 100.0, {}).empty());
  EXPECT_TRUE(scan_encounters(prop, 0, 1, 100.0, 50.0, {}).empty());
}

TEST(DenseScan, RefineBelowSkipsShallowMinima) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{{0, circular(7000.0)},
                                    {1, circular(7050.0, kPi / 2.0)}};
  const TwoBodyPropagator prop(sats, solver);
  DenseScanOptions strict;
  strict.step = 5.0;
  strict.refine_below = 10.0;  // all minima are ~50 km -> nothing refined
  EXPECT_TRUE(scan_encounters(prop, 0, 1, 0.0, 12000.0, strict).empty());
}

}  // namespace
}  // namespace scod
