# Empty compiler generated dependencies file for test_pipeline_edges.
# This may be replaced when dependencies are built.
