file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_edges.dir/test_pipeline_edges.cpp.o"
  "CMakeFiles/test_pipeline_edges.dir/test_pipeline_edges.cpp.o.d"
  "test_pipeline_edges"
  "test_pipeline_edges.pdb"
  "test_pipeline_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
