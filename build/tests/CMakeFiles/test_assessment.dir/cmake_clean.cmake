file(REMOVE_RECURSE
  "CMakeFiles/test_assessment.dir/test_assessment.cpp.o"
  "CMakeFiles/test_assessment.dir/test_assessment.cpp.o.d"
  "test_assessment"
  "test_assessment.pdb"
  "test_assessment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
