# Empty dependencies file for test_assessment.
# This may be replaced when dependencies are built.
