file(REMOVE_RECURSE
  "CMakeFiles/test_orbit.dir/test_orbit.cpp.o"
  "CMakeFiles/test_orbit.dir/test_orbit.cpp.o.d"
  "test_orbit"
  "test_orbit.pdb"
  "test_orbit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
