# Empty dependencies file for test_screeners.
# This may be replaced when dependencies are built.
