file(REMOVE_RECURSE
  "CMakeFiles/test_screeners.dir/test_screeners.cpp.o"
  "CMakeFiles/test_screeners.dir/test_screeners.cpp.o.d"
  "test_screeners"
  "test_screeners.pdb"
  "test_screeners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_screeners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
