# Empty compiler generated dependencies file for test_volumetric.
# This may be replaced when dependencies are built.
