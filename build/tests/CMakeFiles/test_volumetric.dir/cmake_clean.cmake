file(REMOVE_RECURSE
  "CMakeFiles/test_volumetric.dir/test_volumetric.cpp.o"
  "CMakeFiles/test_volumetric.dir/test_volumetric.cpp.o.d"
  "test_volumetric"
  "test_volumetric.pdb"
  "test_volumetric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volumetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
