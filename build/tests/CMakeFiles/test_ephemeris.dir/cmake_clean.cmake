file(REMOVE_RECURSE
  "CMakeFiles/test_ephemeris.dir/test_ephemeris.cpp.o"
  "CMakeFiles/test_ephemeris.dir/test_ephemeris.cpp.o.d"
  "test_ephemeris"
  "test_ephemeris.pdb"
  "test_ephemeris[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ephemeris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
