# Empty compiler generated dependencies file for test_ephemeris.
# This may be replaced when dependencies are built.
