
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_propagation.cpp" "tests/CMakeFiles/test_propagation.dir/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/test_propagation.dir/test_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/volumetric/CMakeFiles/scod_volumetric.dir/DependInfo.cmake"
  "/root/repo/build/src/assessment/CMakeFiles/scod_assessment.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/scod_model.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/scod_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/scod_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/scod_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/propagation/CMakeFiles/scod_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/scod_population.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/scod_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
