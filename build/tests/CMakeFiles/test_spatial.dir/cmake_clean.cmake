file(REMOVE_RECURSE
  "CMakeFiles/test_spatial.dir/test_spatial.cpp.o"
  "CMakeFiles/test_spatial.dir/test_spatial.cpp.o.d"
  "test_spatial"
  "test_spatial.pdb"
  "test_spatial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
