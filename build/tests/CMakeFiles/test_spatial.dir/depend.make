# Empty dependencies file for test_spatial.
# This may be replaced when dependencies are built.
