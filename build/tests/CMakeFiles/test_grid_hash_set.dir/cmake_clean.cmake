file(REMOVE_RECURSE
  "CMakeFiles/test_grid_hash_set.dir/test_grid_hash_set.cpp.o"
  "CMakeFiles/test_grid_hash_set.dir/test_grid_hash_set.cpp.o.d"
  "test_grid_hash_set"
  "test_grid_hash_set.pdb"
  "test_grid_hash_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_hash_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
