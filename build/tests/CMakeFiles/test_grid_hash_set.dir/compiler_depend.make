# Empty compiler generated dependencies file for test_grid_hash_set.
# This may be replaced when dependencies are built.
