# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_orbit[1]_include.cmake")
include("/root/repo/build/tests/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/test_spatial[1]_include.cmake")
include("/root/repo/build/tests/test_grid_hash_set[1]_include.cmake")
include("/root/repo/build/tests/test_filters[1]_include.cmake")
include("/root/repo/build/tests/test_pca[1]_include.cmake")
include("/root/repo/build/tests/test_population[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_screeners[1]_include.cmake")
include("/root/repo/build/tests/test_assessment[1]_include.cmake")
include("/root/repo/build/tests/test_ephemeris[1]_include.cmake")
include("/root/repo/build/tests/test_tle[1]_include.cmake")
include("/root/repo/build/tests/test_volumetric[1]_include.cmake")
include("/root/repo/build/tests/test_uncertainty[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_edges[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
