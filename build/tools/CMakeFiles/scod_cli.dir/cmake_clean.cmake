file(REMOVE_RECURSE
  "CMakeFiles/scod_cli.dir/scod_cli.cpp.o"
  "CMakeFiles/scod_cli.dir/scod_cli.cpp.o.d"
  "scod"
  "scod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
