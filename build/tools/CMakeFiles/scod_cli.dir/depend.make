# Empty dependencies file for scod_cli.
# This may be replaced when dependencies are built.
