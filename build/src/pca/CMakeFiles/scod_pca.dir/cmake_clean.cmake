file(REMOVE_RECURSE
  "CMakeFiles/scod_pca.dir/refine.cpp.o"
  "CMakeFiles/scod_pca.dir/refine.cpp.o.d"
  "libscod_pca.a"
  "libscod_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
