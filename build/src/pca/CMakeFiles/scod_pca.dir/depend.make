# Empty dependencies file for scod_pca.
# This may be replaced when dependencies are built.
