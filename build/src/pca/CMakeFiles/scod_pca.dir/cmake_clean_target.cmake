file(REMOVE_RECURSE
  "libscod_pca.a"
)
