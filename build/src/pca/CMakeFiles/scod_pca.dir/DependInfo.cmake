
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pca/refine.cpp" "src/pca/CMakeFiles/scod_pca.dir/refine.cpp.o" "gcc" "src/pca/CMakeFiles/scod_pca.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/propagation/CMakeFiles/scod_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/scod_population.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
