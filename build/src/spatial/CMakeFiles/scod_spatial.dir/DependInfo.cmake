
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/cell.cpp" "src/spatial/CMakeFiles/scod_spatial.dir/cell.cpp.o" "gcc" "src/spatial/CMakeFiles/scod_spatial.dir/cell.cpp.o.d"
  "/root/repo/src/spatial/conjunction_set.cpp" "src/spatial/CMakeFiles/scod_spatial.dir/conjunction_set.cpp.o" "gcc" "src/spatial/CMakeFiles/scod_spatial.dir/conjunction_set.cpp.o.d"
  "/root/repo/src/spatial/grid_hash_set.cpp" "src/spatial/CMakeFiles/scod_spatial.dir/grid_hash_set.cpp.o" "gcc" "src/spatial/CMakeFiles/scod_spatial.dir/grid_hash_set.cpp.o.d"
  "/root/repo/src/spatial/kdtree.cpp" "src/spatial/CMakeFiles/scod_spatial.dir/kdtree.cpp.o" "gcc" "src/spatial/CMakeFiles/scod_spatial.dir/kdtree.cpp.o.d"
  "/root/repo/src/spatial/murmur3.cpp" "src/spatial/CMakeFiles/scod_spatial.dir/murmur3.cpp.o" "gcc" "src/spatial/CMakeFiles/scod_spatial.dir/murmur3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
