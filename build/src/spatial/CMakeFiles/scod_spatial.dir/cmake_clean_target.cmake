file(REMOVE_RECURSE
  "libscod_spatial.a"
)
