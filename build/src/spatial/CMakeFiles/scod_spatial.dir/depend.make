# Empty dependencies file for scod_spatial.
# This may be replaced when dependencies are built.
