file(REMOVE_RECURSE
  "CMakeFiles/scod_spatial.dir/cell.cpp.o"
  "CMakeFiles/scod_spatial.dir/cell.cpp.o.d"
  "CMakeFiles/scod_spatial.dir/conjunction_set.cpp.o"
  "CMakeFiles/scod_spatial.dir/conjunction_set.cpp.o.d"
  "CMakeFiles/scod_spatial.dir/grid_hash_set.cpp.o"
  "CMakeFiles/scod_spatial.dir/grid_hash_set.cpp.o.d"
  "CMakeFiles/scod_spatial.dir/kdtree.cpp.o"
  "CMakeFiles/scod_spatial.dir/kdtree.cpp.o.d"
  "CMakeFiles/scod_spatial.dir/murmur3.cpp.o"
  "CMakeFiles/scod_spatial.dir/murmur3.cpp.o.d"
  "libscod_spatial.a"
  "libscod_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
