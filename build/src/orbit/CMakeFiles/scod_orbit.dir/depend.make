# Empty dependencies file for scod_orbit.
# This may be replaced when dependencies are built.
