
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/anomaly.cpp" "src/orbit/CMakeFiles/scod_orbit.dir/anomaly.cpp.o" "gcc" "src/orbit/CMakeFiles/scod_orbit.dir/anomaly.cpp.o.d"
  "/root/repo/src/orbit/frames.cpp" "src/orbit/CMakeFiles/scod_orbit.dir/frames.cpp.o" "gcc" "src/orbit/CMakeFiles/scod_orbit.dir/frames.cpp.o.d"
  "/root/repo/src/orbit/geometry.cpp" "src/orbit/CMakeFiles/scod_orbit.dir/geometry.cpp.o" "gcc" "src/orbit/CMakeFiles/scod_orbit.dir/geometry.cpp.o.d"
  "/root/repo/src/orbit/state.cpp" "src/orbit/CMakeFiles/scod_orbit.dir/state.cpp.o" "gcc" "src/orbit/CMakeFiles/scod_orbit.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
