file(REMOVE_RECURSE
  "CMakeFiles/scod_orbit.dir/anomaly.cpp.o"
  "CMakeFiles/scod_orbit.dir/anomaly.cpp.o.d"
  "CMakeFiles/scod_orbit.dir/frames.cpp.o"
  "CMakeFiles/scod_orbit.dir/frames.cpp.o.d"
  "CMakeFiles/scod_orbit.dir/geometry.cpp.o"
  "CMakeFiles/scod_orbit.dir/geometry.cpp.o.d"
  "CMakeFiles/scod_orbit.dir/state.cpp.o"
  "CMakeFiles/scod_orbit.dir/state.cpp.o.d"
  "libscod_orbit.a"
  "libscod_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
