file(REMOVE_RECURSE
  "libscod_orbit.a"
)
