
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/grid_pipeline.cpp" "src/core/CMakeFiles/scod_core.dir/grid_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/grid_pipeline.cpp.o.d"
  "/root/repo/src/core/grid_screener.cpp" "src/core/CMakeFiles/scod_core.dir/grid_screener.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/grid_screener.cpp.o.d"
  "/root/repo/src/core/hybrid_screener.cpp" "src/core/CMakeFiles/scod_core.dir/hybrid_screener.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/hybrid_screener.cpp.o.d"
  "/root/repo/src/core/legacy_screener.cpp" "src/core/CMakeFiles/scod_core.dir/legacy_screener.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/legacy_screener.cpp.o.d"
  "/root/repo/src/core/partitioned.cpp" "src/core/CMakeFiles/scod_core.dir/partitioned.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/partitioned.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/scod_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/report.cpp.o.d"
  "/root/repo/src/core/screen.cpp" "src/core/CMakeFiles/scod_core.dir/screen.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/screen.cpp.o.d"
  "/root/repo/src/core/sieve_screener.cpp" "src/core/CMakeFiles/scod_core.dir/sieve_screener.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/sieve_screener.cpp.o.d"
  "/root/repo/src/core/uncertainty.cpp" "src/core/CMakeFiles/scod_core.dir/uncertainty.cpp.o" "gcc" "src/core/CMakeFiles/scod_core.dir/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/scod_model.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/scod_population.dir/DependInfo.cmake"
  "/root/repo/build/src/pca/CMakeFiles/scod_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/scod_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/scod_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/propagation/CMakeFiles/scod_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/scod_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
