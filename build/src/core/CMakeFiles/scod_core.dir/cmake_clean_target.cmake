file(REMOVE_RECURSE
  "libscod_core.a"
)
