# Empty dependencies file for scod_core.
# This may be replaced when dependencies are built.
