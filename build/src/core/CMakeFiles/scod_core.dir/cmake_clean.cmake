file(REMOVE_RECURSE
  "CMakeFiles/scod_core.dir/grid_pipeline.cpp.o"
  "CMakeFiles/scod_core.dir/grid_pipeline.cpp.o.d"
  "CMakeFiles/scod_core.dir/grid_screener.cpp.o"
  "CMakeFiles/scod_core.dir/grid_screener.cpp.o.d"
  "CMakeFiles/scod_core.dir/hybrid_screener.cpp.o"
  "CMakeFiles/scod_core.dir/hybrid_screener.cpp.o.d"
  "CMakeFiles/scod_core.dir/legacy_screener.cpp.o"
  "CMakeFiles/scod_core.dir/legacy_screener.cpp.o.d"
  "CMakeFiles/scod_core.dir/partitioned.cpp.o"
  "CMakeFiles/scod_core.dir/partitioned.cpp.o.d"
  "CMakeFiles/scod_core.dir/report.cpp.o"
  "CMakeFiles/scod_core.dir/report.cpp.o.d"
  "CMakeFiles/scod_core.dir/screen.cpp.o"
  "CMakeFiles/scod_core.dir/screen.cpp.o.d"
  "CMakeFiles/scod_core.dir/sieve_screener.cpp.o"
  "CMakeFiles/scod_core.dir/sieve_screener.cpp.o.d"
  "CMakeFiles/scod_core.dir/uncertainty.cpp.o"
  "CMakeFiles/scod_core.dir/uncertainty.cpp.o.d"
  "libscod_core.a"
  "libscod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
