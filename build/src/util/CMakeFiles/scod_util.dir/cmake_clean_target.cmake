file(REMOVE_RECURSE
  "libscod_util.a"
)
