file(REMOVE_RECURSE
  "CMakeFiles/scod_util.dir/cli.cpp.o"
  "CMakeFiles/scod_util.dir/cli.cpp.o.d"
  "CMakeFiles/scod_util.dir/csv.cpp.o"
  "CMakeFiles/scod_util.dir/csv.cpp.o.d"
  "CMakeFiles/scod_util.dir/log.cpp.o"
  "CMakeFiles/scod_util.dir/log.cpp.o.d"
  "CMakeFiles/scod_util.dir/stats.cpp.o"
  "CMakeFiles/scod_util.dir/stats.cpp.o.d"
  "CMakeFiles/scod_util.dir/sysinfo.cpp.o"
  "CMakeFiles/scod_util.dir/sysinfo.cpp.o.d"
  "CMakeFiles/scod_util.dir/table.cpp.o"
  "CMakeFiles/scod_util.dir/table.cpp.o.d"
  "libscod_util.a"
  "libscod_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
