# Empty dependencies file for scod_util.
# This may be replaced when dependencies are built.
