file(REMOVE_RECURSE
  "libscod_model.a"
)
