# Empty dependencies file for scod_model.
# This may be replaced when dependencies are built.
