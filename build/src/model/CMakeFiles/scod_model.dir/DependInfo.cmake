
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/conjunction_model.cpp" "src/model/CMakeFiles/scod_model.dir/conjunction_model.cpp.o" "gcc" "src/model/CMakeFiles/scod_model.dir/conjunction_model.cpp.o.d"
  "/root/repo/src/model/powerlaw_fit.cpp" "src/model/CMakeFiles/scod_model.dir/powerlaw_fit.cpp.o" "gcc" "src/model/CMakeFiles/scod_model.dir/powerlaw_fit.cpp.o.d"
  "/root/repo/src/model/sizing.cpp" "src/model/CMakeFiles/scod_model.dir/sizing.cpp.o" "gcc" "src/model/CMakeFiles/scod_model.dir/sizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
