file(REMOVE_RECURSE
  "CMakeFiles/scod_model.dir/conjunction_model.cpp.o"
  "CMakeFiles/scod_model.dir/conjunction_model.cpp.o.d"
  "CMakeFiles/scod_model.dir/powerlaw_fit.cpp.o"
  "CMakeFiles/scod_model.dir/powerlaw_fit.cpp.o.d"
  "CMakeFiles/scod_model.dir/sizing.cpp.o"
  "CMakeFiles/scod_model.dir/sizing.cpp.o.d"
  "libscod_model.a"
  "libscod_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
