
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/propagation/contour_solver.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/contour_solver.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/contour_solver.cpp.o.d"
  "/root/repo/src/propagation/ephemeris.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/ephemeris.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/ephemeris.cpp.o.d"
  "/root/repo/src/propagation/j2_secular.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/j2_secular.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/j2_secular.cpp.o.d"
  "/root/repo/src/propagation/kepler_solver.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/kepler_solver.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/kepler_solver.cpp.o.d"
  "/root/repo/src/propagation/tle_secular.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/tle_secular.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/tle_secular.cpp.o.d"
  "/root/repo/src/propagation/two_body.cpp" "src/propagation/CMakeFiles/scod_propagation.dir/two_body.cpp.o" "gcc" "src/propagation/CMakeFiles/scod_propagation.dir/two_body.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/population/CMakeFiles/scod_population.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
