file(REMOVE_RECURSE
  "CMakeFiles/scod_propagation.dir/contour_solver.cpp.o"
  "CMakeFiles/scod_propagation.dir/contour_solver.cpp.o.d"
  "CMakeFiles/scod_propagation.dir/ephemeris.cpp.o"
  "CMakeFiles/scod_propagation.dir/ephemeris.cpp.o.d"
  "CMakeFiles/scod_propagation.dir/j2_secular.cpp.o"
  "CMakeFiles/scod_propagation.dir/j2_secular.cpp.o.d"
  "CMakeFiles/scod_propagation.dir/kepler_solver.cpp.o"
  "CMakeFiles/scod_propagation.dir/kepler_solver.cpp.o.d"
  "CMakeFiles/scod_propagation.dir/tle_secular.cpp.o"
  "CMakeFiles/scod_propagation.dir/tle_secular.cpp.o.d"
  "CMakeFiles/scod_propagation.dir/two_body.cpp.o"
  "CMakeFiles/scod_propagation.dir/two_body.cpp.o.d"
  "libscod_propagation.a"
  "libscod_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
