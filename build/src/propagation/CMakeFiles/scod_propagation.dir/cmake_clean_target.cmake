file(REMOVE_RECURSE
  "libscod_propagation.a"
)
