# Empty compiler generated dependencies file for scod_propagation.
# This may be replaced when dependencies are built.
