
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/population/anchors.cpp" "src/population/CMakeFiles/scod_population.dir/anchors.cpp.o" "gcc" "src/population/CMakeFiles/scod_population.dir/anchors.cpp.o.d"
  "/root/repo/src/population/catalog_io.cpp" "src/population/CMakeFiles/scod_population.dir/catalog_io.cpp.o" "gcc" "src/population/CMakeFiles/scod_population.dir/catalog_io.cpp.o.d"
  "/root/repo/src/population/generator.cpp" "src/population/CMakeFiles/scod_population.dir/generator.cpp.o" "gcc" "src/population/CMakeFiles/scod_population.dir/generator.cpp.o.d"
  "/root/repo/src/population/kde.cpp" "src/population/CMakeFiles/scod_population.dir/kde.cpp.o" "gcc" "src/population/CMakeFiles/scod_population.dir/kde.cpp.o.d"
  "/root/repo/src/population/tle.cpp" "src/population/CMakeFiles/scod_population.dir/tle.cpp.o" "gcc" "src/population/CMakeFiles/scod_population.dir/tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
