file(REMOVE_RECURSE
  "libscod_population.a"
)
