# Empty compiler generated dependencies file for scod_population.
# This may be replaced when dependencies are built.
