file(REMOVE_RECURSE
  "CMakeFiles/scod_population.dir/anchors.cpp.o"
  "CMakeFiles/scod_population.dir/anchors.cpp.o.d"
  "CMakeFiles/scod_population.dir/catalog_io.cpp.o"
  "CMakeFiles/scod_population.dir/catalog_io.cpp.o.d"
  "CMakeFiles/scod_population.dir/generator.cpp.o"
  "CMakeFiles/scod_population.dir/generator.cpp.o.d"
  "CMakeFiles/scod_population.dir/kde.cpp.o"
  "CMakeFiles/scod_population.dir/kde.cpp.o.d"
  "CMakeFiles/scod_population.dir/tle.cpp.o"
  "CMakeFiles/scod_population.dir/tle.cpp.o.d"
  "libscod_population.a"
  "libscod_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
