# Empty compiler generated dependencies file for scod_parallel.
# This may be replaced when dependencies are built.
