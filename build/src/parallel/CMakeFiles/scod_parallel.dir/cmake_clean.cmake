file(REMOVE_RECURSE
  "CMakeFiles/scod_parallel.dir/device.cpp.o"
  "CMakeFiles/scod_parallel.dir/device.cpp.o.d"
  "CMakeFiles/scod_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/scod_parallel.dir/thread_pool.cpp.o.d"
  "libscod_parallel.a"
  "libscod_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
