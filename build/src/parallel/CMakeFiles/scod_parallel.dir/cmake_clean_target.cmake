file(REMOVE_RECURSE
  "libscod_parallel.a"
)
