file(REMOVE_RECURSE
  "CMakeFiles/scod_volumetric.dir/cube.cpp.o"
  "CMakeFiles/scod_volumetric.dir/cube.cpp.o.d"
  "CMakeFiles/scod_volumetric.dir/octree.cpp.o"
  "CMakeFiles/scod_volumetric.dir/octree.cpp.o.d"
  "libscod_volumetric.a"
  "libscod_volumetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_volumetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
