# Empty compiler generated dependencies file for scod_volumetric.
# This may be replaced when dependencies are built.
