file(REMOVE_RECURSE
  "libscod_volumetric.a"
)
