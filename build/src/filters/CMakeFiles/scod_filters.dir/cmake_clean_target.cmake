file(REMOVE_RECURSE
  "libscod_filters.a"
)
