file(REMOVE_RECURSE
  "CMakeFiles/scod_filters.dir/apogee_perigee.cpp.o"
  "CMakeFiles/scod_filters.dir/apogee_perigee.cpp.o.d"
  "CMakeFiles/scod_filters.dir/coplanarity.cpp.o"
  "CMakeFiles/scod_filters.dir/coplanarity.cpp.o.d"
  "CMakeFiles/scod_filters.dir/dense_scan.cpp.o"
  "CMakeFiles/scod_filters.dir/dense_scan.cpp.o.d"
  "CMakeFiles/scod_filters.dir/orbit_path.cpp.o"
  "CMakeFiles/scod_filters.dir/orbit_path.cpp.o.d"
  "CMakeFiles/scod_filters.dir/time_windows.cpp.o"
  "CMakeFiles/scod_filters.dir/time_windows.cpp.o.d"
  "libscod_filters.a"
  "libscod_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
