
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/apogee_perigee.cpp" "src/filters/CMakeFiles/scod_filters.dir/apogee_perigee.cpp.o" "gcc" "src/filters/CMakeFiles/scod_filters.dir/apogee_perigee.cpp.o.d"
  "/root/repo/src/filters/coplanarity.cpp" "src/filters/CMakeFiles/scod_filters.dir/coplanarity.cpp.o" "gcc" "src/filters/CMakeFiles/scod_filters.dir/coplanarity.cpp.o.d"
  "/root/repo/src/filters/dense_scan.cpp" "src/filters/CMakeFiles/scod_filters.dir/dense_scan.cpp.o" "gcc" "src/filters/CMakeFiles/scod_filters.dir/dense_scan.cpp.o.d"
  "/root/repo/src/filters/orbit_path.cpp" "src/filters/CMakeFiles/scod_filters.dir/orbit_path.cpp.o" "gcc" "src/filters/CMakeFiles/scod_filters.dir/orbit_path.cpp.o.d"
  "/root/repo/src/filters/time_windows.cpp" "src/filters/CMakeFiles/scod_filters.dir/time_windows.cpp.o" "gcc" "src/filters/CMakeFiles/scod_filters.dir/time_windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pca/CMakeFiles/scod_pca.dir/DependInfo.cmake"
  "/root/repo/build/src/propagation/CMakeFiles/scod_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/scod_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scod_util.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/scod_population.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
