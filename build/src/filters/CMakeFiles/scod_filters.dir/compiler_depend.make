# Empty compiler generated dependencies file for scod_filters.
# This may be replaced when dependencies are built.
