file(REMOVE_RECURSE
  "libscod_assessment.a"
)
