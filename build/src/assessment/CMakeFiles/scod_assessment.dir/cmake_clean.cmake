file(REMOVE_RECURSE
  "CMakeFiles/scod_assessment.dir/cdm.cpp.o"
  "CMakeFiles/scod_assessment.dir/cdm.cpp.o.d"
  "CMakeFiles/scod_assessment.dir/geometry.cpp.o"
  "CMakeFiles/scod_assessment.dir/geometry.cpp.o.d"
  "CMakeFiles/scod_assessment.dir/probability.cpp.o"
  "CMakeFiles/scod_assessment.dir/probability.cpp.o.d"
  "CMakeFiles/scod_assessment.dir/rtn.cpp.o"
  "CMakeFiles/scod_assessment.dir/rtn.cpp.o.d"
  "libscod_assessment.a"
  "libscod_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scod_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
