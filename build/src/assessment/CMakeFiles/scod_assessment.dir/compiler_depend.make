# Empty compiler generated dependencies file for scod_assessment.
# This may be replaced when dependencies are built.
