# Empty compiler generated dependencies file for megaconstellation.
# This may be replaced when dependencies are built.
