# Empty dependencies file for megaconstellation.
# This may be replaced when dependencies are built.
