file(REMOVE_RECURSE
  "CMakeFiles/megaconstellation.dir/megaconstellation.cpp.o"
  "CMakeFiles/megaconstellation.dir/megaconstellation.cpp.o.d"
  "megaconstellation"
  "megaconstellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megaconstellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
