file(REMOVE_RECURSE
  "CMakeFiles/catalog_screening.dir/catalog_screening.cpp.o"
  "CMakeFiles/catalog_screening.dir/catalog_screening.cpp.o.d"
  "catalog_screening"
  "catalog_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
