# Empty dependencies file for catalog_screening.
# This may be replaced when dependencies are built.
