# Empty dependencies file for debris_cloud.
# This may be replaced when dependencies are built.
