file(REMOVE_RECURSE
  "CMakeFiles/debris_cloud.dir/debris_cloud.cpp.o"
  "CMakeFiles/debris_cloud.dir/debris_cloud.cpp.o.d"
  "debris_cloud"
  "debris_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debris_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
