# Empty compiler generated dependencies file for cdm_pipeline.
# This may be replaced when dependencies are built.
