file(REMOVE_RECURSE
  "CMakeFiles/cdm_pipeline.dir/cdm_pipeline.cpp.o"
  "CMakeFiles/cdm_pipeline.dir/cdm_pipeline.cpp.o.d"
  "cdm_pipeline"
  "cdm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
