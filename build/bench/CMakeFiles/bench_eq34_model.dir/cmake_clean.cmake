file(REMOVE_RECURSE
  "CMakeFiles/bench_eq34_model.dir/bench_eq34_model.cpp.o"
  "CMakeFiles/bench_eq34_model.dir/bench_eq34_model.cpp.o.d"
  "bench_eq34_model"
  "bench_eq34_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq34_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
