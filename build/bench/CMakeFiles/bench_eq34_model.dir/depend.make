# Empty dependencies file for bench_eq34_model.
# This may be replaced when dependencies are built.
