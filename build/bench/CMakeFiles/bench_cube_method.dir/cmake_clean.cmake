file(REMOVE_RECURSE
  "CMakeFiles/bench_cube_method.dir/bench_cube_method.cpp.o"
  "CMakeFiles/bench_cube_method.dir/bench_cube_method.cpp.o.d"
  "bench_cube_method"
  "bench_cube_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cube_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
