# Empty dependencies file for bench_cube_method.
# This may be replaced when dependencies are built.
