# Empty dependencies file for bench_table2_population.
# This may be replaced when dependencies are built.
