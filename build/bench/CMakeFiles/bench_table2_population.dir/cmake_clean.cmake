file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_population.dir/bench_table2_population.cpp.o"
  "CMakeFiles/bench_table2_population.dir/bench_table2_population.cpp.o.d"
  "bench_table2_population"
  "bench_table2_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
