# Empty compiler generated dependencies file for bench_vd_accuracy.
# This may be replaced when dependencies are built.
