file(REMOVE_RECURSE
  "CMakeFiles/bench_vd_accuracy.dir/bench_vd_accuracy.cpp.o"
  "CMakeFiles/bench_vd_accuracy.dir/bench_vd_accuracy.cpp.o.d"
  "bench_vd_accuracy"
  "bench_vd_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vd_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
