# Empty compiler generated dependencies file for bench_vc1_breakdown.
# This may be replaced when dependencies are built.
