file(REMOVE_RECURSE
  "CMakeFiles/bench_vc1_breakdown.dir/bench_vc1_breakdown.cpp.o"
  "CMakeFiles/bench_vc1_breakdown.dir/bench_vc1_breakdown.cpp.o.d"
  "bench_vc1_breakdown"
  "bench_vc1_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
