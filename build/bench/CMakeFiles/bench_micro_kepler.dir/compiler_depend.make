# Empty compiler generated dependencies file for bench_micro_kepler.
# This may be replaced when dependencies are built.
