file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kepler.dir/bench_micro_kepler.cpp.o"
  "CMakeFiles/bench_micro_kepler.dir/bench_micro_kepler.cpp.o.d"
  "bench_micro_kepler"
  "bench_micro_kepler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kepler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
