# Empty compiler generated dependencies file for bench_vc3_tdp.
# This may be replaced when dependencies are built.
