file(REMOVE_RECURSE
  "CMakeFiles/bench_vc3_tdp.dir/bench_vc3_tdp.cpp.o"
  "CMakeFiles/bench_vc3_tdp.dir/bench_vc3_tdp.cpp.o.d"
  "bench_vc3_tdp"
  "bench_vc3_tdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc3_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
