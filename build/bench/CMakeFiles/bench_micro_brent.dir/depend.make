# Empty dependencies file for bench_micro_brent.
# This may be replaced when dependencies are built.
