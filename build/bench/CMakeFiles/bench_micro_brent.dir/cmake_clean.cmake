file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_brent.dir/bench_micro_brent.cpp.o"
  "CMakeFiles/bench_micro_brent.dir/bench_micro_brent.cpp.o.d"
  "bench_micro_brent"
  "bench_micro_brent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_brent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
