file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_distribution.dir/bench_fig9_distribution.cpp.o"
  "CMakeFiles/bench_fig9_distribution.dir/bench_fig9_distribution.cpp.o.d"
  "bench_fig9_distribution"
  "bench_fig9_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
