file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_cellsize.dir/bench_eq1_cellsize.cpp.o"
  "CMakeFiles/bench_eq1_cellsize.dir/bench_eq1_cellsize.cpp.o.d"
  "bench_eq1_cellsize"
  "bench_eq1_cellsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_cellsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
