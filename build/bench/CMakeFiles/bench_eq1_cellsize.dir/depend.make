# Empty dependencies file for bench_eq1_cellsize.
# This may be replaced when dependencies are built.
