# Empty compiler generated dependencies file for bench_vc2_threads.
# This may be replaced when dependencies are built.
