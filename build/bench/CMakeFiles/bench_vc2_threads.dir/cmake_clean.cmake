file(REMOVE_RECURSE
  "CMakeFiles/bench_vc2_threads.dir/bench_vc2_threads.cpp.o"
  "CMakeFiles/bench_vc2_threads.dir/bench_vc2_threads.cpp.o.d"
  "bench_vc2_threads"
  "bench_vc2_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc2_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
