/// scod_fuzz — differential screening oracle: property-based cross-variant
/// fuzz harness with deterministic replay and shrinking.
///
///   scod_fuzz --runs 200 --seed 1              # fuzz fresh adversarial cases
///   scod_fuzz --case tests/corpus/foo.case     # replay one saved case
///   scod_fuzz --corpus tests/corpus            # replay the regression corpus
///   scod_fuzz --seed 7 --save-case out.case    # dump a generated case
///
/// Every case screens one adversarial catalog through the grid, hybrid,
/// legacy and sieve variants — and through the incremental service under a
/// randomized delta — then diffs the conjunction sets against a dense-scan
/// oracle with paper-consistent tolerances. A divergence is minimized by
/// the shrinker and written as a replayable .case file; the exit status is
/// non-zero iff any divergence was found. The final stdout line is a
/// RunStats JSON object for CI trending.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "util/cli.hpp"
#include "verify/adversarial.hpp"
#include "verify/case_io.hpp"
#include "verify/differential.hpp"
#include "verify/shrink.hpp"

namespace {

using namespace scod;
using namespace scod::verify;

int usage() {
  std::fprintf(stderr,
               "usage: scod_fuzz [options]\n"
               "\n"
               "  --runs N          fuzz N generated cases (default 20)\n"
               "  --seed S          first generator seed (default 1)\n"
               "  --objects N       background population per case (default 24)\n"
               "  --per-regime N    engineered objects per regime (default 2)\n"
               "  --span S          screened span [s] (default 3600)\n"
               "  --threshold KM    screening threshold (default 5)\n"
               "  --sps S           sample period [s] (default 4)\n"
               "  --case FILE       replay one saved case instead of fuzzing\n"
               "  --corpus DIR      replay every *.case file in DIR\n"
               "  --save-case FILE  write the first generated case and exit\n"
               "  --out DIR         where shrunk failure cases land (default .)\n"
               "  --no-service      skip the incremental-service check\n"
               "  --no-counters     skip the telemetry funnel-invariant checks\n"
               "  --no-shrink      report divergences without minimizing\n"
               "  --shared-context  rerun every screen through one long-lived\n"
               "                    ScreeningContext shared across all cases and\n"
               "                    flag any warm-vs-cold report difference\n"
               "\n"
               "exit status: 0 when every case agrees, 1 on any divergence.\n");
  return 2;
}

struct FuzzSettings {
  DifferentialOptions differential;
  bool shrink = true;
  std::string out_dir = ".";
};

void print_divergences(const std::string& label, const CaseResult& result) {
  std::fprintf(stderr, "FAIL %s: %zu divergence(s)\n", label.c_str(),
               result.divergences.size());
  for (const Divergence& d : result.divergences) {
    std::fprintf(stderr, "  [%s/%s] %s\n", d.screener.c_str(),
                 divergence_kind_name(d.kind), d.detail.c_str());
  }
}

/// Runs one case; on divergence shrinks it and writes the minimized
/// reproduction under settings.out_dir. Returns the case result.
CaseResult run_case(const FuzzCase& fuzz_case, const std::string& label,
                    const FuzzSettings& settings) {
  const CaseResult result = run_differential(fuzz_case, settings.differential);
  if (result.ok()) return result;

  print_divergences(label, result);
  FuzzCase repro = fuzz_case;
  if (settings.shrink) {
    const ShrinkResult shrunk = shrink_case(
        fuzz_case,
        [&](const FuzzCase& candidate) {
          return !run_differential(candidate, settings.differential).ok();
        });
    repro = shrunk.minimized;
    std::fprintf(stderr,
                 "  shrunk %zu -> %zu objects in %zu checks, span %.0f s\n",
                 shrunk.initial_objects, repro.size(), shrunk.checks,
                 repro.config.t_end - repro.config.t_begin);
  }
  const std::string path =
      settings.out_dir + "/fuzz-" + label + ".case";
  save_case(path, repro);
  std::fprintf(stderr, "  replay: scod_fuzz --case %s\n", path.c_str());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"runs", "seed", "objects", "per-regime", "span",
                      "threshold", "sps", "case", "corpus", "save-case", "out",
                      "no-service", "no-counters", "no-shrink",
                      "shared-context", "help"});
  if (args.has("help")) return usage();
  if (!args.unknown().empty()) {
    for (const std::string& opt : args.unknown()) {
      std::fprintf(stderr, "scod_fuzz: unknown option '%s'\n", opt.c_str());
    }
    return usage();
  }

  FuzzSettings settings;
  settings.shrink = !args.get_bool("no-shrink", false);
  settings.out_dir = args.get_string("out", ".");
  settings.differential.check_service = !args.get_bool("no-service", false);
  settings.differential.check_counters = !args.get_bool("no-counters", false);

  // One context across the entire run: each case's warm rerun inherits
  // arena buffers from every case before it — the strongest version of the
  // "no state leaks between screens" property the context promises.
  std::optional<ScreeningContext> shared_context;
  if (args.get_bool("shared-context", false)) {
    shared_context.emplace();
    settings.differential.shared_context = &*shared_context;
  }

  AdversarialConfig generator;
  generator.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  generator.background = static_cast<std::size_t>(args.get_int("objects", 24));
  generator.per_regime = static_cast<std::size_t>(args.get_int("per-regime", 2));
  generator.t_end = args.get_double("span", 3600.0);
  generator.threshold_km = args.get_double("threshold", 5.0);
  generator.seconds_per_sample = args.get_double("sps", 4.0);

  RunStats stats;
  try {
    const std::string save_path = args.get_string("save-case", "");
    if (!save_path.empty()) {
      save_case(save_path, generate_case(generator));
      std::printf("wrote case for seed %llu to %s\n",
                  static_cast<unsigned long long>(generator.seed),
                  save_path.c_str());
      return 0;
    }

    const std::string case_path = args.get_string("case", "");
    const std::string corpus_dir = args.get_string("corpus", "");
    if (!case_path.empty()) {
      stats.add(run_case(load_case(case_path), "replay", settings));
    } else if (!corpus_dir.empty()) {
      const auto paths = list_corpus(corpus_dir);
      if (paths.empty()) {
        std::fprintf(stderr, "scod_fuzz: no *.case files under %s\n",
                     corpus_dir.c_str());
        return 2;
      }
      for (const std::string& path : paths) {
        const std::string label =
            path.substr(path.find_last_of('/') + 1);
        stats.add(run_case(load_case(path), label, settings));
        std::fprintf(stderr, "corpus %s: %s\n", label.c_str(),
                     stats.divergences == 0 ? "ok" : "divergent");
      }
    } else {
      const auto runs = static_cast<std::uint64_t>(args.get_int("runs", 20));
      for (std::uint64_t r = 0; r < runs; ++r) {
        AdversarialConfig per_run = generator;
        per_run.seed = generator.seed + r;
        const FuzzCase fuzz_case = generate_case(per_run);
        stats.add(run_case(fuzz_case, "seed-" + std::to_string(per_run.seed),
                           settings));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scod_fuzz: %s\n", e.what());
    return 2;
  }

  std::printf("%s\n", stats.to_json().c_str());
  return stats.divergences == 0 ? 0 : 1;
}
