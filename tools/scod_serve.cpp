/// scod_serve — long-lived screening service driven by newline-delimited
/// commands on stdin. The process owns a versioned catalog and a warm
/// conjunction baseline; after each delta, `screen` re-screens only pairs
/// touching changed objects and merges with the baseline (see
/// src/service/screening_service.hpp).
///
///   $ scod_serve --threshold 5 --span 3600 <<'EOF'
///   ingest catalog.csv
///   screen
///   remove 17
///   update-tle delta.tle
///   screen
///   stats
///   quit
///   EOF
///
/// Commands:
///   ingest <file>        bulk upsert from .csv or .tle/.txt (by id)
///   update-tle <file>    upsert TLE records by NORAD catalog number
///   remove <id>          drop one object
///   screen [full|auto]   screen the current snapshot (default: auto)
///   stats                cumulative service counters
///   telemetry [reset]    pipeline counter snapshot as one JSON line
///   help                 command summary
///   quit                 exit
///
/// One line of `ok ...` / `error: ...` is printed per command, so the tool
/// can be driven by a pipe and scripted against.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"
#include "service/screening_service.hpp"
#include "util/cli.hpp"

namespace {

using namespace scod;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_help() {
  std::printf(
      "commands:\n"
      "  ingest <file>        bulk upsert from .csv or .tle/.txt\n"
      "  update-tle <file>    upsert TLE records by catalog number\n"
      "  remove <id>          drop one object\n"
      "  screen [full|auto]   screen the current snapshot\n"
      "  stats                cumulative service counters\n"
      "  telemetry [reset]    pipeline counter snapshot as one JSON line\n"
      "  help                 this summary\n"
      "  quit                 exit\n");
}

void print_report(const ServiceReport& report, std::size_t top) {
  std::printf("ok epoch %llu: %zu conjunctions over %zu objects (%s",
              static_cast<unsigned long long>(report.epoch),
              report.conjunctions.size(), report.catalog_size,
              report.incremental ? "incremental" : "full");
  if (report.incremental) {
    std::printf(": dirty %zu, removed %zu, carried %zu, evicted %zu, "
                "refreshed %zu", report.dirty, report.removed, report.carried,
                report.evicted, report.refreshed);
  }
  std::printf(") in %.3f s\n", report.total_seconds);
  for (std::size_t i = 0; i < report.conjunctions.size() && i < top; ++i) {
    const IdConjunction& c = report.conjunctions[i];
    std::printf("  %6u %6u  tca=%10.2f s  pca=%8.4f km\n", c.id_a, c.id_b, c.tca,
                c.pca);
  }
  if (report.conjunctions.size() > top) {
    std::printf("  ... %zu more\n", report.conjunctions.size() - top);
  }
}

void print_stats(const ScreeningService& service) {
  const ServiceStats& s = service.stats();
  std::printf("ok epoch %llu, %zu objects\n",
              static_cast<unsigned long long>(service.store().epoch()),
              service.store().size());
  std::printf("  ingests %llu, upserts %llu, removals %llu\n",
              static_cast<unsigned long long>(s.ingests),
              static_cast<unsigned long long>(s.upserts),
              static_cast<unsigned long long>(s.removals));
  std::printf("  screens: %llu full, %llu incremental, %llu cached\n",
              static_cast<unsigned long long>(s.full_screens),
              static_cast<unsigned long long>(s.incremental_screens),
              static_cast<unsigned long long>(s.cached_screens));
  std::printf("  last screen: epoch %llu, dirty %zu, removed %zu, %.3f s "
              "(ins %.3f / cd %.3f / refine %.3f / merge %.3f)\n",
              static_cast<unsigned long long>(s.last_epoch_screened),
              s.last_dirty, s.last_removed, s.last_screen_seconds,
              s.last_timings.insertion, s.last_timings.detection,
              s.last_timings.refinement, s.last_merge_seconds);
  std::printf("  total screen time %.3f s\n", s.total_screen_seconds);
  // The warm scratch the service carries between epochs: how often grids
  // and candidate sets were reused vs rebuilt, and what is held resident.
  const ScratchArena& arena = service.context().arena();
  const ScratchArena::Stats& a = arena.stats();
  std::printf("  context arena: %.1f MiB resident; grids %llu reused / %llu "
              "rebuilt, candidates %llu reused / %llu rebuilt, %llu shrinks\n",
              static_cast<double>(arena.memory_bytes()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(a.grid_reuses),
              static_cast<unsigned long long>(a.grid_rebuilds),
              static_cast<unsigned long long>(a.candidate_reuses),
              static_cast<unsigned long long>(a.candidate_rebuilds),
              static_cast<unsigned long long>(a.vector_shrinks));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"threshold", "span", "sps", "full-fraction", "top"});
  if (!args.unknown().empty()) {
    std::fprintf(stderr, "unknown option: %s\n", args.unknown().front().c_str());
    std::fprintf(stderr,
                 "usage: scod_serve [--threshold KM] [--span S] [--sps S] "
                 "[--full-fraction F] [--top N]\n");
    return 2;
  }

  ServiceOptions options;
  options.config.threshold_km = args.get_double("threshold", 2.0);
  options.config.t_end = args.get_double("span", 7200.0);
  options.config.seconds_per_sample = args.get_double("sps", 0.0);
  options.full_rescreen_fraction = args.get_double("full-fraction", 0.25);
  const auto top = static_cast<std::size_t>(args.get_int("top", 10));

  ScreeningService service(options);
  // A daemon wants its counters populated from the first screen; the
  // per-call overhead is noise next to the screening work itself.
  obs::set_enabled(true);
  std::printf("scod_serve ready (threshold %.2f km, span %.0f s); "
              "'help' lists commands\n",
              options.config.threshold_km, options.config.span_seconds());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string command;
    if (!(ss >> command)) continue;  // blank line
    try {
      if (command == "quit" || command == "exit") {
        std::printf("ok bye\n");
        break;
      } else if (command == "help") {
        print_help();
      } else if (command == "ingest" || command == "update-tle") {
        std::string path;
        if (!(ss >> path)) {
          std::printf("error: %s needs a file path\n", command.c_str());
          continue;
        }
        const bool tle = command == "update-tle" || ends_with(path, ".tle") ||
                         ends_with(path, ".txt");
        const std::size_t count =
            tle ? service.ingest_tle(path) : service.ingest_csv(path);
        std::printf("ok ingested %zu objects, epoch %llu, %zu total\n", count,
                    static_cast<unsigned long long>(service.store().epoch()),
                    service.store().size());
      } else if (command == "remove") {
        std::uint32_t id = 0;
        if (!(ss >> id)) {
          std::printf("error: remove needs a numeric id\n");
          continue;
        }
        if (service.remove(id)) {
          std::printf("ok removed %u, epoch %llu, %zu total\n", id,
                      static_cast<unsigned long long>(service.store().epoch()),
                      service.store().size());
        } else {
          std::printf("error: no object with id %u\n", id);
        }
      } else if (command == "screen") {
        std::string mode_str;
        ss >> mode_str;
        ScreenMode mode = ScreenMode::kAuto;
        if (mode_str == "full") {
          mode = ScreenMode::kFull;
        } else if (!mode_str.empty() && mode_str != "auto") {
          std::printf("error: unknown screen mode '%s'\n", mode_str.c_str());
          continue;
        }
        print_report(service.screen(mode), top);
      } else if (command == "stats") {
        print_stats(service);
      } else if (command == "telemetry") {
        std::string arg;
        ss >> arg;
        if (!obs::compiled()) {
          std::printf("error: telemetry compiled out (SCOD_TELEMETRY=OFF)\n");
        } else if (arg == "reset") {
          obs::reset();
          std::printf("ok telemetry reset\n");
        } else if (!arg.empty()) {
          std::printf("error: unknown telemetry argument '%s'\n", arg.c_str());
        } else {
          std::printf("ok telemetry %s\n", obs::snapshot().to_json().c_str());
        }
      } else {
        std::printf("error: unknown command '%s' (try 'help')\n", command.c_str());
      }
    } catch (const std::exception& e) {
      // One bad file or delta must not take the service down.
      std::printf("error: %s\n", e.what());
    }
    std::fflush(stdout);
  }
  return 0;
}
