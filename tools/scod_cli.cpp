/// scod — command-line front end to the conjunction-screening library.
///
///   scod generate --count 4000 --seed 7 --out catalog.csv
///   scod generate --count 800 --out catalog.tle
///   scod screen   --catalog catalog.csv --variant hybrid --span 7200
///                 --threshold 2 [--propagator kepler|j2|ephemeris] [--csv out.csv]
///   scod assess   --catalog catalog.csv --span 7200 --threshold 5 --top 3
///   scod cube     --catalog catalog.csv --span 7200 --cube-size 10
///   scod info
///
/// Catalog format is chosen by extension: .csv (catalog_io) or .tle.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assessment/cdm.hpp"
#include "core/screen.hpp"
#include "obs/telemetry.hpp"
#include "population/catalog_io.hpp"
#include "population/generator.hpp"
#include "orbit/geometry.hpp"
#include "population/tle.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/ephemeris.hpp"
#include "propagation/j2_secular.hpp"
#include "propagation/tle_secular.hpp"
#include "propagation/two_body.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/sysinfo.hpp"
#include "util/table.hpp"
#include "volumetric/cube.hpp"

namespace {

using namespace scod;

int usage() {
  std::fprintf(stderr,
               "usage: scod <command> [options]\n"
               "\n"
               "commands:\n"
               "  generate  --count N [--seed S] --out FILE(.csv|.tle)\n"
               "  screen    --catalog FILE [--variant grid|hybrid|legacy|sieve]\n"
               "            [--threshold KM] [--span S] [--sps S]\n"
               "            [--propagator kepler|j2|ephemeris|tle] [--csv OUT]\n"
               "            [--telemetry]\n"
               "  assess    --catalog FILE [--threshold KM] [--span S]\n"
               "            [--sigma KM] [--radius KM] [--top N]\n"
               "  cube      --catalog FILE [--span S] [--cube-size KM]\n"
               "            [--samples N] [--radius KM]\n"
               "  info\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_tle_path(const std::string& path) {
  return ends_with(path, ".tle") || ends_with(path, ".txt");
}

std::vector<Satellite> load_catalog(const std::string& path) {
  if (is_tle_path(path)) {
    const auto records = load_tle_file(path);
    std::vector<Satellite> sats;
    sats.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      sats.push_back(to_satellite(records[i], static_cast<std::uint32_t>(i)));
    }
    return sats;
  }
  return load_catalog_csv(path);
}

int cmd_generate(int argc, const char* const* argv) {
  const CliArgs args(argc, argv, {"count", "seed", "out"});
  const auto count = static_cast<std::size_t>(args.get_int("count", 1000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }

  const auto sats = generate_population({count, seed});
  if (ends_with(out, ".tle") || ends_with(out, ".txt")) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "generate: cannot open %s\n", out.c_str());
      return 1;
    }
    for (const Satellite& sat : sats) {
      TleRecord rec;
      rec.name = "SYNTH-" + std::to_string(sat.id);
      rec.catalog_number = 70000 + sat.id;
      rec.intl_designator = "26001A";
      rec.epoch_year = 2026;
      rec.epoch_day = 187.5;
      rec.elements = sat.elements;
      rec.mean_motion_rev_day = 86400.0 / orbital_period(sat.elements);
      const auto [l1, l2] = format_tle(rec);
      file << rec.name << '\n' << l1 << '\n' << l2 << '\n';
    }
  } else {
    save_catalog_csv(out, sats);
  }
  std::printf("wrote %zu objects to %s\n", sats.size(), out.c_str());
  return 0;
}

int cmd_screen(int argc, const char* const* argv) {
  const CliArgs args(argc, argv, {"catalog", "variant", "threshold", "span", "sps",
                                  "propagator", "csv", "telemetry"});
  const std::string catalog_path = args.get_string("catalog", "");
  if (catalog_path.empty()) {
    std::fprintf(stderr, "screen: --catalog is required\n");
    return 2;
  }
  const bool telemetry = args.get_bool("telemetry", false);
  if (telemetry && !obs::compiled()) {
    std::fprintf(stderr,
                 "screen: --telemetry requested but this build has "
                 "SCOD_TELEMETRY=OFF\n");
    return 2;
  }
  if (telemetry) {
    obs::reset();
    obs::set_enabled(true);
  }
  const auto sats = load_catalog(catalog_path);

  ScreeningConfig config;
  config.threshold_km = args.get_double("threshold", 2.0);
  config.t_end = args.get_double("span", 7200.0);
  config.seconds_per_sample = args.get_double("sps", 0.0);

  const std::string variant_str = args.get_string("variant", "grid");
  const std::string prop_str = args.get_string("propagator", "kepler");

  const std::optional<Variant> variant = parse_variant(variant_str);
  if (!variant.has_value()) {
    std::fprintf(stderr, "screen: unknown variant '%s'\n", variant_str.c_str());
    return 2;
  }
  // One dispatch for all four variants: the factory hides which concrete
  // screener runs, and every variant accepts an external propagator.
  const std::unique_ptr<Screener> screener = make_screener(*variant);

  ScreeningReport report;
  const ContourKeplerSolver solver;
  if (prop_str == "kepler") {
    // The default path builds the two-body propagator inside the screener,
    // where its setup is timed as the paper's step-1 allocation.
    report = screener->screen(sats, config);
  } else if (prop_str == "j2") {
    const J2SecularPropagator prop(sats, solver);
    report = screener->screen(prop, config);
  } else if (prop_str == "ephemeris") {
    const auto prop = EphemerisPropagator::integrate(sats, config.t_begin,
                                                     config.t_end, ForceModel{});
    report = screener->screen(prop, config);
  } else if (prop_str == "tle") {
    if (!is_tle_path(catalog_path)) {
      std::fprintf(stderr, "screen: --propagator tle needs a .tle catalog\n");
      return 2;
    }
    const auto records = load_tle_file(catalog_path);
    const TleSecularPropagator prop(records, solver);
    report = screener->screen(prop, config);
  } else {
    std::fprintf(stderr, "screen: unknown propagator '%s'\n", prop_str.c_str());
    return 2;
  }

  std::printf("%s screening of %zu objects over %.0f s (d = %.2f km):\n",
              variant_str.c_str(), sats.size(), config.span_seconds(),
              config.threshold_km);
  std::printf("  %zu conjunctions, %zu pairs, %.2f s "
              "(alloc %.2f / ins %.2f / cd %.2f / filter %.2f / refine %.2f)\n",
              report.conjunctions.size(), report.colliding_pairs().size(),
              report.timings.total(), report.timings.allocation,
              report.timings.insertion, report.timings.detection,
              report.timings.filtering, report.timings.refinement);
  for (const Conjunction& c : report.conjunctions) {
    std::printf("  %6u %6u  tca=%10.2f s  pca=%8.4f km\n", c.sat_a, c.sat_b, c.tca,
                c.pca);
  }

  if (telemetry) {
    obs::set_enabled(false);
    std::printf("telemetry: %s\n", obs::snapshot().to_json().c_str());
  }

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"sat_a", "sat_b", "tca_s", "pca_km"});
    for (const Conjunction& c : report.conjunctions) {
      csv.add_row({std::to_string(c.sat_a), std::to_string(c.sat_b),
                   TextTable::num(c.tca, 4), TextTable::num(c.pca, 6)});
    }
    std::printf("written to %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_assess(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"catalog", "threshold", "span", "sigma", "radius", "top"});
  const std::string catalog_path = args.get_string("catalog", "");
  if (catalog_path.empty()) {
    std::fprintf(stderr, "assess: --catalog is required\n");
    return 2;
  }
  const auto sats = load_catalog(catalog_path);

  ScreeningConfig config;
  config.threshold_km = args.get_double("threshold", 5.0);
  config.t_end = args.get_double("span", 7200.0);

  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(sats, solver);
  const ScreeningReport report = GridScreener().screen(propagator, config);

  std::vector<CdmObject> objects(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    objects[i].designator = "OBJECT-" + std::to_string(sats[i].id);
    objects[i].position_sigma_km = args.get_double("sigma", 0.5);
    objects[i].hard_body_radius_km = args.get_double("radius", 0.005);
  }
  auto assessments = assess_conjunctions(propagator, report, objects);
  std::sort(assessments.begin(), assessments.end(),
            [](const ConjunctionAssessment& x, const ConjunctionAssessment& y) {
              return x.collision_probability > y.collision_probability;
            });

  const auto top = static_cast<std::size_t>(args.get_int("top", 5));
  std::printf("%zu conjunctions; emitting CDMs for the top %zu by Pc\n\n",
              assessments.size(), std::min(top, assessments.size()));
  for (std::size_t i = 0; i < std::min(top, assessments.size()); ++i) {
    write_cdm(std::cout, assessments[i], objects[assessments[i].conjunction.sat_a],
              objects[assessments[i].conjunction.sat_b]);
    std::printf("\n");
  }
  return 0;
}

int cmd_cube(int argc, const char* const* argv) {
  const CliArgs args(argc, argv, {"catalog", "span", "cube-size", "samples", "radius"});
  const std::string catalog_path = args.get_string("catalog", "");
  if (catalog_path.empty()) {
    std::fprintf(stderr, "cube: --catalog is required\n");
    return 2;
  }
  const auto sats = load_catalog(catalog_path);
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(sats, solver);

  CubeConfig config;
  config.cube_size_km = args.get_double("cube-size", 10.0);
  config.samples = static_cast<std::size_t>(args.get_int("samples", 2000));
  config.object_radius_km = args.get_double("radius", 0.005);
  const double span = args.get_double("span", 7200.0);

  const CubeResult result = cube_collision_estimate(propagator, 0.0, span, config);
  std::printf("Cube method (Liou et al. 2003): %zu samples, %.0f km cubes\n",
              result.samples, config.cube_size_km);
  std::printf("  expected collisions over %.0f s: %.3e\n", span,
              result.expected_collisions);
  std::printf("  mean co-resident pairs per sample: %.3f\n",
              result.mean_pairs_per_sample);
  std::printf("  pairs with any co-residency: %zu\n", result.pair_rates.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, result.pair_rates.size()); ++i) {
    const CubePairRate& r = result.pair_rates[i];
    std::printf("    %6u %6u: %zu co-residencies, E[collisions] = %.3e\n", r.sat_a,
                r.sat_b, r.co_residencies, r.expected_collisions);
  }
  return 0;
}

int cmd_info() {
  const SystemInfo info = query_system_info();
  std::printf("scod 1.0.0\n");
  std::printf("host: %s, %s (%zu logical CPUs), %.1f GiB RAM\n", info.os.c_str(),
              info.cpu_name.c_str(), info.logical_cpus, info.memory_gib);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "screen") return cmd_screen(argc - 1, argv + 1);
    if (command == "assess") return cmd_assess(argc - 1, argv + 1);
    if (command == "cube") return cmd_cube(argc - 1, argv + 1);
    if (command == "info") return cmd_info();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scod %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "scod: unknown command '%s'\n", command.c_str());
  return usage();
}
