/// Scalar vs batched propagation throughput: the grid pipeline's INS phase
/// propagates every satellite at every sample, and PR "batched SoA kernel"
/// replaced its one-virtual-call-per-tuple loop with
/// TwoBodyPropagator::positions_at over the SoA mirror. This harness
/// measures positions/s of both paths at several population sizes, checks
/// they agree to 1e-12 km (they are bit-identical by construction), and
/// runs the grid screener end to end with the batch kernel on and off.
///
///   ./bench_micro_batch --sizes 10000,100000,1000000 --e2e-n 4000
///       --json ../BENCH_pr1.json   (one line)
///
/// Committed snapshots follow the BENCH_<tag>.json convention (repo root).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/grid_screener.hpp"
#include "orbit/elements.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace {

using namespace scod;
using namespace scod::bench;

/// LEO-band population synthesized directly from the RNG — the KDE-based
/// generator is overkill (and slow) for a million-element throughput probe.
std::vector<Satellite> synthetic_population(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Satellite> sats(n);
  for (std::size_t i = 0; i < n; ++i) {
    KeplerElements e;
    e.semi_major_axis = rng.uniform(6800.0, 8200.0);
    e.eccentricity = rng.uniform(0.0, 0.05);
    e.inclination = rng.uniform(0.0, kPi);
    e.raan = rng.uniform(0.0, kTwoPi);
    e.arg_perigee = rng.uniform(0.0, kTwoPi);
    e.mean_anomaly = rng.uniform(0.0, kTwoPi);
    sats[i] = {static_cast<std::uint32_t>(i), e};
  }
  return sats;
}

struct Throughput {
  double scalar_pos_per_s = 0.0;
  double batch_pos_per_s = 0.0;
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  double max_diff_km = 0.0;
};

Throughput measure(const TwoBodyPropagator& prop, std::int64_t repeats) {
  const std::size_t n = prop.size();
  // Enough samples that even the 10k case runs for a measurable while.
  const std::size_t samples = std::max<std::size_t>(1'000'000 / n, 4);

  std::vector<Vec3> scalar_out(n);
  std::vector<Vec3> batch_out(n);

  Throughput result;
  const auto sample_time = [](std::size_t s) {
    return 7.3 * static_cast<double>(s);  // irrational-ish stride, ~anomaly sweep
  };

  result.scalar_seconds = median_seconds(
      [&] {
        for (std::size_t s = 0; s < samples; ++s) {
          const double t = sample_time(s);
          for (std::size_t i = 0; i < n; ++i) scalar_out[i] = prop.position(i, t);
        }
      },
      repeats);
  result.batch_seconds = median_seconds(
      [&] {
        for (std::size_t s = 0; s < samples; ++s) {
          prop.positions_at(sample_time(s), 0, n, batch_out.data());
        }
      },
      repeats);

  // Equivalence check at the last sample (both buffers hold it now).
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 d{scalar_out[i].x - batch_out[i].x, scalar_out[i].y - batch_out[i].y,
                 scalar_out[i].z - batch_out[i].z};
    result.max_diff_km = std::max(result.max_diff_km, d.norm());
  }

  const double positions = static_cast<double>(n) * static_cast<double>(samples);
  result.scalar_pos_per_s = positions / result.scalar_seconds;
  result.batch_pos_per_s = positions / result.batch_seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"sizes", "e2e-n", "span", "threshold", "repeats", "seed",
                      "json", "threads"});
  if (!args.unknown().empty()) {
    std::fprintf(stderr, "unknown option: %s\n", args.unknown().front().c_str());
    std::fprintf(stderr,
                 "known: --sizes a,b,c --e2e-n N --span S --threshold D "
                 "--repeats R --seed S --json PATH\n");
    return 2;
  }
  const std::vector<std::int64_t> sizes =
      args.get_int_list("sizes", {10'000, 100'000, 1'000'000});
  const auto e2e_n = static_cast<std::size_t>(args.get_int("e2e-n", 4000));
  const double span = args.get_double("span", 3600.0);
  const double threshold = args.get_double("threshold", 2.0);
  const std::int64_t repeats = args.get_int("repeats", 3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  JsonBenchWriter json(args.get_string("json", ""));

  print_banner("Batched SoA propagation kernel: scalar vs batched",
               "INS phase inner loop (paper Section V-B/V-C)");

  const ContourKeplerSolver solver;
  bool all_equivalent = true;

  std::printf("%10s %16s %16s %9s %14s\n", "n", "scalar [pos/s]", "batch [pos/s]",
              "speedup", "max diff [km]");
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::size_t>(n64);
    const auto sats = synthetic_population(n, seed);
    const TwoBodyPropagator prop(sats, solver);
    const Throughput t = measure(prop, repeats);

    const double speedup = t.batch_pos_per_s / t.scalar_pos_per_s;
    std::printf("%10zu %16.3e %16.3e %8.2fx %14.3e\n", n, t.scalar_pos_per_s,
                t.batch_pos_per_s, speedup, t.max_diff_km);
    std::fflush(stdout);
    if (t.max_diff_km > 1e-12) all_equivalent = false;

    json.record("micro_positions", n, "scalar", t.scalar_seconds, 0);
    json.record("micro_positions", n, "batch", t.batch_seconds, 0);
  }

  // End to end: the grid screener with the batched insertion kernel on
  // (default) and off (per-tuple virtual dispatch). Same conjunctions —
  // the kernel is bit-identical — different insertion-phase time.
  std::printf("\nend-to-end grid screening, n=%zu, span=%.0f s:\n", e2e_n, span);
  const auto sats = generate_population({e2e_n, seed});
  ScreeningConfig cfg;
  cfg.threshold_km = threshold;
  cfg.t_begin = 0.0;
  cfg.t_end = span;

  std::size_t conj_batch = 0, conj_scalar = 0;
  double batch_ins = 0.0, scalar_ins = 0.0;
  const double batch_secs = median_seconds(
      [&] {
        // batch_propagation defaults to true
        const ScreeningReport report =
            make_screener(Variant::kGrid)->screen(sats, cfg);
        conj_batch = report.conjunctions.size();
        batch_ins = report.timings.insertion;
      },
      repeats);
  const double scalar_secs = median_seconds(
      [&] {
        GridPipelineOptions options = GridScreener::default_options();
        options.batch_propagation = false;
        const ScreeningReport report =
            make_screener(Variant::kGrid, nullptr, pipeline_options(options))
                ->screen(sats, cfg);
        conj_scalar = report.conjunctions.size();
        scalar_ins = report.timings.insertion;
      },
      repeats);

  std::printf("  batch : %8.3f s total, %8.3f s insertion (%zu conjunctions)\n",
              batch_secs, batch_ins, conj_batch);
  std::printf("  scalar: %8.3f s total, %8.3f s insertion (%zu conjunctions)\n",
              scalar_secs, scalar_ins, conj_scalar);
  std::printf("  end-to-end speedup %.2fx, insertion speedup %.2fx\n",
              scalar_secs / batch_secs, scalar_ins / batch_ins);
  json.record("grid_e2e", e2e_n, "batch", batch_secs, conj_batch);
  json.record("grid_e2e", e2e_n, "scalar", scalar_secs, conj_scalar);

  if (conj_batch != conj_scalar) {
    std::fprintf(stderr, "FAIL: conjunction count differs between kernels\n");
    return 1;
  }
  if (!all_equivalent) {
    std::fprintf(stderr, "FAIL: batch/scalar positions differ by more than 1e-12 km\n");
    return 1;
  }
  std::printf("\nbatch/scalar positions agree to 1e-12 km on every size\n");
  return 0;
}
