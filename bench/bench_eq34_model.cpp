/// Eqs. (3)-(4): the Extra-P-style empirical models of the candidate count
/// that size the conjunction hash map. We sweep (n, s_ps, d), measure the
/// actual number of candidates the grid front-end produces, and fit
/// c' = k * n^alpha * s^beta * d^gamma with the power-law fitter over
/// Extra-P's rational exponent grid — the same procedure (and functional
/// form) behind the paper's published models.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "model/powerlaw_fit.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  opt.span = 1800.0;  // shorter span: the sweep runs 27+ screenings
  print_banner("Eqs. (3)-(4): conjunction-count model fit",
               "paper Section V-B, Eqs. 3-4");

  const std::vector<double> ns{500, 1000, 2000};
  const std::vector<double> spss{2.0, 4.0, 8.0};
  const std::vector<double> ds{1.0, 2.0, 4.0};

  auto sweep = [&](Variant variant, double sps_scale) {
    std::vector<FitObservation> observations;
    for (double n : ns) {
      const auto sats = generate_population(
          {static_cast<std::size_t>(n), opt.seed});
      for (double sps : spss) {
        for (double d : ds) {
          ScreeningConfig cfg = make_config(opt);
          cfg.threshold_km = d;
          cfg.seconds_per_sample = sps * sps_scale;
          const ScreeningReport report = screen(sats, cfg, variant);
          observations.push_back(
              {{n, sps * sps_scale, d},
               static_cast<double>(report.stats.candidates)});
          std::printf("  %s n=%5.0f s=%4.0f d=%3.0f -> %zu candidates\n",
                      variant_name(variant).c_str(), n, sps * sps_scale, d,
                      report.stats.candidates);
          std::fflush(stdout);
        }
      }
    }
    return observations;
  };

  std::printf("sweep: n in {500,1000,2000}, d in {1,2,4} km, span %.0f s\n\n",
              opt.span);

  const auto grid_obs = sweep(Variant::kGrid, 1.0);
  const PowerLawFit grid_fit = fit_power_law(grid_obs, 3);

  const auto hybrid_obs = sweep(Variant::kHybrid, 2.0);
  const PowerLawFit hybrid_fit = fit_power_law(hybrid_obs, 3);

  std::printf("\n");
  TextTable table({"model", "coefficient", "n exponent", "s_ps exponent",
                   "d exponent", "R^2 (log)"});
  auto add = [&](const std::string& name, const PowerLawFit& fit) {
    char coeff[32];
    std::snprintf(coeff, sizeof(coeff), "%.3g", fit.coefficient);
    table.add_row({name, coeff, TextTable::num(fit.exponents[0], 3),
                   TextTable::num(fit.exponents[1], 3),
                   TextTable::num(fit.exponents[2], 3),
                   TextTable::num(fit.r_squared, 4)});
  };
  add("grid (fit)", grid_fit);
  add("hybrid (fit)", hybrid_fit);
  table.print(std::cout);

  std::printf(
      "\npaper models (for its population/testbed):\n"
      "  grid   Eq.(3): c' = 2.32e-9 * n^2 * s^(4/3) * t * d^(7/4)\n"
      "  hybrid Eq.(4): c' = 2.14e-9 * n^2 * s^(5/3) * t * d^(1)\n"
      "The n exponent ~2 is the structural prediction (within one radial\n"
      "shell candidate pairs grow quadratically, Section III-B); the s and d\n"
      "exponents depend on the population's density profile, so coefficients\n"
      "differ from the paper's catalog-derived values.\n");
  return 0;
}
