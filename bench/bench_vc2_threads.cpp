/// Section V-C2: speedup vs CPU thread count for the grid and hybrid
/// variants. The paper sweeps 1..32 threads on the Ryzen 5950X and reports
/// a maximum speedup of 19x (grid) and 14x (hybrid), i.e. the grid variant
/// benefits more from threads.
///
/// The sweep defaults to powers of two up to the host's hardware
/// concurrency (override with --threads a,b,c); on a single-core host the
/// sweep degenerates to {1, 2} and the speedups are ~1 by construction.

#include <cstdio>
#include <iostream>
#include <thread>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  const CliArgs cli(argc, argv, {"threads"});
  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Section V-C2: CPU thread scaling", "paper Section V-C2");

  std::vector<std::int64_t> threads = cli.get_int_list("threads", {});
  if (threads.empty()) {
    const auto hw = std::max(1u, std::thread::hardware_concurrency());
    for (std::int64_t t = 1; t <= static_cast<std::int64_t>(hw); t *= 2) {
      threads.push_back(t);
    }
    if (threads.back() != static_cast<std::int64_t>(hw)) threads.push_back(hw);
    if (threads.size() == 1) threads.push_back(2);  // still exercise the pool
  }

  const auto n = static_cast<std::size_t>(opt.sizes.back());
  const auto sats = generate_population({n, opt.seed});
  std::printf("population: %zu satellites, span %.0f s, hardware threads: %u\n\n",
              n, opt.span, std::thread::hardware_concurrency());

  TextTable table({"threads", "grid [s]", "grid speedup", "grid eff. %",
                   "hybrid [s]", "hybrid speedup", "hybrid eff. %"});

  double grid_base = 0.0, hybrid_base = 0.0;
  for (std::int64_t t : threads) {
    ThreadPool pool(static_cast<std::size_t>(t));

    ScreeningConfig grid_cfg = make_config(opt);
    grid_cfg.seconds_per_sample = opt.sps_grid;
    grid_cfg.pool = &pool;
    const double grid_secs = median_seconds(
        [&] { screen(sats, grid_cfg, Variant::kGrid); }, opt.repeats);

    ScreeningConfig hybrid_cfg = make_config(opt);
    hybrid_cfg.seconds_per_sample = opt.sps_hybrid;
    hybrid_cfg.pool = &pool;
    const double hybrid_secs = median_seconds(
        [&] { screen(sats, hybrid_cfg, Variant::kHybrid); }, opt.repeats);

    if (t == threads.front()) {
      grid_base = grid_secs;
      hybrid_base = hybrid_secs;
    }
    const double gs = grid_base / grid_secs;
    const double hs = hybrid_base / hybrid_secs;
    table.add_row({TextTable::integer(t), TextTable::num(grid_secs, 3),
                   TextTable::num(gs, 2),
                   TextTable::num(100.0 * gs / static_cast<double>(t), 1),
                   TextTable::num(hybrid_secs, 3), TextTable::num(hs, 2),
                   TextTable::num(100.0 * hs / static_cast<double>(t), 1)});
    std::printf("  %2lld threads: grid %.2fs (%.2fx), hybrid %.2fs (%.2fx)\n",
                static_cast<long long>(t), grid_secs, gs, hybrid_secs, hs);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\npaper reference (32 threads on a 5950X): grid 19x (59%% efficiency),\n"
      "hybrid 14x (44%%) — the grid variant scales better because its time is\n"
      "dominated by the embarrassingly parallel CD stage.\n");
  return 0;
}
