/// Eq. (1) ablation: the worst-case cell-size guarantee of Fig. 4.
///
/// g_c = d + 7.8 * s_ps guarantees that no sub-threshold approach is
/// skipped between samples. This harness seeds a population with
/// engineered conjunctions at known times and runs the grid variant with
/// the cell size scaled by factors <= 1: at factor 1.0 (Eq. 1) every
/// engineered encounter is found; as the factor shrinks the variant starts
/// to skip encounters exactly as the Fig. 4 analysis predicts — and the
/// runtime falls, which is the temptation Eq. (1) exists to forbid.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "core/grid_screener.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "orbit/anomaly.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "spatial/cell.hpp"
#include "util/rng.hpp"

namespace {

using namespace scod;

/// Near-circular satellite passing within ~|offset| km of `target`'s
/// position at t_star, in a different plane (same construction as the test
/// suite's interceptor helper).
Satellite interceptor(const KeplerElements& target, double t_star, double offset,
                      Rng& rng, std::uint32_t id) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> one{{0, target}};
  const TwoBodyPropagator prop(one, solver);
  const Vec3 p = prop.position(0, t_star);
  const Vec3 p_hat = p.normalized();
  KeplerElements el;
  for (;;) {
    const Vec3 u{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 normal = p_hat.cross(u).normalized();
    if (normal.norm() < 0.5) continue;
    el.semi_major_axis = p.norm() + offset;
    el.eccentricity = 1e-6;
    el.inclination = std::acos(std::clamp(normal.z, -1.0, 1.0));
    el.raan = wrap_two_pi(std::atan2(normal.x, -normal.y));
    el.arg_perigee = 0.0;
    if (plane_angle(el, target) < 0.1) continue;
    const Mat3 rot = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
    const Vec3 in_plane = rot.transposed() * p_hat;
    const double f = wrap_two_pi(std::atan2(in_plane.y, in_plane.x));
    el.mean_anomaly =
        wrap_two_pi(true_to_mean(f, el.eccentricity) - mean_motion(el) * t_star);
    break;
  }
  return {id, el};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Eq. (1) ablation: cell-size no-skip guarantee",
               "paper Section III-A, Eq. 1 and Fig. 4");

  // Background population plus 40 engineered encounters at known times.
  const std::size_t kBackground = 500;
  const std::size_t kEngineered = 40;
  auto sats = generate_population({kBackground, opt.seed});
  Rng rng(opt.seed ^ 0x5117);
  std::vector<double> planted_times;
  for (std::uint32_t k = 0; k < kEngineered; ++k) {
    // Targets in LEO only, so the interceptor geometry stays well-behaved.
    std::size_t target;
    do {
      target = rng.uniform_index(kBackground);
    } while (sats[target].elements.semi_major_axis > 8000.0);
    const double t_star = rng.uniform(0.1 * opt.span, 0.9 * opt.span);
    planted_times.push_back(t_star);
    sats.push_back(interceptor(sats[target].elements, t_star,
                               rng.uniform(-1.0, 1.0), rng,
                               static_cast<std::uint32_t>(kBackground + k)));
  }

  std::printf("population: %zu background + %zu engineered encounters\n",
              kBackground, kEngineered);
  const double eq1_cell = grid_cell_size(opt.threshold, opt.sps_grid);
  std::printf("Eq. (1) cell size at d=%.1f km, s_ps=%.0f s: %.1f km\n\n",
              opt.threshold, opt.sps_grid, eq1_cell);

  TextTable table({"cell factor", "cell [km]", "time [s]", "candidates",
                   "planted found", "planted missed"});

  for (double factor : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    GridPipelineOptions options = GridScreener::default_options();
    options.seconds_per_sample = opt.sps_grid;
    options.cell_size_override = factor * eq1_cell;

    ScreeningConfig cfg = make_config(opt);
    ScreeningReport report;
    const double secs = median_seconds(
        [&] {
          report = make_screener(Variant::kGrid, nullptr, pipeline_options(options))
                       ->screen(sats, cfg);
        },
        opt.repeats);

    std::size_t found = 0;
    for (std::size_t k = 0; k < kEngineered; ++k) {
      const auto id = static_cast<std::uint32_t>(kBackground + k);
      for (const Conjunction& c : report.conjunctions) {
        if ((c.sat_a == id || c.sat_b == id) &&
            std::abs(c.tca - planted_times[k]) < 30.0) {
          ++found;
          break;
        }
      }
    }
    table.add_row({TextTable::num(factor, 2),
                   TextTable::num(factor * eq1_cell, 1), TextTable::num(secs, 3),
                   TextTable::integer(static_cast<long long>(report.stats.candidates)),
                   TextTable::integer(static_cast<long long>(found)),
                   TextTable::integer(static_cast<long long>(kEngineered - found))});
    std::printf("  factor %.2f: %zu/%zu planted encounters found\n", factor, found,
                kEngineered);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nreading: at factor 1.00 (Eq. 1) every planted encounter is found;\n"
      "smaller cells are faster but start skipping the Fig. 4 worst case.\n");
  return 0;
}
