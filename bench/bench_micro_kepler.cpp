/// Micro-benchmarks of the Kepler-equation solvers: the Contour
/// ("Goat Herd") solver the paper adapts vs the Newton baseline and the
/// bisection reference, across eccentricity regimes, plus full position
/// propagation throughput (the INS phase's inner loop).

#include <benchmark/benchmark.h>

#include <vector>

#include "population/generator.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/ephemeris.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace {

using namespace scod;

std::vector<double> mean_anomalies(std::size_t n) {
  Rng rng(5);
  std::vector<double> ms(n);
  for (auto& m : ms) m = rng.uniform(0.0, kTwoPi);
  return ms;
}

template <typename Solver>
void solver_bench(benchmark::State& state, const Solver& solver, double e) {
  const auto ms = mean_anomalies(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.eccentric_anomaly(ms[i], e));
    i = (i + 1) & 4095;
  }
}

void BM_NewtonSolver(benchmark::State& state) {
  solver_bench(state, NewtonKeplerSolver{},
               static_cast<double>(state.range(0)) / 1000.0);
}
BENCHMARK(BM_NewtonSolver)->Arg(2)->Arg(100)->Arg(700);

void BM_ContourSolver(benchmark::State& state) {
  solver_bench(state, ContourKeplerSolver{},
               static_cast<double>(state.range(0)) / 1000.0);
}
BENCHMARK(BM_ContourSolver)->Arg(2)->Arg(100)->Arg(700);

void BM_ContourSolverNodes(benchmark::State& state) {
  // Cost vs quadrature node count (accuracy/speed dial of the method).
  solver_bench(state, ContourKeplerSolver(static_cast<int>(state.range(0))), 0.1);
}
BENCHMARK(BM_ContourSolverNodes)->Arg(8)->Arg(16)->Arg(32);

void BM_BisectionSolver(benchmark::State& state) {
  solver_bench(state, BisectionKeplerSolver{}, 0.1);
}
BENCHMARK(BM_BisectionSolver);

void BM_TwoBodyPosition(benchmark::State& state) {
  // The INS hot loop: one position evaluation per (satellite, time) tuple.
  const auto sats = generate_population({1000, 9});
  const ContourKeplerSolver solver;
  const TwoBodyPropagator prop(sats, solver);
  Rng rng(3);
  std::size_t i = 0;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.position(i, t));
    i = (i + 1) % sats.size();
    t += 0.37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoBodyPosition);

void BM_TwoBodyState(benchmark::State& state) {
  const auto sats = generate_population({1000, 9});
  const ContourKeplerSolver solver;
  const TwoBodyPropagator prop(sats, solver);
  std::size_t i = 0;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.state(i, t));
    i = (i + 1) % sats.size();
    t += 0.37;
  }
}
BENCHMARK(BM_TwoBodyState);

void BM_EphemerisPosition(benchmark::State& state) {
  // The interpolated-ephemeris alternative to BM_TwoBodyPosition: a table
  // lookup plus a cubic Hermite instead of a Kepler solve.
  const auto sats = generate_population({1000, 9});
  const ContourKeplerSolver solver;
  const TwoBodyPropagator source(sats, solver);
  const auto ephemeris = EphemerisPropagator::sample(source, 0.0, 3600.0, 30.0);
  std::size_t i = 0;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ephemeris.position(i, t));
    i = (i + 1) % sats.size();
    t = t < 3590.0 ? t + 0.37 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EphemerisPosition);

void BM_EphemerisBuild(benchmark::State& state) {
  // One-time cost amortized by the lookups above: sampling 1000 objects
  // over an hour at 30 s knots.
  const auto sats = generate_population({1000, 9});
  const ContourKeplerSolver solver;
  const TwoBodyPropagator source(sats, solver);
  for (auto _ : state) {
    const auto ephemeris = EphemerisPropagator::sample(source, 0.0, 3600.0, 30.0);
    benchmark::DoNotOptimize(ephemeris.knot_count());
  }
}
BENCHMARK(BM_EphemerisBuild);

}  // namespace
