/// Micro-benchmarks of the PCA/TCA refinement: the Brent minimizer against
/// the golden-section fallback, and a full refine_candidate() on a
/// realistic two-satellite encounter (the step-4 hot loop).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "pca/brent.hpp"
#include "pca/refine.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"

namespace {

using namespace scod;

void BM_BrentQuadratic(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = brent_minimize(
        [](double x) { return (x - 3.3) * (x - 3.3) + 1.0; }, 0.0, 10.0, 1e-8);
    benchmark::DoNotOptimize(r.x);
  }
}
BENCHMARK(BM_BrentQuadratic);

void BM_GoldenQuadratic(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = golden_section_minimize(
        [](double x) { return (x - 3.3) * (x - 3.3) + 1.0; }, 0.0, 10.0, 1e-8);
    benchmark::DoNotOptimize(r.x);
  }
}
BENCHMARK(BM_GoldenQuadratic);

void BM_RefineCandidate(benchmark::State& state) {
  // Two near-intersecting orbits; refine around the encounter sample, as
  // the grid variant does for every candidate.
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{
      {0, {7000.0, 0.0001, 0.0, 0.0, 0.0, 0.0}},
      {1, {7000.0, 0.0001, kPi / 2.0, 0.0, 0.0, 0.01}},
  };
  const TwoBodyPropagator prop(sats, solver);

  // Locate the encounter once.
  double best_t = 0.0, best_d = 1e300;
  for (double t = 0.0; t < 6000.0; t += 1.0) {
    const double d = prop.distance(0, 1, t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }

  for (auto _ : state) {
    const auto enc = refine_candidate(prop, 0, 1, best_t + 2.0, 20.0, 0.0, 6000.0);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefineCandidate);

void BM_PairDistance(benchmark::State& state) {
  // One objective evaluation of the Brent search.
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> sats{
      {0, {7000.0, 0.0001, 0.0, 0.0, 0.0, 0.0}},
      {1, {7050.0, 0.01, 1.0, 0.5, 0.2, 0.7}},
  };
  const TwoBodyPropagator prop(sats, solver);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.distance(0, 1, t));
    t += 0.13;
  }
}
BENCHMARK(BM_PairDistance);

}  // namespace
