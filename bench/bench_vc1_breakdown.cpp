/// Section V-C1: relative time consumption of the pipeline phases.
///
/// The paper reports, e.g., the hybrid GPU variant spending 68% in
/// conjunction detection (CD), 21% in insertion (INS) and 9% in the
/// coplanarity/orbital filters; the grid CPU variant 92% CD / 7% INS.
/// This harness runs each variant and prints the same breakdown.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Section V-C1: relative phase time consumption",
               "paper Section V-C1");

  const auto n = static_cast<std::size_t>(opt.sizes.back());
  const auto sats = generate_population({n, opt.seed});
  std::printf("population: %zu satellites, span %.0f s\n\n", n, opt.span);

  TextTable table({"variant", "ALLOC %", "INS %", "CD %", "FILTER %", "REFINE %",
                   "total [s]"});

  auto add = [&](const std::string& name, const ScreeningReport& report) {
    const PhaseTimings& t = report.timings;
    const double total = t.total();
    auto pct = [&](double v) { return TextTable::num(100.0 * v / total, 1); };
    table.add_row({name, pct(t.allocation), pct(t.insertion), pct(t.detection),
                   pct(t.filtering), pct(t.refinement), TextTable::num(total, 3)});
  };

  ScreeningConfig grid_cfg = make_config(opt);
  grid_cfg.seconds_per_sample = opt.sps_grid;
  ScreeningConfig hybrid_cfg = make_config(opt);
  hybrid_cfg.seconds_per_sample = opt.sps_hybrid;

  add("grid-cpu", screen(sats, grid_cfg, Variant::kGrid));
  add("hybrid-cpu", screen(sats, hybrid_cfg, Variant::kHybrid));

  if (opt.device) {
    Device dg;
    ScreeningConfig dev_grid = grid_cfg;
    dev_grid.device = &dg;
    add("grid-devicesim", screen(sats, dev_grid, Variant::kGrid));

    Device dh;
    ScreeningConfig dev_hybrid = hybrid_cfg;
    dev_hybrid.device = &dh;
    add("hybrid-devicesim", screen(sats, dev_hybrid, Variant::kHybrid));
  }

  if (static_cast<std::int64_t>(n) <= opt.legacy_max) {
    add("legacy", screen(sats, make_config(opt), Variant::kLegacy));
  }

  table.print(std::cout);
  std::printf(
      "\npaper reference: grid CPU 92%% CD / 7%% INS; hybrid CPU 87%% CD /\n"
      "9%% INS / 3%% coplanarity; grid GPU 72%% CD / 26%% INS; hybrid GPU\n"
      "68%% CD / 21%% INS / 9%% coplanarity. (Our FILTER column contains the\n"
      "whole filter chain including the coplanarity check; REFINE is the\n"
      "Brent PCA/TCA stage the paper folds into CD.)\n");
  return 0;
}
