/// Incremental screening service: full re-screen vs dirty-set re-screen.
///
/// After a delta touching k of n objects the service re-screens only pairs
/// with a dirty member and merges with the warm baseline (src/service).
/// This harness measures both paths at dirty fractions k/n of 0.1%, 1%
/// and 10%: the full pass pays alloc + insertion + detection + refinement
/// over all pairs every time, the incremental pass pays the same insertion
/// (the whole snapshot enters the grid) but detects and refines only the
/// dirty cross-section, so the speedup tracks how much of the full cost
/// sits past the insertion phase.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "service/screening_service.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  // Service-scale defaults (the shared harness defaults target the paper's
  // sweep benches): a dense catalog where refinement dominates, screened
  // over a 15-minute window. Explicit flags still win.
  const HarnessOptions stock;
  if (opt.sizes == stock.sizes) opt.sizes = {10000, 100000};
  if (opt.span == stock.span) opt.span = 900.0;
  if (opt.threshold == stock.threshold) opt.threshold = 10.0;
  if (opt.sps_grid == stock.sps_grid) opt.sps_grid = 16.0;

  print_banner("Incremental screening service: full vs dirty-set re-screen",
               "service extension of the paper's grid variant (Section III)");
  std::printf("threshold %.1f km, span %.0f s, sps %.0f s\n\n", opt.threshold,
              opt.span, opt.sps_grid);

  const double fractions[] = {0.001, 0.01, 0.1};
  JsonBenchWriter json(opt.json);
  TextTable table({"n", "variant", "dirty k", "time [s]", "speedup", "conj"});

  for (const std::int64_t size : opt.sizes) {
    const auto n = static_cast<std::size_t>(size);

    ServiceOptions options;
    options.config = make_config(opt);
    options.config.seconds_per_sample = opt.sps_grid;
    ScreeningService service(options);
    service.upsert(generate_population({n, opt.seed}));

    // The first screen is necessarily full: it warms the baseline and is
    // the cost an operator pays without the incremental path.
    const ServiceReport full = service.screen();
    const double full_seconds = full.total_seconds;
    table.add_row({std::to_string(n), "full", "-",
                   TextTable::num(full_seconds, 3), TextTable::num(1.0, 2),
                   std::to_string(full.conjunctions.size())});
    json.record("service_incremental", n, "full", full_seconds,
                full.conjunctions.size());

    Rng rng(opt.seed + 1);
    for (const double fraction : fractions) {
      const std::size_t k =
          std::max<std::size_t>(1, static_cast<std::size_t>(fraction * n));

      // Delta: k distinct objects maneuver (spread across the catalog so
      // the dirty set is not spatially clustered).
      const auto snap = service.store().snapshot();
      const std::size_t step = std::max<std::size_t>(1, snap->size() / k);
      std::vector<Satellite> delta;
      delta.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        Satellite sat = snap->satellites[(i * step) % snap->size()];
        sat.elements.mean_anomaly += rng.uniform(-0.05, 0.05);
        sat.elements.arg_perigee += rng.uniform(-0.02, 0.02);
        delta.push_back(sat);
      }
      service.upsert(delta);

      const ServiceReport inc = service.screen(ScreenMode::kIncremental);
      const char* label = fraction == 0.001 ? "incremental_0.1pct"
                          : fraction == 0.01 ? "incremental_1pct"
                                             : "incremental_10pct";
      table.add_row({std::to_string(n), label, std::to_string(inc.dirty),
                     TextTable::num(inc.total_seconds, 3),
                     TextTable::num(full_seconds / inc.total_seconds, 2),
                     std::to_string(inc.conjunctions.size())});
      json.record("service_incremental", n, label, inc.total_seconds,
                  inc.conjunctions.size());
    }
  }

  table.print(std::cout);
  std::printf(
      "\nspeedup is full-screen time over incremental time at the same n.\n"
      "The incremental pass still inserts the whole snapshot into the\n"
      "grid, so the ceiling is total/(alloc+ins); past ~10%% dirty the\n"
      "refinement share returns and auto mode would fall back to full.\n");
  return 0;
}
