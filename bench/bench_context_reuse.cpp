/// ScreeningContext warm-vs-cold: what reusable scratch arenas buy.
///
/// The paper times step 1 ("memory allocation") as a real phase of every
/// screening run — at 100k objects hundreds of MiB of grids and candidate
/// slots are allocated, faulted in and zeroed per call. A long-lived
/// ScreeningContext turns that into a checkout: buffers are reset, not
/// reallocated, and the report stays bit-identical (the arena contract,
/// enforced here and in test_context).
///
/// Measured per population size: cold screens (fresh screener, no context)
/// vs warm screens (one context, primed once), reporting the step-1
/// allocation seconds and the end-to-end time; then the screening service's
/// incremental re-screen with a released (cold) vs retained (warm) arena.
/// Committed snapshot: BENCH_pr5.json.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "core/context.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "service/screening_service.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  // Same workload shape as the service bench: a dense catalog screened
  // over a 15-minute window, where the allocation share is visible.
  const HarnessOptions stock;
  if (opt.sizes == stock.sizes) opt.sizes = {10000, 100000};
  if (opt.span == stock.span) opt.span = 900.0;
  if (opt.threshold == stock.threshold) opt.threshold = 10.0;
  if (opt.sps_grid == stock.sps_grid) opt.sps_grid = 16.0;
  const auto repeats = static_cast<std::int64_t>(std::max<std::int64_t>(
      opt.repeats, 3));  // medians need a few samples

  print_banner("ScreeningContext reuse: cold vs warm allocation",
               "step-1 allocation cost of Section V-C1, amortized by the arena");
  std::printf("threshold %.1f km, span %.0f s, sps %.0f s, %lld repeats\n\n",
              opt.threshold, opt.span, opt.sps_grid,
              static_cast<long long>(repeats));

  JsonBenchWriter json(opt.json);
  TextTable table({"n", "mode", "alloc [s]", "e2e [s]", "alloc cut", "conj"});
  bool identical = true;

  const ContourKeplerSolver solver;
  for (const std::int64_t size : opt.sizes) {
    const auto n = static_cast<std::size_t>(size);
    const auto sats = generate_population({n, opt.seed});
    ScreeningConfig cfg = make_config(opt);
    cfg.seconds_per_sample = opt.sps_grid;
    // Screen through a pre-built propagator so report.timings.allocation
    // is exactly the pipeline's step-1 cost (no propagator-setup share).
    const TwoBodyPropagator propagator(sats, solver);

    const auto median_alloc = [&](auto&& one_run) {
      std::vector<double> allocs, totals;
      ScreeningReport last;
      for (std::int64_t r = 0; r < repeats; ++r) {
        Stopwatch watch;
        last = one_run();
        totals.push_back(watch.seconds());
        allocs.push_back(last.timings.allocation);
      }
      std::sort(allocs.begin(), allocs.end());
      std::sort(totals.begin(), totals.end());
      struct { double alloc, total; ScreeningReport report; } out{
          allocs[allocs.size() / 2], totals[totals.size() / 2], last};
      return out;
    };

    // Cold: a fresh screener per run, every buffer allocated from scratch.
    const auto cold = median_alloc(
        [&] { return make_screener(Variant::kGrid)->screen(propagator, cfg); });

    // Warm: one long-lived context, primed by a discarded first screen.
    ScreeningContext context;
    const auto screener = make_screener(Variant::kGrid, &context);
    screener->screen(propagator, cfg);
    const auto warm =
        median_alloc([&] { return screener->screen(propagator, cfg); });

    // The speedup is only admissible if the reports are bit-identical.
    bool same = cold.report.conjunctions.size() == warm.report.conjunctions.size();
    for (std::size_t i = 0; same && i < cold.report.conjunctions.size(); ++i) {
      const Conjunction& c = cold.report.conjunctions[i];
      const Conjunction& w = warm.report.conjunctions[i];
      same = c.sat_a == w.sat_a && c.sat_b == w.sat_b && c.tca == w.tca &&
             c.pca == w.pca;
    }
    same = same &&
           cold.report.stats.candidates == warm.report.stats.candidates &&
           cold.report.stats.candidate_set_growths ==
               warm.report.stats.candidate_set_growths;
    if (!same) {
      std::fprintf(stderr, "n=%zu: warm report differs from cold — FAIL\n", n);
      identical = false;
    }

    const double cut = 1.0 - warm.alloc / cold.alloc;
    table.add_row({std::to_string(n), "cold", TextTable::num(cold.alloc, 4),
                   TextTable::num(cold.total, 3), "-",
                   std::to_string(cold.report.conjunctions.size())});
    table.add_row({std::to_string(n), "warm", TextTable::num(warm.alloc, 4),
                   TextTable::num(warm.total, 3),
                   TextTable::num(100.0 * cut, 1) + "%",
                   std::to_string(warm.report.conjunctions.size())});
    json.record("context_reuse", n, "grid-cold", cold.total,
                cold.report.conjunctions.size(), "",
                "\"allocation_seconds\": " + std::to_string(cold.alloc));
    json.record("context_reuse", n, "grid-warm", warm.total,
                warm.report.conjunctions.size(), "",
                "\"allocation_seconds\": " + std::to_string(warm.alloc) +
                    ", \"bit_identical\": " + (same ? "true" : "false"));
  }

  // Service path: the same delta re-screened with a cold arena (released
  // before the pass) vs the retained one the service naturally keeps.
  {
    const auto n = static_cast<std::size_t>(opt.sizes.front());
    ServiceOptions options;
    options.config = make_config(opt);
    options.config.seconds_per_sample = opt.sps_grid;
    ScreeningService service(options);
    service.upsert(generate_population({n, opt.seed}));
    service.screen();  // warm baseline

    Rng rng(opt.seed + 1);
    const auto dirty_delta = [&] {
      const auto snap = service.store().snapshot();
      const std::size_t k = std::max<std::size_t>(1, n / 100);
      std::vector<Satellite> delta;
      for (std::size_t i = 0; i < k; ++i) {
        Satellite sat = snap->satellites[(i * 97) % snap->size()];
        sat.elements.mean_anomaly += rng.uniform(-0.05, 0.05);
        delta.push_back(sat);
      }
      return delta;
    };

    service.upsert(dirty_delta());
    service.context().arena().release();  // force the cold "before"
    const ServiceReport before = service.screen(ScreenMode::kIncremental);

    service.upsert(dirty_delta());
    const ServiceReport after = service.screen(ScreenMode::kIncremental);

    table.add_row({std::to_string(n), "svc-incr-cold",
                   TextTable::num(before.timings.allocation, 4),
                   TextTable::num(before.total_seconds, 3), "-",
                   std::to_string(before.conjunctions.size())});
    table.add_row({std::to_string(n), "svc-incr-warm",
                   TextTable::num(after.timings.allocation, 4),
                   TextTable::num(after.total_seconds, 3),
                   TextTable::num(100.0 * (1.0 - after.timings.allocation /
                                                     before.timings.allocation),
                                  1) +
                       "%",
                   std::to_string(after.conjunctions.size())});
    json.record("context_reuse_service", n, "incremental-cold",
                before.total_seconds, before.conjunctions.size(), "",
                "\"allocation_seconds\": " +
                    std::to_string(before.timings.allocation));
    json.record("context_reuse_service", n, "incremental-warm",
                after.total_seconds, after.conjunctions.size(), "",
                "\"allocation_seconds\": " +
                    std::to_string(after.timings.allocation));
  }

  table.print(std::cout);
  std::printf(
      "\n'alloc cut' is the warm screen's step-1 allocation reduction vs\n"
      "cold at the same n; reports are bit-compared every run. Cold pays\n"
      "page faults + zeroing for every grid and candidate slot, warm pays\n"
      "only the clears.\n");
  if (!identical) return 1;
  return 0;
}
