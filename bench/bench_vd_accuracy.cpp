/// Section V-D: accuracy — number of conjunctions and colliding pairs
/// found by the legacy, grid and hybrid variants on the same population.
///
/// The paper (64,000 satellites): legacy 17,184 conjunctions, grid 17,264,
/// hybrid 17,242; the hybrid finds every legacy pair plus 30, the grid
/// misses 5 pairs and adds 35. This harness reproduces the comparison at
/// laptop scale and prints the same missed/extra pair accounting.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Section V-D: accuracy comparison", "paper Section V-D");

  const auto n = static_cast<std::size_t>(
      std::min<std::int64_t>(opt.sizes.back(), opt.legacy_max));
  const auto sats = generate_population({n, opt.seed});
  std::printf("population: %zu satellites, span %.0f s, threshold %.1f km\n\n", n,
              opt.span, opt.threshold);

  ScreeningConfig grid_cfg = make_config(opt);
  grid_cfg.seconds_per_sample = opt.sps_grid;
  ScreeningConfig hybrid_cfg = make_config(opt);
  hybrid_cfg.seconds_per_sample = opt.sps_hybrid;

  const ScreeningReport legacy = screen(sats, make_config(opt), Variant::kLegacy);
  const ScreeningReport grid = screen(sats, grid_cfg, Variant::kGrid);
  const ScreeningReport hybrid = screen(sats, hybrid_cfg, Variant::kHybrid);
  const ScreeningReport sieve = screen(sats, make_config(opt), Variant::kSieve);

  TextTable counts({"variant", "conjunctions", "colliding pairs"});
  auto add = [&](const std::string& name, const ScreeningReport& r) {
    counts.add_row({name,
                    TextTable::integer(static_cast<long long>(r.conjunctions.size())),
                    TextTable::integer(static_cast<long long>(r.colliding_pairs().size()))});
  };
  add("legacy", legacy);
  add("grid", grid);
  add("hybrid", hybrid);
  add("sieve (extension)", sieve);
  counts.print(std::cout);

  const auto legacy_pairs = legacy.colliding_pairs();
  const auto grid_pairs = grid.colliding_pairs();
  const auto hybrid_pairs = hybrid.colliding_pairs();

  const PairSetDiff lg = compare_pair_sets(legacy_pairs, grid_pairs);
  const PairSetDiff lh = compare_pair_sets(legacy_pairs, hybrid_pairs);
  const PairSetDiff ls = compare_pair_sets(legacy_pairs, sieve.colliding_pairs());

  std::printf("\npair-set comparison against legacy:\n");
  std::printf("  grid  : %zu common, misses %zu legacy pairs, finds %zu extra\n",
              lg.common, lg.only_in_first, lg.only_in_second);
  std::printf("  hybrid: %zu common, misses %zu legacy pairs, finds %zu extra\n",
              lh.common, lh.only_in_first, lh.only_in_second);
  std::printf("  sieve : %zu common, misses %zu legacy pairs, finds %zu extra\n",
              ls.common, ls.only_in_first, ls.only_in_second);
  std::printf(
      "\npaper reference (64,000 objects): legacy 17,184 / grid 17,264 /\n"
      "hybrid 17,242 conjunctions; hybrid missed 0 pairs (+30 extra), grid\n"
      "missed 5 (+35 extra), all edge cases within 50 m of the threshold.\n");

  if (!opt.csv.empty()) {
    CsvWriter csv(opt.csv, {"variant", "conjunctions", "pairs"});
    csv.add_row({"legacy", std::to_string(legacy.conjunctions.size()),
                 std::to_string(legacy_pairs.size())});
    csv.add_row({"grid", std::to_string(grid.conjunctions.size()),
                 std::to_string(grid_pairs.size())});
    csv.add_row({"hybrid", std::to_string(hybrid.conjunctions.size()),
                 std::to_string(hybrid_pairs.size())});
  }
  return 0;
}
