/// Fig. 10 (a/b/c): runtime of the five conjunction-detection variants —
/// grid CPU, hybrid CPU, grid devicesim ("GPU"), hybrid devicesim, legacy —
/// over growing satellite populations.
///
/// Size presets mirror the paper's three panels, scaled to laptop budgets:
///   --sizes small   -> 1000,2000,4000        (Fig. 10a regime, with legacy)
///   --sizes medium  -> 8000,16000            (Fig. 10b regime)
///   --sizes large   -> 32000,64000           (Fig. 10c regime, no legacy)
/// or any explicit list, e.g. --sizes 2000,4000,8000.
///
/// The devicesim backend reports the paper's Section V-C observation that
/// allocation + host/device transfers are a small fraction of total time.

#include <cstdio>
#include <string>

#include "bench/common.hpp"

namespace {

using namespace scod;
using namespace scod::bench;

struct Row {
  std::size_t n;
  std::string variant;
  double seconds;
  std::size_t conjunctions;
  std::size_t candidates;
  double sps_used;
  std::string telemetry;  ///< snapshot JSON, cumulative over repeats, or empty
};

}  // namespace

int main(int argc, char** argv) {
  // Expand the size presets before the generic parser sees --sizes.
  std::vector<std::string> rewritten(argv, argv + argc);
  for (std::size_t i = 1; i < rewritten.size(); ++i) {
    if (rewritten[i] == "small") rewritten[i] = "1000,2000,4000";
    if (rewritten[i] == "medium") rewritten[i] = "8000,16000";
    if (rewritten[i] == "large") rewritten[i] = "32000,64000";
  }
  std::vector<const char*> argp;
  argp.reserve(rewritten.size());
  for (const auto& s : rewritten) argp.push_back(s.c_str());

  HarnessOptions opt =
      parse_harness_options(static_cast<int>(argp.size()), argp.data());
  print_banner("Fig. 10: runtime vs population size",
               "paper Section V-C, Fig. 10a-c");

  std::printf("span = %.0f s, threshold = %.1f km, s_ps grid/hybrid = %.0f/%.0f s\n\n",
              opt.span, opt.threshold, opt.sps_grid, opt.sps_hybrid);

  std::vector<Row> rows;
  for (std::int64_t n64 : opt.sizes) {
    const auto n = static_cast<std::size_t>(n64);
    const auto sats = generate_population({n, opt.seed});

    auto run = [&](const std::string& name, auto&& fn) {
      ScreeningReport report;
      if (opt.telemetry) obs::reset();
      const double secs = median_seconds([&] { report = fn(); }, opt.repeats);
      std::string telemetry;
      if (opt.telemetry) telemetry = obs::snapshot().to_json();
      rows.push_back({n, name, secs, report.conjunctions.size(),
                      report.stats.candidates, report.stats.seconds_per_sample,
                      std::move(telemetry)});
      std::printf("  n=%7zu %-16s %8.2f s  (%zu conjunctions)\n", n, name.c_str(),
                  secs, report.conjunctions.size());
      std::fflush(stdout);
    };

    ScreeningConfig grid_cfg = make_config(opt);
    grid_cfg.seconds_per_sample = opt.sps_grid;
    ScreeningConfig hybrid_cfg = make_config(opt);
    hybrid_cfg.seconds_per_sample = opt.sps_hybrid;

    run("grid-cpu", [&] { return screen(sats, grid_cfg, Variant::kGrid); });
    run("hybrid-cpu", [&] { return screen(sats, hybrid_cfg, Variant::kHybrid); });

    if (opt.device) {
      Device device;
      ScreeningConfig dev_grid = grid_cfg;
      dev_grid.device = &device;
      run("grid-devicesim", [&] { return screen(sats, dev_grid, Variant::kGrid); });
      const double transfer =
          device.stats().modelled_transfer_seconds(device.properties());
      std::printf("      devicesim: %llu kernels, modelled transfer %.4f s\n",
                  static_cast<unsigned long long>(device.stats().kernels_launched),
                  transfer);

      Device device2;
      ScreeningConfig dev_hybrid = hybrid_cfg;
      dev_hybrid.device = &device2;
      run("hybrid-devicesim",
          [&] { return screen(sats, dev_hybrid, Variant::kHybrid); });
    }

    if (n64 <= opt.legacy_max) {
      run("legacy", [&] { return screen(sats, make_config(opt), Variant::kLegacy); });
    } else {
      std::printf("  n=%7zu %-16s   skipped (beyond --legacy-max %lld, the "
                  "regime where the paper's legacy runs out of memory/time)\n",
                  n, "legacy", static_cast<long long>(opt.legacy_max));
    }
  }

  // Summary table with speedups relative to legacy where available.
  std::printf("\n");
  TextTable table({"n", "variant", "time [s]", "conjunctions", "candidates",
                   "s_ps", "speedup vs legacy"});
  for (const Row& row : rows) {
    double legacy_time = 0.0;
    for (const Row& other : rows) {
      if (other.n == row.n && other.variant == "legacy") legacy_time = other.seconds;
    }
    table.add_row({TextTable::integer(static_cast<long long>(row.n)), row.variant,
                   TextTable::num(row.seconds, 3),
                   TextTable::integer(static_cast<long long>(row.conjunctions)),
                   TextTable::integer(static_cast<long long>(row.candidates)),
                   TextTable::num(row.sps_used, 1),
                   legacy_time > 0.0 ? TextTable::num(legacy_time / row.seconds, 2)
                                     : std::string("-")});
  }
  table.print(std::cout);

  if (!opt.csv.empty()) {
    CsvWriter csv(opt.csv, {"n", "variant", "seconds", "conjunctions", "candidates",
                            "seconds_per_sample"});
    for (const Row& row : rows) {
      csv.add_row({TextTable::integer(static_cast<long long>(row.n)), row.variant,
                   TextTable::num(row.seconds, 6),
                   TextTable::integer(static_cast<long long>(row.conjunctions)),
                   TextTable::integer(static_cast<long long>(row.candidates)),
                   TextTable::num(row.sps_used, 3)});
    }
    std::printf("\nresults written to %s\n", opt.csv.c_str());
  }

  if (!opt.json.empty()) {
    JsonBenchWriter json(opt.json);
    for (const Row& row : rows) {
      json.record("fig10_runtime", row.n, row.variant, row.seconds,
                  row.conjunctions, row.telemetry);
    }
    std::printf("JSON records written to %s\n", opt.json.c_str());
  }
  return 0;
}
