#pragma once

/// Shared plumbing for the experiment-harness binaries (bench_*): default
/// workload parameters scaled so each binary finishes in minutes on a
/// laptop, CLI overrides, and run helpers.
///
/// The paper's absolute numbers came from a Ryzen 5950X / dual Xeon 9242 /
/// RTX 3090 testbed; these harnesses reproduce the *experiments* — the
/// same sweeps, the same reported rows — so the qualitative shape (who
/// wins, how variants scale, where memory pressure bites) is reproducible
/// anywhere. See EXPERIMENTS.md for paper-vs-measured notes.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/screen.hpp"
#include "obs/telemetry.hpp"
#include "population/generator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace scod::bench {

/// Options shared by the experiment harnesses.
struct HarnessOptions {
  std::vector<std::int64_t> sizes{1000, 2000, 4000};
  std::int64_t legacy_max = 4000;    ///< largest population the legacy runs on
  double span = 3600.0;              ///< screened time span [s]
  double threshold = 2.0;            ///< screening threshold d [km]
  double sps_grid = 4.0;             ///< grid-variant sampling period [s]
  double sps_hybrid = 16.0;          ///< hybrid-variant sampling period [s]
  std::int64_t repeats = 1;          ///< timing repetitions (median reported)
  std::uint64_t seed = 42;
  std::string csv;                   ///< optional machine-readable output path
  std::string json;                  ///< optional JSON records output path
  bool device = true;                ///< also run the devicesim backend
  bool telemetry = false;            ///< collect src/obs counters per cell
};

inline HarnessOptions parse_harness_options(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"sizes", "legacy-max", "span", "threshold", "sps-grid",
                      "sps-hybrid", "repeats", "seed", "csv", "json", "device",
                      "threads", "telemetry"});
  if (!args.unknown().empty()) {
    std::fprintf(stderr, "unknown option: %s\n", args.unknown().front().c_str());
    std::fprintf(stderr,
                 "known: --sizes a,b,c --legacy-max N --span S --threshold D "
                 "--sps-grid S --sps-hybrid S --repeats R --seed S --csv PATH "
                 "--json PATH --device 0|1 --telemetry 0|1\n");
    std::exit(2);
  }
  HarnessOptions opt;
  opt.sizes = args.get_int_list("sizes", opt.sizes);
  opt.legacy_max = args.get_int("legacy-max", opt.legacy_max);
  opt.span = args.get_double("span", opt.span);
  opt.threshold = args.get_double("threshold", opt.threshold);
  opt.sps_grid = args.get_double("sps-grid", opt.sps_grid);
  opt.sps_hybrid = args.get_double("sps-hybrid", opt.sps_hybrid);
  opt.repeats = args.get_int("repeats", opt.repeats);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opt.csv = args.get_string("csv", "");
  opt.json = args.get_string("json", "");
  opt.device = args.get_bool("device", opt.device);
  opt.telemetry = args.get_bool("telemetry", false);
  if (opt.telemetry && !obs::compiled()) {
    std::fprintf(stderr,
                 "--telemetry requested but this build has SCOD_TELEMETRY=OFF\n");
    std::exit(2);
  }
  if (opt.telemetry) obs::set_enabled(true);
  return opt;
}

/// Streams bench records as a JSON array of flat objects, one per measured
/// (workload, n, variant) cell:
///   {"workload": ..., "n": ..., "variant": ..., "seconds": ..., "conjunctions": ...}
/// Committed snapshots follow the BENCH_<tag>.json convention at the repo
/// root (e.g. BENCH_pr1.json), so regressions show up in review diffs.
/// Destruction closes the array; with an empty path the writer is inert.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(const std::string& path) {
    if (path.empty()) return;
    out_.open(path);
    if (!out_) {
      std::fprintf(stderr, "cannot open JSON output: %s\n", path.c_str());
      std::exit(2);
    }
    out_ << "[\n";
  }

  ~JsonBenchWriter() {
    if (out_.is_open()) out_ << "\n]\n";
  }

  JsonBenchWriter(const JsonBenchWriter&) = delete;
  JsonBenchWriter& operator=(const JsonBenchWriter&) = delete;

  /// `extra_fields`, when non-empty, is spliced verbatim into the record
  /// as additional `"key": value` pairs (no surrounding braces/comma) —
  /// e.g. `"\"allocation_seconds\": 0.12` for the context-reuse bench.
  void record(const std::string& workload, std::uint64_t n,
              const std::string& variant, double seconds,
              std::uint64_t conjunctions,
              const std::string& telemetry_json = "",
              const std::string& extra_fields = "") {
    if (!out_.is_open()) return;
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "  {\"workload\": \"" << workload << "\", \"n\": " << n
         << ", \"variant\": \"" << variant << "\", \"seconds\": " << seconds
         << ", \"conjunctions\": " << conjunctions;
    if (!extra_fields.empty()) out_ << ", " << extra_fields;
    if (!telemetry_json.empty()) out_ << ", \"telemetry\": " << telemetry_json;
    out_ << "}";
    out_.flush();
  }

 private:
  std::ofstream out_;
  bool first_ = true;
};

inline ScreeningConfig make_config(const HarnessOptions& opt) {
  ScreeningConfig cfg;
  cfg.threshold_km = opt.threshold;
  cfg.t_begin = 0.0;
  cfg.t_end = opt.span;
  return cfg;
}

inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// Median wall-clock seconds of `repeats` runs of `fn`.
template <typename Fn>
double median_seconds(Fn&& fn, std::int64_t repeats) {
  std::vector<double> times;
  for (std::int64_t r = 0; r < std::max<std::int64_t>(repeats, 1); ++r) {
    Stopwatch watch;
    fn();
    times.push_back(watch.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace scod::bench
