/// Table I analogue: the benchmark system configuration. The paper lists
/// its two testbeds (Ryzen 5950X + RTX 3090 / dual Xeon 9242); this prints
/// the host this reproduction actually runs on, plus the simulated device
/// the CUDA variants are substituted with (see DESIGN.md).

#include <cstdio>
#include <iostream>

#include "parallel/device.hpp"
#include "util/sysinfo.hpp"
#include "util/table.hpp"

int main() {
  using namespace scod;

  std::printf("\n=== Table I: benchmark system configuration ===\n\n");

  const SystemInfo info = query_system_info();
  TextTable host({"System property", "Value"});
  host.add_row({"Operating system", info.os});
  host.add_row({"CPU name", info.cpu_name.empty() ? "(unknown)" : info.cpu_name});
  host.add_row({"CPU logical processors", TextTable::integer(
                    static_cast<long long>(info.logical_cpus))});
  host.add_row({"CPU clock (current)", TextTable::num(info.cpu_mhz, 0) + " MHz"});
  host.add_row({"System memory", TextTable::num(info.memory_gib, 1) + " GiB"});
  host.print(std::cout);

  const DeviceProperties dev;
  std::printf("\nSimulated device (substitution for the paper's RTX 3090):\n");
  TextTable device({"Device property", "Value"});
  device.add_row({"Name", dev.name});
  device.add_row({"Device memory", TextTable::num(
                      static_cast<double>(dev.memory_bytes) / (1 << 30), 1) + " GiB"});
  device.add_row({"Max threads per block", TextTable::integer(dev.max_threads_per_block)});
  device.add_row({"Modelled transfer bandwidth",
                  TextTable::num(dev.transfer_bandwidth / 1e9, 1) + " GB/s"});
  device.print(std::cout);

  std::printf(
      "\nPaper reference systems: AMD Ryzen 9 5950X (16C/32T, 64 GB) + NVIDIA\n"
      "RTX 3090 (24 GB) on Windows 10; 2x Intel Xeon Platinum 9242 (2x48C,\n"
      "384 GB) on RedHat 8.6.\n");
  return 0;
}
