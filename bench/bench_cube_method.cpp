/// Ablation: the Cube method (volumetric/statistical, Section II related
/// work) against the deterministic grid screener.
///
/// Two claims from the literature are quantified:
///  1. The Cube estimate is *statistical*: expected-collision numbers,
///     not deterministic conjunction events — it cannot name pairs/TCAs.
///  2. "Limitations of the cube method for assessing large constellations"
///     (Lewis et al. 2019): for a phased constellation shell, co-orbiting
///     geometry breaks the kinetic-theory assumptions — the cube sees
///     permanent co-residency at near-zero relative velocity while the
///     deterministic screener correctly reports whether the phasing keeps
///     the satellites apart.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "volumetric/cube.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Cube method vs deterministic screening",
               "related work [21], [22] (Section II)");

  const ContourKeplerSolver solver;

  // --- Random catalog population: both methods should agree on *where*
  // the activity is (relative ordering across population sizes).
  TextTable table({"population", "n", "grid conjunctions", "cube E[collisions]",
                   "cube co-res pairs/sample", "grid [s]", "cube [s]"});

  for (std::int64_t n64 : opt.sizes) {
    const auto n = static_cast<std::size_t>(n64);
    const auto sats = generate_population({n, opt.seed});
    const TwoBodyPropagator prop(sats, solver);

    ScreeningConfig cfg = make_config(opt);
    Stopwatch grid_watch;
    const ScreeningReport grid = make_screener(Variant::kGrid)->screen(prop, cfg);
    const double grid_secs = grid_watch.seconds();

    CubeConfig cube_cfg;
    cube_cfg.cube_size_km = 10.0;
    cube_cfg.samples = 1000;
    Stopwatch cube_watch;
    const CubeResult cube =
        cube_collision_estimate(prop, cfg.t_begin, cfg.t_end, cube_cfg);
    const double cube_secs = cube_watch.seconds();

    char expected[32];
    std::snprintf(expected, sizeof(expected), "%.3e", cube.expected_collisions);
    table.add_row({"catalog", TextTable::integer(n64),
                   TextTable::integer(static_cast<long long>(grid.conjunctions.size())),
                   expected, TextTable::num(cube.mean_pairs_per_sample, 3),
                   TextTable::num(grid_secs, 2), TextTable::num(cube_secs, 2)});
    std::printf("  n=%6zu: grid %zu conjunctions (%.2f s), cube E=%.3e (%.2f s)\n",
                n, grid.conjunctions.size(), grid_secs, cube.expected_collisions,
                cube_secs);
    std::fflush(stdout);
  }

  // --- Constellation blind spot: a phased Walker plane where satellites
  // never approach each other, but permanently share cubes.
  {
    const auto shell = generate_constellation_shell(1, 20, 550.0, 0.93, 0.0);
    const TwoBodyPropagator prop(shell, solver);
    ScreeningConfig cfg = make_config(opt);
    cfg.threshold_km = 5.0;
    const ScreeningReport grid = make_screener(Variant::kGrid)->screen(prop, cfg);

    CubeConfig cube_cfg;
    cube_cfg.cube_size_km = 3000.0;  // of the order of the in-plane spacing
    cube_cfg.samples = 1000;
    const CubeResult cube =
        cube_collision_estimate(prop, cfg.t_begin, cfg.t_end, cube_cfg);

    char expected[32];
    std::snprintf(expected, sizeof(expected), "%.3e", cube.expected_collisions);
    table.add_row({"walker-plane", "20",
                   TextTable::integer(static_cast<long long>(grid.conjunctions.size())),
                   expected, TextTable::num(cube.mean_pairs_per_sample, 3), "-", "-"});
    std::printf("\n  walker plane: grid %zu conjunctions (phasing keeps them "
                "apart);\n  cube sees %.3f co-resident pairs/sample at ~zero "
                "v_rel -> E=%.3e\n",
                grid.conjunctions.size(), cube.mean_pairs_per_sample,
                cube.expected_collisions);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nreading: the cube runtime is linear in n and flat in activity, but\n"
      "it yields rates, not events; for phased constellations its kinetic\n"
      "assumptions misprice the (deliberately) co-orbiting geometry — the\n"
      "deterministic grid screening is what operators need there, which is\n"
      "exactly the paper's motivation.\n");
  return 0;
}
