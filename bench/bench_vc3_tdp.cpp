/// Section V-C3: CPU-GPU comparability via thermal design power. The paper
/// multiplies each platform's TDP with its measured runtime and concludes
/// the GPU is the most energy-efficient platform. We reproduce the
/// computation: the paper's published TDP constants are combined with this
/// host's measured runtimes (and the paper's runtime ratios for reference).

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "util/sysinfo.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Section V-C3: TDP-based efficiency", "paper Section V-C3");

  // Paper constants.
  constexpr double kTdpRyzen = 105.0;   // W, AMD Ryzen 9 5950X
  constexpr double kTdpXeon = 700.0;    // W, 2x Intel Xeon Platinum 9242
  constexpr double kTdpRtx3090 = 350.0; // W, NVIDIA RTX 3090

  TextTable constants({"platform", "TDP [W]", "paper observation"});
  constants.add_row({"AMD Ryzen 9 5950X", TextTable::num(kTdpRyzen, 0),
                     ">7x slower than the GPU at equal variant"});
  constants.add_row({"2x Intel Xeon 9242", TextTable::num(kTdpXeon, 0),
                     "higher energy, still slower than GPU"});
  constants.add_row({"NVIDIA RTX 3090", TextTable::num(kTdpRtx3090, 0),
                     "fastest and most energy-efficient"});
  constants.print(std::cout);

  // Energy on this host: measured runtime x a nominal host TDP. We scale a
  // per-core estimate by the active core count as a first-order proxy.
  const SystemInfo info = query_system_info();
  const double host_tdp =
      15.0 + 10.0 * static_cast<double>(info.logical_cpus);  // W, rough laptop model
  const auto n = static_cast<std::size_t>(opt.sizes.back());
  const auto sats = generate_population({n, opt.seed});

  std::printf("\nmeasured on this host (nominal %.0f W), n = %zu, span %.0f s:\n\n",
              host_tdp, n, opt.span);

  TextTable table({"variant", "time [s]", "energy [J] (time x TDP)"});
  auto add = [&](const std::string& name, Variant v, double sps) {
    ScreeningConfig cfg = make_config(opt);
    cfg.seconds_per_sample = sps;
    const double secs =
        median_seconds([&] { screen(sats, cfg, v); }, opt.repeats);
    table.add_row({name, TextTable::num(secs, 3), TextTable::num(secs * host_tdp, 1)});
  };
  add("grid-cpu", Variant::kGrid, opt.sps_grid);
  add("hybrid-cpu", Variant::kHybrid, opt.sps_hybrid);
  if (static_cast<std::int64_t>(n) <= opt.legacy_max) {
    add("legacy", Variant::kLegacy, 0.0);
  }
  table.print(std::cout);

  std::printf(
      "\npaper conclusion: with the same variant the RTX 3090 (350 W) finishes\n"
      ">7x faster than the 105 W Ryzen, so even at 3.3x the power draw the\n"
      "GPU consumes less energy per screening; the 700 W Xeon pair is\n"
      "dominated on both axes.\n");
  return 0;
}
