/// Fig. 9: bivariate density of (semi-major axis, eccentricity) in the
/// generated population. Prints an ASCII heat map of the LEO region (where
/// the paper's figure shows the hot spot at a ~ 7000 km, e ~ 0.0025) and a
/// summary of the full population structure; optionally dumps the raw
/// samples to CSV for replotting.

#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "util/constants.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  const HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Fig. 9: bivariate (a, e) distribution", "paper Section V-A, Fig. 9");

  const std::size_t n = 20000;
  const auto sats = generate_population({n, opt.seed});

  // LEO detail histogram, matching the region Fig. 9 displays.
  Histogram2D leo(6600.0, 7600.0, 50, 0.0, 0.02, 20);
  std::size_t in_leo = 0, in_meo = 0, in_geo = 0, high_e = 0;
  for (const Satellite& s : sats) {
    const double a = s.elements.semi_major_axis;
    const double e = s.elements.eccentricity;
    if (a >= 6600.0 && a <= 7600.0 && e <= 0.02) {
      leo.add(a, e);
      ++in_leo;
    } else if (std::abs(a - 26560.0) < 1500.0) {
      ++in_meo;
    } else if (std::abs(a - kGeoSemiMajorAxis) < 500.0) {
      ++in_geo;
    }
    if (e > 0.5) ++high_e;
  }

  std::printf("ASCII density, a in [6600, 7600] km (x) vs e in [0, 0.02] (y):\n");
  const char* shades = " .:-=+*#%@";
  const double max_count = static_cast<double>(leo.max_count());
  for (std::size_t yi = leo.y_bins(); yi-- > 0;) {
    std::printf("e=%6.4f |", leo.y_bin_center(yi));
    for (std::size_t xi = 0; xi < leo.x_bins(); ++xi) {
      const double t = static_cast<double>(leo.at(xi, yi)) / max_count;
      const int shade = static_cast<int>(t * 9.0);
      std::putchar(shades[shade]);
    }
    std::printf("|\n");
  }
  std::printf("          a=6600 km %*s a=7600 km\n\n", 30, "");

  // Locate the mode of the LEO histogram.
  std::size_t best_xi = 0, best_yi = 0, best = 0;
  for (std::size_t xi = 0; xi < leo.x_bins(); ++xi) {
    for (std::size_t yi = 0; yi < leo.y_bins(); ++yi) {
      if (leo.at(xi, yi) > best) {
        best = leo.at(xi, yi);
        best_xi = xi;
        best_yi = yi;
      }
    }
  }
  std::printf("density mode: a = %.0f km, e = %.4f (paper: ~7000 km, ~0.0025)\n",
              leo.x_bin_center(best_xi), leo.y_bin_center(best_yi));
  std::printf("population structure (n = %zu):\n", n);
  std::printf("  LEO detail window : %zu (%.1f%%)\n", in_leo,
              100.0 * static_cast<double>(in_leo) / static_cast<double>(n));
  std::printf("  MEO (GNSS shells) : %zu\n", in_meo);
  std::printf("  GEO ring          : %zu\n", in_geo);
  std::printf("  high-e (GTO/HEO)  : %zu\n", high_e);

  if (!opt.csv.empty()) {
    CsvWriter csv(opt.csv, {"semi_major_axis_km", "eccentricity"});
    for (const Satellite& s : sats) {
      csv.add_row({TextTable::num(s.elements.semi_major_axis, 3),
                   TextTable::num(s.elements.eccentricity, 6)});
    }
    std::printf("raw samples written to %s\n", opt.csv.c_str());
  }
  return 0;
}
