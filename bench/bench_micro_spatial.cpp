/// Micro-benchmarks of the spatial substrates: MurMur3 hashing, the
/// lock-free grid hash set (the paper's core data structure) under varying
/// load factors and thread counts, the candidate set, and the k-d tree
/// baseline from the related work ([29]) that motivates choosing the grid:
/// the tree must be rebuilt every sample step.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "util/constants.hpp"

#include "parallel/thread_pool.hpp"
#include "spatial/cell.hpp"
#include "spatial/conjunction_set.hpp"
#include "spatial/grid_hash_set.hpp"
#include "spatial/kdtree.hpp"
#include "spatial/murmur3.hpp"
#include "util/rng.hpp"
#include "volumetric/octree.hpp"

namespace {

using namespace scod;

void BM_Murmur3Fmix64(benchmark::State& state) {
  std::uint64_t x = 0x12345;
  for (auto _ : state) {
    x = murmur3_fmix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Murmur3Fmix64);

void BM_Murmur3X64_128(benchmark::State& state) {
  std::vector<char> data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    std::uint64_t lo, hi;
    murmur3_x64_128(data.data(), data.size(), 0, &lo, &hi);
    benchmark::DoNotOptimize(lo);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Murmur3X64_128)->Arg(8)->Arg(64)->Arg(1024);

std::vector<Vec3> random_positions(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out) {
    // A thin LEO shell, matching the occupancy pattern the screener sees.
    const double r = rng.uniform(6900.0, 7100.0);
    const double theta = rng.uniform(0.0, kTwoPi);
    const double z = rng.uniform(-1.0, 1.0);
    const double s = std::sqrt(1.0 - z * z);
    p = {r * s * std::cos(theta), r * s * std::sin(theta), r * z};
  }
  return out;
}

void BM_GridHashSetInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto positions = random_positions(n, 7);
  const CellIndexer indexer(33.2);
  GridHashSet set(n);
  for (auto _ : state) {
    set.clear();
    for (std::size_t i = 0; i < n; ++i) {
      set.insert(indexer.key_of(positions[i]), static_cast<std::uint32_t>(i),
                 positions[i]);
    }
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GridHashSetInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GridHashSetInsertParallel(benchmark::State& state) {
  const std::size_t n = 100000;
  const auto positions = random_positions(n, 7);
  const CellIndexer indexer(33.2);
  GridHashSet set(n);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    set.clear();
    pool.parallel_for(n, [&](std::size_t i) {
      set.insert(indexer.key_of(positions[i]), static_cast<std::uint32_t>(i),
                 positions[i]);
    });
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GridHashSetInsertParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_GridHashSetLoadFactor(benchmark::State& state) {
  // Insertion cost vs slot-table headroom: the paper doubles the slot
  // count to "break up long clusters" of linear probing.
  const std::size_t n = 50000;
  const double slot_factor = static_cast<double>(state.range(0)) / 100.0;
  const auto positions = random_positions(n, 11);
  const CellIndexer indexer(8.0);  // small cells: many distinct keys
  GridHashSet set(n, slot_factor);
  for (auto _ : state) {
    set.clear();
    for (std::size_t i = 0; i < n; ++i) {
      set.insert(indexer.key_of(positions[i]), static_cast<std::uint32_t>(i),
                 positions[i]);
    }
  }
  state.counters["probe_steps_per_insert"] =
      static_cast<double>(set.probe_steps()) /
      static_cast<double>(state.iterations() * n);
}
BENCHMARK(BM_GridHashSetLoadFactor)->Arg(105)->Arg(130)->Arg(200)->Arg(400);

void BM_GridHashSetFind(benchmark::State& state) {
  const std::size_t n = 100000;
  const auto positions = random_positions(n, 13);
  const CellIndexer indexer(33.2);
  GridHashSet set(n);
  for (std::size_t i = 0; i < n; ++i) {
    set.insert(indexer.key_of(positions[i]), static_cast<std::uint32_t>(i),
               positions[i]);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.find(indexer.key_of(positions[i])));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_GridHashSetFind);

void BM_CandidateSetInsert(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  CandidateSet set(n);
  Rng rng(3);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) {
    k = pack_candidate(static_cast<std::uint32_t>(rng.uniform_index(1000)),
                       static_cast<std::uint32_t>(rng.uniform_index(1000)) + 1000,
                       static_cast<std::uint32_t>(rng.uniform_index(1 << 20)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == 0) set.clear();
    benchmark::DoNotOptimize(set.insert(keys[i]));
    i = (i + 1) % (n / 2);
  }
}
BENCHMARK(BM_CandidateSetInsert);

void BM_KdTreeBuild(benchmark::State& state) {
  // The related-work baseline: a tree rebuild per sample step. Compare
  // against BM_GridHashSetInsert at equal n — the grid's per-step cost.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto positions = random_positions(n, 17);
  std::vector<KdTree::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = {positions[i], static_cast<std::uint32_t>(i)};
  }
  for (auto _ : state) {
    KdTree tree(points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OctreeBuild(benchmark::State& state) {
  // The other tree baseline ruled out in Section IV-A; like the k-d tree
  // it must be rebuilt every sample step.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto positions = random_positions(n, 23);
  std::vector<Octree::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = {positions[i], static_cast<std::uint32_t>(i)};
  }
  for (auto _ : state) {
    Octree tree(points, 8000.0);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OctreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OctreeRadiusQuery(benchmark::State& state) {
  const std::size_t n = 100000;
  const auto positions = random_positions(n, 29);
  std::vector<Octree::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = {positions[i], static_cast<std::uint32_t>(i)};
  }
  const Octree tree(points, 8000.0);
  std::size_t i = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    tree.for_each_within(positions[i], 33.2, [&](const Octree::Point&) { ++hits; });
    benchmark::DoNotOptimize(hits);
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_OctreeRadiusQuery);

void BM_KdTreeRadiusQuery(benchmark::State& state) {
  const std::size_t n = 100000;
  const auto positions = random_positions(n, 19);
  std::vector<KdTree::Point> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = {positions[i], static_cast<std::uint32_t>(i)};
  }
  const KdTree tree(points);
  std::size_t i = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    tree.for_each_within(positions[i], 33.2, [&](const KdTree::Point&) { ++hits; });
    benchmark::DoNotOptimize(hits);
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_KdTreeRadiusQuery);

}  // namespace
