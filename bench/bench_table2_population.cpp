/// Table II: value ranges of the Kepler elements produced by the
/// synthetic-population generator. Generates a large population and
/// verifies/report the observed range of every element against the table.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "orbit/geometry.hpp"
#include "util/constants.hpp"

int main(int argc, char** argv) {
  using namespace scod;
  using namespace scod::bench;

  const HarnessOptions opt = parse_harness_options(argc, argv);
  print_banner("Table II: Kepler element value ranges",
               "paper Section V-A, Table II");

  const std::size_t n = 100000;
  const auto sats = generate_population({n, opt.seed});

  struct Range {
    double lo = 1e300, hi = -1e300;
    void add(double v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  };
  Range a, e, inc, raan, argp, ma;
  for (const Satellite& s : sats) {
    a.add(s.elements.semi_major_axis);
    e.add(s.elements.eccentricity);
    inc.add(s.elements.inclination);
    raan.add(s.elements.raan);
    argp.add(s.elements.arg_perigee);
    ma.add(s.elements.mean_anomaly);
  }

  TextTable table({"Kepler element", "Specified range", "Observed range (n=100000)"});
  auto obs = [](const Range& r, int prec = 3) {
    return TextTable::num(r.lo, prec) + " - " + TextTable::num(r.hi, prec);
  };
  table.add_row({"Semi-major axis [km]", "from distribution", obs(a, 0)});
  table.add_row({"Eccentricity", "from distribution", obs(e, 4)});
  table.add_row({"Inclination [rad]", "0 - pi", obs(inc)});
  table.add_row({"RAAN [rad]", "0 - 2 pi", obs(raan)});
  table.add_row({"Argument of perigee [rad]", "0 - 2 pi", obs(argp)});
  table.add_row({"Mean anomaly [rad]", "0 - 2 pi", obs(ma)});
  table.print(std::cout);

  // Hard checks: violations exit non-zero so the harness catches drift.
  bool ok = inc.lo >= 0.0 && inc.hi <= kPi && raan.lo >= 0.0 && raan.hi < kTwoPi &&
            argp.lo >= 0.0 && argp.hi < kTwoPi && ma.lo >= 0.0 && ma.hi < kTwoPi &&
            e.lo >= 0.0 && e.hi < 1.0;
  for (const Satellite& s : sats) ok = ok && is_valid_orbit(s.elements);
  std::printf("\nall elements within specified ranges, all orbits valid: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
