/// Quickstart: screen a synthetic satellite population for conjunctions.
///
/// Demonstrates the one-call API: generate a population, configure the
/// screening (threshold, span), run the grid-based variant and inspect the
/// report. Build and run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/screen.hpp"
#include "population/generator.hpp"

int main() {
  using namespace scod;

  // 1. A population of 2000 synthetic objects with the catalog-like
  //    (a, e) distribution of the paper's Section V-A.
  PopulationConfig population;
  population.count = 2000;
  population.seed = 7;
  const std::vector<Satellite> satellites = generate_population(population);

  // 2. Screening setup: find every encounter closer than 2 km within the
  //    next two hours.
  ScreeningConfig config;
  config.threshold_km = 2.0;
  config.t_begin = 0.0;
  config.t_end = 2.0 * 3600.0;

  // 3. Run the grid-based variant (lock-free spatial hash grids; use
  //    Variant::kHybrid for the filter-assisted variant, Variant::kLegacy
  //    for the all-on-all baseline).
  const ScreeningReport report = screen(satellites, config, Variant::kGrid);

  // 4. Consume the results.
  std::printf("screened %zu satellites over %.0f s: %zu conjunctions, "
              "%zu distinct pairs\n",
              report.stats.satellites, config.span_seconds(),
              report.conjunctions.size(), report.colliding_pairs().size());
  for (const Conjunction& c : report.conjunctions) {
    std::printf("  objects %5u and %5u: closest approach %.3f km at t = %.1f s\n",
                c.sat_a, c.sat_b, c.pca, c.tca);
  }

  std::printf("\npipeline: %zu sample steps (s_ps = %.1f s, cells %.1f km), "
              "%zu candidate pairs, %.2f s total\n",
              report.stats.total_samples, report.stats.seconds_per_sample,
              report.stats.cell_size_km, report.stats.candidates,
              report.timings.total());
  return 0;
}
