/// Fragmentation-event screening — the paper's Section III-B scenario: a
/// catastrophic breakup creates a debris cloud that starts concentrated
/// and spreads along the orbit. We screen the cloud against a
/// constellation shell at increasing cloud ages and watch the conjunction
/// pressure evolve; the grid variant is the right tool because the cloud's
/// density blows up the pair counts that filter chains must enumerate.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/screen.hpp"
#include "population/generator.hpp"
#include "util/constants.hpp"

int main() {
  using namespace scod;

  // A constellation shell at 780 km / 86.4 deg (Iridium-like).
  const auto shell = generate_constellation_shell(6, 11, 780.0,
                                                  86.4 * kPi / 180.0, 0.0, 0);
  const auto shell_size = static_cast<std::uint32_t>(shell.size());

  // The parent object breaks up in a crossing orbit at the same altitude.
  KeplerElements parent;
  parent.semi_major_axis = kEarthRadius + 780.0;
  parent.eccentricity = 0.002;
  parent.inclination = 74.0 * kPi / 180.0;
  parent.raan = 0.7;
  parent.arg_perigee = 0.3;
  parent.mean_anomaly = 2.0;

  std::printf("shell: %u satellites at 780 km; breakup parent in a crossing "
              "74-deg orbit\n\n", shell_size);
  std::printf("%-12s %-10s %-14s %-14s %-10s\n", "cloud age", "fragments",
              "conjunctions", "shell hits", "time [s]");

  // "spread" scales the element dispersion: young clouds are compact and
  // hot; older clouds have smeared along the whole orbit.
  for (const double spread : {0.3, 0.6, 1.0, 2.0, 4.0}) {
    const auto cloud =
        generate_debris_cloud(parent, 250, spread, 0xC10D, shell_size);
    std::vector<Satellite> all = shell;
    all.insert(all.end(), cloud.begin(), cloud.end());

    ScreeningConfig config;
    config.threshold_km = 2.0;
    config.t_end = 2.0 * 3600.0;

    const ScreeningReport report = screen(all, config, Variant::kGrid);

    // Count conjunctions that involve a constellation satellite (the ones
    // an operator must act on; cloud-internal encounters are unavoidable).
    std::size_t shell_hits = 0;
    for (const Conjunction& c : report.conjunctions) {
      if (c.sat_a < shell_size || c.sat_b < shell_size) ++shell_hits;
    }
    std::printf("%-12.1f %-10zu %-14zu %-14zu %-10.2f\n", spread, cloud.size(),
                report.conjunctions.size(), shell_hits, report.timings.total());
    std::fflush(stdout);
  }

  std::printf(
      "\nreading: a young, compact cloud produces a burst of internal\n"
      "encounters; as it disperses along the orbital shell the internal\n"
      "count falls while crossings with the constellation persist — the\n"
      "Kessler-style pressure the screening exists to monitor.\n");
  return 0;
}
