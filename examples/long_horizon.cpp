/// Long-horizon streaming screening: a week of conjunctions in the memory
/// of a single round.
///
/// The batch API holds every candidate of the whole span before refining;
/// for multi-day horizons on a constrained machine that is exactly the
/// memory wall the paper hits in Fig. 10c. screen_streaming() composes the
/// paper's sample-parallel rounds with the time-slicing strategy of the
/// related work [23]: each round's candidates are refined and emitted
/// immediately, and the round's grids and candidate set are recycled.

#include <cstdio>
#include <vector>

#include "core/grid_screener.hpp"
#include "population/generator.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"

int main() {
  using namespace scod;

  const auto sats = generate_population({1000, 77});
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(sats, solver);

  ScreeningConfig config;
  config.threshold_km = 2.0;
  config.t_end = 7.0 * 86400.0;      // one week
  config.seconds_per_sample = 16.0;  // coarser sampling for the long span
  config.memory_budget = 64ull << 20;  // pretend we only have 64 MiB

  std::printf("streaming screening of %zu objects over %.0f days "
              "(memory budget %llu MiB)\n\n",
              sats.size(), config.span_seconds() / 86400.0,
              static_cast<unsigned long long>(config.memory_budget >> 20));

  std::size_t total = 0;
  std::vector<std::size_t> per_day(8, 0);
  const ScreeningReport report = GridScreener().screen_streaming(
      propagator, config,
      [&](std::size_t round, std::span<const Conjunction> found) {
        for (const Conjunction& c : found) {
          ++total;
          ++per_day[static_cast<std::size_t>(c.tca / 86400.0)];
          if (total <= 5) {
            std::printf("  first events: round %4zu  %4u-%4u  t=%9.0f s  "
                        "pca=%.3f km\n",
                        round, c.sat_a, c.sat_b, c.tca, c.pca);
          }
        }
      });

  std::printf("\nconjunctions per day:");
  for (std::size_t day = 0; day < 7; ++day) std::printf(" %zu", per_day[day]);
  std::printf("\ntotal %zu conjunctions over the week\n", total);
  std::printf("pipeline: %zu samples in %zu rounds of %zu parallel grids; "
              "%.1f MiB of grids + %.1f MiB candidate map resident at a time; "
              "%.1f s wall\n",
              report.stats.total_samples, report.stats.rounds,
              report.stats.parallel_samples,
              static_cast<double>(report.stats.grid_memory_bytes) / (1 << 20),
              static_cast<double>(report.stats.candidate_memory_bytes) / (1 << 20),
              report.timings.total());
  return 0;
}
