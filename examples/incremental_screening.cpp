/// Incremental screening walkthrough: a long-lived ScreeningService owns a
/// versioned catalog and a warm conjunction baseline. After a delta that
/// touches k of n objects (a TLE batch, a maneuver, a decay), re-screening
/// costs roughly the insertion pass plus refinement of the dirty pairs —
/// not a full n-vs-n screen — and the merged report is identical to one
/// computed from scratch.

#include <cstdio>

#include "population/generator.hpp"
#include "service/screening_service.hpp"
#include "util/rng.hpp"

int main() {
  using namespace scod;

  // A service screens a fixed window with fixed grid geometry; deltas to
  // the catalog arrive between screens.
  ServiceOptions options;
  options.config.threshold_km = 2.0;
  options.config.t_end = 3600.0;
  options.config.seconds_per_sample = 8.0;
  ScreeningService service(options);

  // Epoch 1: bulk-load the catalog (file ingest works the same way via
  // service.ingest_csv / ingest_tle).
  const auto population = generate_population({8000, 2026});
  service.upsert(population);
  std::printf("epoch %llu: catalog of %zu objects\n",
              static_cast<unsigned long long>(service.store().epoch()),
              service.store().size());

  // First screen is necessarily full — it becomes the warm baseline.
  const ServiceReport first = service.screen();
  std::printf("full screen:        %4zu conjunctions in %.2f s\n",
              first.conjunctions.size(), first.total_seconds);

  // A small delta: ~0.5%% of the objects maneuver (element updates), one
  // object decays (removal), a fresh launch appears (add).
  Rng rng(7);
  std::vector<Satellite> maneuvers;
  const auto snapshot = service.store().snapshot();
  for (int k = 0; k < 40; ++k) {
    Satellite sat = snapshot->satellites[rng.uniform_index(snapshot->size())];
    sat.elements.mean_anomaly += rng.uniform(-0.02, 0.02);
    sat.elements.arg_perigee += rng.uniform(-0.01, 0.01);
    maneuvers.push_back(sat);
  }
  service.upsert(maneuvers);
  service.remove(population.front().id);
  Satellite launch = population.back();
  launch.id = 1000000;  // a new id on its own orbit
  launch.elements.raan += 0.8;
  launch.elements.mean_anomaly += 2.1;
  service.upsert(launch);

  // Re-screen: only pairs with a dirty member are refined; everything
  // else carries over from the baseline, stale baseline pairs are evicted.
  const ServiceReport second = service.screen();
  std::printf("incremental screen: %4zu conjunctions in %.2f s "
              "(dirty %zu, carried %zu, evicted %zu, refreshed %zu)\n",
              second.conjunctions.size(), second.total_seconds, second.dirty,
              second.carried, second.evicted, second.refreshed);

  // The merged report equals a from-scratch screen of the same snapshot.
  const ServiceReport full = service.screen(ScreenMode::kFull);
  std::printf("verification:       %4zu conjunctions from scratch in %.2f s -> %s\n",
              full.conjunctions.size(), full.total_seconds,
              full.conjunctions.size() == second.conjunctions.size() ? "equal"
                                                                     : "MISMATCH");

  const ServiceStats& stats = service.stats();
  std::printf("\nservice counters: %llu upserts, %llu removals, "
              "%llu full + %llu incremental screens\n",
              static_cast<unsigned long long>(stats.upserts),
              static_cast<unsigned long long>(stats.removals),
              static_cast<unsigned long long>(stats.full_screens),
              static_cast<unsigned long long>(stats.incremental_screens));
  std::printf("speedup of the incremental pass: %.1fx\n",
              first.total_seconds / (second.total_seconds > 0.0
                                         ? second.total_seconds
                                         : 1e-9));
  return 0;
}
