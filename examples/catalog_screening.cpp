/// Catalog round trip + propagator swapping: save/load a population as a
/// CSV catalog (the interchange format of population/catalog_io.hpp), then
/// screen the same catalog with the two-body propagator and the J2 secular
/// propagator (one of the paper's proposed extensions) and compare what
/// the nodal precession does to the conjunction picture over a day.

#include <cstdio>
#include <string>
#include <vector>

#include "core/grid_screener.hpp"
#include "population/catalog_io.hpp"
#include "population/generator.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/j2_secular.hpp"
#include "propagation/two_body.hpp"

int main() {
  using namespace scod;

  // Build and persist a catalog, then load it back — the pattern for
  // feeding externally supplied element sets into the screener.
  PopulationConfig population;
  population.count = 1500;
  population.seed = 99;
  const auto generated = generate_population(population);

  const std::string path = "/tmp/scod_example_catalog.csv";
  save_catalog_csv(path, generated);
  const auto catalog = load_catalog_csv(path);
  std::printf("catalog round trip: wrote and re-read %zu objects (%s)\n\n",
              catalog.size(), path.c_str());

  ScreeningConfig config;
  config.threshold_km = 2.0;
  config.t_end = 12.0 * 3600.0;
  config.seconds_per_sample = 8.0;

  const ContourKeplerSolver solver;
  const GridScreener screener;

  // Two-body propagation (the paper's model)...
  const TwoBodyPropagator two_body(catalog, solver);
  const ScreeningReport kepler_report = screener.screen(two_body, config);
  std::printf("two-body propagation: %4zu conjunctions, %6zu candidates, %.2f s\n",
              kepler_report.conjunctions.size(), kepler_report.stats.candidates,
              kepler_report.timings.total());

  // ...vs J2 secular propagation (nodal regression + apsidal rotation).
  const J2SecularPropagator j2(catalog, solver);
  const ScreeningReport j2_report = screener.screen(j2, config);
  std::printf("J2 secular propagation: %3zu conjunctions, %6zu candidates, %.2f s\n",
              j2_report.conjunctions.size(), j2_report.stats.candidates,
              j2_report.timings.total());

  const PairSetDiff diff = compare_pair_sets(kepler_report.colliding_pairs(),
                                             j2_report.colliding_pairs());
  std::printf(
      "\npair agreement: %zu common, %zu two-body-only, %zu J2-only\n"
      "over half a day the J2 plane drift moves encounters by whole kilometres,\n"
      "so the propagator choice visibly changes the screening result —\n"
      "which is why the paper lists propagator exchange as future work.\n",
      diff.common, diff.only_in_first, diff.only_in_second);
  return 0;
}
