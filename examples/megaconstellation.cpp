/// Mega-constellation screening — the workload motivating the paper's
/// introduction (Starlink-scale fleets joining an already crowded LEO).
///
/// Builds two Walker-delta shells plus catalog-like background traffic,
/// runs the hybrid variant (the fast choice when memory is available) and
/// reports which constellation planes see the most conjunction traffic.

#include <cstdio>
#include <map>
#include <vector>

#include "core/screen.hpp"
#include "population/generator.hpp"
#include "util/constants.hpp"

int main() {
  using namespace scod;

  // Shell 1: 24 planes x 22 satellites at 550 km / 53 deg (Starlink-like).
  // Shell 2: 12 planes x 20 satellites at 1200 km / 87.9 deg (OneWeb-like).
  const std::size_t planes1 = 24, per_plane1 = 22;
  auto fleet = generate_constellation_shell(planes1, per_plane1, 550.0,
                                            53.0 * kPi / 180.0, 0.5, 0);
  const auto first_id2 = static_cast<std::uint32_t>(fleet.size());
  const auto shell2 = generate_constellation_shell(12, 20, 1200.0,
                                                   87.9 * kPi / 180.0, 0.3,
                                                   first_id2);
  fleet.insert(fleet.end(), shell2.begin(), shell2.end());

  // Background: 1500 catalog-like objects with ids above the fleet.
  PopulationConfig background_cfg;
  background_cfg.count = 1500;
  background_cfg.seed = 2026;
  auto background = generate_population(background_cfg);
  const auto fleet_size = static_cast<std::uint32_t>(fleet.size());
  for (Satellite& sat : background) sat.id += fleet_size;

  std::vector<Satellite> all = fleet;
  all.insert(all.end(), background.begin(), background.end());
  std::printf("population: %zu constellation satellites + %zu background "
              "objects\n", fleet.size(), background.size());

  ScreeningConfig config;
  config.threshold_km = 5.0;  // operator screening volumes are generous
  config.t_end = 6.0 * 3600.0;

  const ScreeningReport report = screen(all, config, Variant::kHybrid);
  std::printf("hybrid screening: %zu conjunctions in %.2f s "
              "(%zu candidates, %zu pairs filtered by apogee/perigee)\n\n",
              report.conjunctions.size(), report.timings.total(),
              report.stats.candidates, report.stats.filtered_apogee_perigee);

  // Attribute conjunctions to constellation planes.
  auto plane_of = [&](std::uint32_t id) -> int {
    if (id < planes1 * per_plane1) return static_cast<int>(id / per_plane1);
    return -1;  // shell 2 or background
  };
  std::map<int, std::size_t> per_plane_hits;
  std::size_t fleet_involved = 0, fleet_vs_background = 0;
  for (const Conjunction& c : report.conjunctions) {
    const bool a_fleet = c.sat_a < fleet_size;
    const bool b_fleet = c.sat_b < fleet_size;
    if (a_fleet || b_fleet) ++fleet_involved;
    if (a_fleet != b_fleet) ++fleet_vs_background;
    if (const int p = plane_of(c.sat_a); p >= 0) ++per_plane_hits[p];
    if (const int p = plane_of(c.sat_b); p >= 0) ++per_plane_hits[p];
  }

  std::printf("conjunctions involving the fleet: %zu (of which %zu against "
              "background objects)\n", fleet_involved, fleet_vs_background);
  if (!per_plane_hits.empty()) {
    std::printf("shell-1 planes with conjunction traffic:\n");
    for (const auto& [plane, hits] : per_plane_hits) {
      std::printf("  plane %2d: %zu encounters\n", plane, hits);
    }
  }

  // The deepest approaches are what an operator would hand to the
  // follow-up risk assessment.
  auto sorted = report.conjunctions;
  std::sort(sorted.begin(), sorted.end(),
            [](const Conjunction& x, const Conjunction& y) { return x.pca < y.pca; });
  std::printf("\nclosest approaches:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    std::printf("  %5u - %5u : %.3f km at t = %.0f s\n", sorted[i].sat_a,
                sorted[i].sat_b, sorted[i].pca, sorted[i].tca);
  }
  return 0;
}
