/// End-to-end operational pipeline: TLE catalog -> ephemeris -> conjunction
/// screening -> assessment -> CCSDS-style CDM messages.
///
/// This chains every layer of the library the way a screening service
/// would: element sets arrive as TLEs, orbits are precomputed into an
/// interpolated ephemeris (so the millions of distance evaluations hit a
/// table instead of a Kepler solve), the grid variant screens the catalog,
/// and the reported conjunctions are worked up into collision
/// probabilities and conjunction data messages.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "assessment/cdm.hpp"
#include "core/grid_screener.hpp"
#include "orbit/geometry.hpp"
#include "population/generator.hpp"
#include "population/tle.hpp"
#include "propagation/ephemeris.hpp"
#include "util/constants.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace scod;

  // --- 1. A TLE catalog. Normally this is downloaded (e.g. Celestrak's
  // active-satellite list, the seed of the paper's population model); here
  // we synthesize one so the example is self-contained, writing and
  // re-reading a real TLE file through the parser.
  const std::string path = "/tmp/scod_example_catalog.tle";
  {
    const auto population = generate_population({800, 4242});
    std::ofstream out(path);
    for (const Satellite& sat : population) {
      TleRecord rec;
      rec.name = "SYNTH-" + std::to_string(sat.id);
      rec.catalog_number = 70000 + sat.id;
      rec.intl_designator = "26001A";
      rec.epoch_year = 2026;
      rec.epoch_day = 187.5;
      rec.elements = sat.elements;
      rec.mean_motion_rev_day =
          86400.0 / orbital_period(sat.elements);
      const auto [l1, l2] = format_tle(rec);
      out << rec.name << '\n' << l1 << '\n' << l2 << '\n';
    }
  }

  const std::vector<TleRecord> catalog = load_tle_file(path);
  std::vector<Satellite> satellites;
  std::vector<CdmObject> metadata;
  satellites.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    satellites.push_back(to_satellite(catalog[i], static_cast<std::uint32_t>(i)));
    CdmObject object;
    object.designator = catalog[i].name;
    object.hard_body_radius_km = 0.005;  // 5 m combined-size contribution
    object.position_sigma_km = 0.4;      // typical catalog-grade uncertainty
    metadata.push_back(object);
  }
  std::printf("loaded %zu TLEs from %s\n", catalog.size(), path.c_str());

  // --- 2. Precompute the ephemeris over the screening span.
  ScreeningConfig config;
  config.threshold_km = 5.0;
  config.t_end = 6.0 * 3600.0;

  Stopwatch watch;
  const auto ephemeris = EphemerisPropagator::integrate(
      satellites, config.t_begin, config.t_end, ForceModel{});
  std::printf("integrated J2 ephemeris: %zu knots/object, %.1f MiB, %.2f s\n",
              ephemeris.knot_count(),
              static_cast<double>(ephemeris.memory_bytes()) / (1 << 20),
              watch.seconds());

  // --- 3. Screen against the interpolated ephemeris.
  watch.restart();
  const ScreeningReport report = GridScreener().screen(ephemeris, config);
  std::printf("grid screening: %zu conjunctions from %zu candidates in %.2f s\n",
              report.conjunctions.size(), report.stats.candidates, watch.seconds());

  // --- 4. Assess and emit CDMs for the riskiest encounters.
  auto assessments = assess_conjunctions(ephemeris, report, metadata);
  std::sort(assessments.begin(), assessments.end(),
            [](const ConjunctionAssessment& x, const ConjunctionAssessment& y) {
              return x.collision_probability > y.collision_probability;
            });

  std::printf("\ntop encounters by collision probability:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, assessments.size()); ++i) {
    const ConjunctionAssessment& a = assessments[i];
    std::printf("\n--- CDM %zu -------------------------------------------\n", i + 1);
    write_cdm(std::cout, a, metadata[a.conjunction.sat_a],
              metadata[a.conjunction.sat_b]);
  }
  if (assessments.empty()) {
    std::printf("(no conjunctions in this span; rerun with a larger catalog "
                "or threshold)\n");
  }
  return 0;
}
