#include "model/powerlaw_fit.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace scod {

double PowerLawFit::predict(const std::vector<double>& inputs) const {
  double value = coefficient;
  for (std::size_t i = 0; i < exponents.size(); ++i) {
    value *= std::pow(inputs[i], exponents[i]);
  }
  return value;
}

std::vector<double> extrap_exponent_grid() {
  return {0.0,       1.0 / 4.0, 1.0 / 3.0, 1.0 / 2.0, 2.0 / 3.0, 3.0 / 4.0, 1.0,
          5.0 / 4.0, 4.0 / 3.0, 3.0 / 2.0, 5.0 / 3.0, 7.0 / 4.0, 2.0,       9.0 / 4.0,
          7.0 / 3.0, 5.0 / 2.0, 8.0 / 3.0, 11.0 / 4.0, 3.0};
}

namespace {

struct SearchState {
  const std::vector<std::vector<double>>* log_inputs;  // [obs][input]
  const std::vector<double>* log_outputs;
  const std::vector<std::vector<double>>* candidates;
  std::vector<double> exponents;
  std::vector<double> best_exponents;
  double best_rss = std::numeric_limits<double>::infinity();
  double best_log_k = 0.0;
};

void search(SearchState& state, std::size_t input) {
  if (input == state.candidates->size()) {
    // With exponents fixed, the optimal log-coefficient is the mean
    // residual; evaluate the RSS for this combination.
    const auto& log_inputs = *state.log_inputs;
    const auto& log_outputs = *state.log_outputs;
    const std::size_t n = log_outputs.size();

    double mean_resid = 0.0;
    for (std::size_t o = 0; o < n; ++o) {
      double model = 0.0;
      for (std::size_t i = 0; i < state.exponents.size(); ++i) {
        model += state.exponents[i] * log_inputs[o][i];
      }
      mean_resid += log_outputs[o] - model;
    }
    mean_resid /= static_cast<double>(n);

    double rss = 0.0;
    for (std::size_t o = 0; o < n; ++o) {
      double model = mean_resid;
      for (std::size_t i = 0; i < state.exponents.size(); ++i) {
        model += state.exponents[i] * log_inputs[o][i];
      }
      const double r = log_outputs[o] - model;
      rss += r * r;
    }
    if (rss < state.best_rss) {
      state.best_rss = rss;
      state.best_exponents = state.exponents;
      state.best_log_k = mean_resid;
    }
    return;
  }
  for (double candidate : (*state.candidates)[input]) {
    state.exponents[input] = candidate;
    search(state, input + 1);
  }
}

}  // namespace

PowerLawFit fit_power_law(const std::vector<FitObservation>& observations,
                          const std::vector<std::vector<double>>& exponent_candidates) {
  if (observations.empty()) throw std::invalid_argument("fit_power_law: no observations");
  const std::size_t input_count = exponent_candidates.size();

  std::vector<std::vector<double>> log_inputs;
  std::vector<double> log_outputs;
  log_inputs.reserve(observations.size());
  log_outputs.reserve(observations.size());
  for (const FitObservation& obs : observations) {
    if (obs.inputs.size() != input_count) {
      throw std::invalid_argument("fit_power_law: input arity mismatch");
    }
    if (obs.output <= 0.0) continue;  // log-space fit: skip zero observations
    std::vector<double> li(input_count);
    bool ok = true;
    for (std::size_t i = 0; i < input_count; ++i) {
      if (obs.inputs[i] <= 0.0) {
        ok = false;
        break;
      }
      li[i] = std::log(obs.inputs[i]);
    }
    if (!ok) continue;
    log_inputs.push_back(std::move(li));
    log_outputs.push_back(std::log(obs.output));
  }
  if (log_outputs.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 positive observations");
  }

  SearchState state;
  state.log_inputs = &log_inputs;
  state.log_outputs = &log_outputs;
  state.candidates = &exponent_candidates;
  state.exponents.resize(input_count, 0.0);
  search(state, 0);

  PowerLawFit fit;
  fit.coefficient = std::exp(state.best_log_k);
  fit.exponents = state.best_exponents;

  // R^2 in log space against the mean-output model.
  double mean_y = 0.0;
  for (double y : log_outputs) mean_y += y;
  mean_y /= static_cast<double>(log_outputs.size());
  double tss = 0.0;
  for (double y : log_outputs) tss += (y - mean_y) * (y - mean_y);
  fit.r_squared = tss > 0.0 ? 1.0 - state.best_rss / tss : 1.0;
  return fit;
}

PowerLawFit fit_power_law(const std::vector<FitObservation>& observations,
                          std::size_t input_count) {
  return fit_power_law(observations,
                       std::vector<std::vector<double>>(input_count, extrap_exponent_grid()));
}

}  // namespace scod
