#pragma once

#include <cstddef>

namespace scod {

/// Empirical model of the expected candidate count, used to size the
/// conjunction hash map up front (Section V-B). The paper obtains these
/// models with Extra-P; Eqs. (3) and (4) give
///
///   grid:   c' = 2.32e-9 * n^2 * s^(4/3) * t * d^(7/4)
///   hybrid: c' = 2.14e-9 * n^2 * s^(5/3) * t * d
///
/// with n the satellite count, s the seconds per sample, t the simulated
/// time span [s] and d the screening threshold [km].
struct ConjunctionCountModel {
  double coefficient = 0.0;
  double satellites_exponent = 2.0;
  double sps_exponent = 1.0;
  double span_exponent = 1.0;
  double threshold_exponent = 1.0;

  double predict(double satellites, double seconds_per_sample, double span_seconds,
                 double threshold_km) const;

  /// Eq. (3), the paper's fitted model for the grid-based variant.
  static ConjunctionCountModel paper_grid();

  /// Eq. (4), the paper's fitted model for the hybrid variant.
  static ConjunctionCountModel paper_hybrid();
};

/// The sizing rule around the model: "we ensure that at least 10,000
/// elements fit into the conjunction hash map ... we double the hash map
/// size again" (one factor of two; the second factor of the paper is the
/// slot-table headroom, which CandidateSet allocates internally).
std::size_t candidate_capacity_from_model(const ConjunctionCountModel& model,
                                          double satellites, double seconds_per_sample,
                                          double span_seconds, double threshold_km);

}  // namespace scod
