#include "model/conjunction_model.hpp"

#include <algorithm>
#include <cmath>

namespace scod {

double ConjunctionCountModel::predict(double satellites, double seconds_per_sample,
                                      double span_seconds, double threshold_km) const {
  return coefficient * std::pow(satellites, satellites_exponent) *
         std::pow(seconds_per_sample, sps_exponent) *
         std::pow(span_seconds, span_exponent) *
         std::pow(threshold_km, threshold_exponent);
}

ConjunctionCountModel ConjunctionCountModel::paper_grid() {
  return {2.32e-9, 2.0, 4.0 / 3.0, 1.0, 7.0 / 4.0};
}

ConjunctionCountModel ConjunctionCountModel::paper_hybrid() {
  return {2.14e-9, 2.0, 5.0 / 3.0, 1.0, 1.0};
}

std::size_t candidate_capacity_from_model(const ConjunctionCountModel& model,
                                          double satellites, double seconds_per_sample,
                                          double span_seconds, double threshold_km) {
  const double predicted =
      model.predict(satellites, seconds_per_sample, span_seconds, threshold_km);
  const double base = std::max(predicted, 10000.0);
  return static_cast<std::size_t>(std::ceil(base * 2.0));
}

}  // namespace scod
