#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scod {

/// One measurement for the performance-model fit: the values of the model
/// inputs (e.g. n, s_ps, t, d) and the observed output (candidate count,
/// runtime, ...). All values must be strictly positive — the fit works in
/// log space.
struct FitObservation {
  std::vector<double> inputs;
  double output = 0.0;
};

/// A fitted multiplicative power-law model
/// output = coefficient * prod_i inputs[i]^exponents[i].
struct PowerLawFit {
  double coefficient = 0.0;
  std::vector<double> exponents;
  double r_squared = 0.0;  ///< in log space

  double predict(const std::vector<double>& inputs) const;
};

/// Default exponent search grid: Extra-P's performance-model normal form
/// uses rational exponents with small denominators; this grid covers
/// multiples of 1/4 and 1/3 in [0, 3], which contains all exponents the
/// paper reports in Eqs. (3)-(4).
std::vector<double> extrap_exponent_grid();

/// Fits the power-law model by exhaustive search over the per-input
/// candidate exponent grids (the Extra-P approach for this model family):
/// for each exponent combination the optimal coefficient has a closed form
/// in log space; the combination with the smallest residual sum of squares
/// wins. Throws std::invalid_argument on empty/degenerate input.
PowerLawFit fit_power_law(const std::vector<FitObservation>& observations,
                          const std::vector<std::vector<double>>& exponent_candidates);

/// Convenience overload: the same candidate grid for every input.
PowerLawFit fit_power_law(const std::vector<FitObservation>& observations,
                          std::size_t input_count);

}  // namespace scod
