#pragma once

#include <cstddef>
#include <cstdint>

#include "model/conjunction_model.hpp"

namespace scod {

/// Bytes per record of the data structures entering the memory model of
/// Section V-B. Defaults match this library's concrete structs.
struct MemoryLayout {
  std::size_t satellite_bytes = 56;      ///< a_s: one Satellite
  std::size_t kepler_cache_bytes = 112;  ///< a_k: one TwoBodyCache
  std::size_t grid_slot_bytes = 16;      ///< one grid hash-set slot (key+head)
  std::size_t grid_entry_bytes = 32;     ///< a_l: one linked-list entry
  std::size_t candidate_slot_bytes = 8;  ///< one conjunction-map slot
  double grid_slot_factor = 2.0;         ///< slots per satellite in the grid set
};

/// Inputs of the sample-parallelism plan.
struct SizingRequest {
  std::size_t satellites = 0;          ///< n
  double span_seconds = 0.0;           ///< t
  double seconds_per_sample = 1.0;     ///< s_ps
  std::size_t candidate_capacity = 0;  ///< c, from candidate_capacity_from_model()
  std::uint64_t memory_budget = 0;     ///< m [bytes]
  MemoryLayout layout;
};

/// The paper's equations: o = t / s_ps total samples, p parallel samples
/// per round from the free memory, r_c = o / p rounds.
struct SizingPlan {
  std::size_t total_samples = 0;     ///< o
  std::size_t parallel_samples = 0;  ///< p (>= 1 when fits)
  std::size_t rounds = 0;            ///< r_c
  std::uint64_t fixed_bytes = 0;     ///< a_s + a_k + a_ch
  std::uint64_t per_grid_bytes = 0;  ///< a_gh + a_l
  bool fits = false;                 ///< false when even p = 1 exceeds m
};

SizingPlan plan_samples(const SizingRequest& request);

/// Memory the conjunction hash map will occupy for a given capacity
/// (slot table only; CandidateSet keys are self-contained).
std::uint64_t candidate_map_bytes(std::size_t capacity, const MemoryLayout& layout);

/// The automatic seconds-per-sample adjustment of Section V-C: when the
/// conjunction hash map predicted by the model does not fit into the
/// memory budget, reduce s_ps (smaller cells produce fewer candidate
/// pairs; the paper's runs drop from 9 s to 4 s and 1 s at 512k/1024k
/// objects). Returns the adjusted request; `changed` reports whether any
/// reduction was necessary, `feasible` whether even `min_sps` fits.
struct AutoAdjustResult {
  double seconds_per_sample = 0.0;
  std::size_t candidate_capacity = 0;
  bool changed = false;
  bool feasible = false;
};

AutoAdjustResult auto_adjust_sps(const ConjunctionCountModel& model,
                                 SizingRequest request, double threshold_km,
                                 double min_sps = 1.0);

}  // namespace scod
