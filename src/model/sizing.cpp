#include "model/sizing.hpp"

#include <algorithm>
#include <cmath>

namespace scod {

namespace {
std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

std::uint64_t candidate_map_bytes(std::size_t capacity, const MemoryLayout& layout) {
  // CandidateSet allocates round_up_pow2(2 * capacity) slots.
  return round_up_pow2(2 * static_cast<std::uint64_t>(capacity)) *
         layout.candidate_slot_bytes;
}

SizingPlan plan_samples(const SizingRequest& request) {
  SizingPlan plan;
  // o = t / s_ps sample intervals; +1 so both span endpoints are sampled
  // (the no-skip guarantee of Eq. 1 needs a sample within s_ps of every
  // instant of the span, including t_end).
  plan.total_samples = static_cast<std::size_t>(
      std::ceil(request.span_seconds / request.seconds_per_sample)) + 1;
  plan.total_samples = std::max<std::size_t>(plan.total_samples, 2);

  const std::uint64_t n = request.satellites;
  plan.fixed_bytes = n * (request.layout.satellite_bytes + request.layout.kepler_cache_bytes) +
                     candidate_map_bytes(request.candidate_capacity, request.layout);

  const std::uint64_t grid_slots = round_up_pow2(
      static_cast<std::uint64_t>(request.layout.grid_slot_factor * static_cast<double>(n)) + 1);
  plan.per_grid_bytes =
      grid_slots * request.layout.grid_slot_bytes + n * request.layout.grid_entry_bytes;

  if (plan.fixed_bytes + plan.per_grid_bytes > request.memory_budget) {
    plan.fits = false;
    plan.parallel_samples = 0;
    plan.rounds = 0;
    return plan;
  }

  plan.fits = true;
  const std::uint64_t free_for_grids = request.memory_budget - plan.fixed_bytes;
  plan.parallel_samples = static_cast<std::size_t>(
      std::min<std::uint64_t>(free_for_grids / plan.per_grid_bytes, plan.total_samples));
  plan.parallel_samples = std::max<std::size_t>(plan.parallel_samples, 1);
  plan.rounds = (plan.total_samples + plan.parallel_samples - 1) / plan.parallel_samples;
  return plan;
}

AutoAdjustResult auto_adjust_sps(const ConjunctionCountModel& model,
                                 SizingRequest request, double threshold_km,
                                 double min_sps) {
  AutoAdjustResult result;
  result.seconds_per_sample = request.seconds_per_sample;

  for (;;) {
    result.candidate_capacity = candidate_capacity_from_model(
        model, static_cast<double>(request.satellites), result.seconds_per_sample,
        request.span_seconds, threshold_km);
    SizingRequest trial = request;
    trial.seconds_per_sample = result.seconds_per_sample;
    trial.candidate_capacity = result.candidate_capacity;
    if (plan_samples(trial).fits) {
      result.feasible = true;
      return result;
    }
    // The paper reduces s_ps in whole seconds (9 -> 4 -> 1); halving with a
    // 1-second floor matches that trajectory while staying scale-free.
    const double next = std::max(min_sps, std::floor(result.seconds_per_sample / 2.0));
    if (next >= result.seconds_per_sample) {
      result.feasible = false;  // already at the floor and still too large
      return result;
    }
    result.seconds_per_sample = next;
    result.changed = true;
  }
}

}  // namespace scod
