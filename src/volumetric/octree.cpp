#include "volumetric/octree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scod {

Octree::Octree(std::vector<Point> points, double half_extent,
               std::size_t leaf_capacity, int max_depth)
    : points_(std::move(points)),
      root_center_{0.0, 0.0, 0.0},
      root_half_(half_extent),
      leaf_capacity_(std::max<std::size_t>(leaf_capacity, 1)),
      max_depth_(max_depth) {
  if (!(half_extent > 0.0)) throw std::invalid_argument("Octree: bad extent");
  if (points_.empty()) return;
  nodes_.reserve(points_.size() / leaf_capacity_ * 2 + 16);
  nodes_.push_back({kLeaf, 0, static_cast<std::uint32_t>(points_.size())});
  subdivide(0, root_center_, root_half_, 0);
}

void Octree::subdivide(std::uint32_t node_index, const Vec3& center, double half,
                       int depth) {
  // Copy the range out: nodes_ may reallocate below.
  const std::uint32_t first = nodes_[node_index].first;
  const std::uint32_t count = nodes_[node_index].count;
  if (count <= leaf_capacity_ || depth >= max_depth_) return;

  const auto octant_of = [&](const Point& p) {
    return (p.position.x >= center.x ? 1 : 0) | (p.position.y >= center.y ? 2 : 0) |
           (p.position.z >= center.z ? 4 : 0);
  };

  // In-place counting sort of [first, first + count) into octant order.
  std::uint32_t counts[8] = {};
  for (std::uint32_t i = first; i < first + count; ++i) ++counts[octant_of(points_[i])];

  std::uint32_t starts[8];
  std::uint32_t offset = first;
  for (int o = 0; o < 8; ++o) {
    starts[o] = offset;
    offset += counts[o];
  }
  std::uint32_t cursors[8];
  std::copy(starts, starts + 8, cursors);
  for (int o = 0; o < 8; ++o) {
    while (cursors[o] < starts[o] + counts[o]) {
      const int target = octant_of(points_[cursors[o]]);
      if (target == o) {
        ++cursors[o];
      } else {
        std::swap(points_[cursors[o]], points_[cursors[target]]);
        ++cursors[target];
      }
    }
  }

  // Phase 1: allocate the 8 children contiguously (the search relies on
  // children + octant indexing), then phase 2: subdivide each child.
  const auto child_base = static_cast<std::uint32_t>(nodes_.size());
  for (int o = 0; o < 8; ++o) {
    nodes_.push_back({kLeaf, starts[o], counts[o]});
  }
  nodes_[node_index].children = child_base;

  const double child_half = half / 2.0;
  for (int o = 0; o < 8; ++o) {
    const Vec3 child_center{center.x + ((o & 1) ? child_half : -child_half),
                            center.y + ((o & 2) ? child_half : -child_half),
                            center.z + ((o & 4) ? child_half : -child_half)};
    subdivide(child_base + o, child_center, child_half, depth + 1);
  }
}

std::vector<std::uint32_t> Octree::within(const Vec3& query, double radius) const {
  std::vector<std::uint32_t> out;
  for_each_within(query, radius, [&](const Point& p) { out.push_back(p.id); });
  return out;
}

}  // namespace scod
