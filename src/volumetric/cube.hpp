#pragma once

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The Cube method (Liou, Kessler, Matney & Stansbery 2003) — the
/// volumetric statistical approach the paper contrasts its deterministic
/// variants with (Section II): "divides the space into quadratic volumes
/// and uses randomized object positions on their orbits to fill the
/// volumes". Runtime is linear in the object count, but the output is a
/// statistical collision *rate*, not deterministic conjunction events —
/// and it is "not suited for the simulation of large satellite
/// constellations" (Lewis et al. 2019), which the tests demonstrate.
///
/// Estimator: at each random sample time the objects are binned into
/// cubes of volume dU. Kinetic-theory collision rate for a co-resident
/// pair with relative speed v_rel and combined cross-section sigma:
///
///     rate_ij = v_rel * sigma / dU        [1/s while co-resident]
///
/// Averaging the co-residency indicator over sample times and multiplying
/// by the span gives the expected number of collisions per pair; the
/// population estimate is the sum.
struct CubeConfig {
  double cube_size_km = 10.0;
  /// Number of random sample epochs drawn uniformly from the span.
  std::size_t samples = 2000;
  /// Combined collision cross-section radius [km]; sigma = pi * r^2.
  double object_radius_km = 0.005;
  std::uint64_t seed = 1;
  ThreadPool* pool = nullptr;  ///< nullptr = global pool
};

/// Expected collisions of one pair over the analyzed span.
struct CubePairRate {
  std::uint32_t sat_a = 0;
  std::uint32_t sat_b = 0;
  std::size_t co_residencies = 0;  ///< samples where the pair shared a cube
  double expected_collisions = 0.0;
};

struct CubeResult {
  /// Expected collisions across the whole population over the span.
  double expected_collisions = 0.0;
  /// Mean number of co-resident pairs per sample (activity measure).
  double mean_pairs_per_sample = 0.0;
  /// Per-pair breakdown, sorted by expected collisions (descending).
  std::vector<CubePairRate> pair_rates;
  std::size_t samples = 0;
};

/// Runs the Cube estimator over [t_begin, t_end]. Deterministic in
/// config.seed (sample times are drawn before the parallel loop).
CubeResult cube_collision_estimate(const Propagator& propagator, double t_begin,
                                   double t_end, const CubeConfig& config = {});

}  // namespace scod
