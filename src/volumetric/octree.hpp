#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace scod {

/// Static octree over a point set with fixed-radius neighbour queries —
/// the second tree structure the paper's Section IV-A rules out for the
/// screening problem ("grids ... are superior to data structures such as
/// octrees or Kd-trees. These must be recreated each time an object
/// moves"). Kept, like the k-d tree, as an ablation baseline so
/// bench_micro_spatial can put numbers on that argument.
///
/// Implementation: pointer-free, breadth-allocated nodes over a cubic
/// root volume; leaves hold up to `leaf_capacity` points; subdivision
/// stops at `max_depth`.
class Octree {
 public:
  struct Point {
    Vec3 position;
    std::uint32_t id = 0;
  };

  /// Builds the tree over the given points. `half_extent` is the root
  /// cube's half size; points outside are clamped into the root volume.
  Octree(std::vector<Point> points, double half_extent,
         std::size_t leaf_capacity = 8, int max_depth = 12);

  std::size_t size() const { return points_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Calls `visit(point)` for every stored point within `radius`
  /// (inclusive) of `query`.
  template <typename Visitor>
  void for_each_within(const Vec3& query, double radius, Visitor&& visit) const {
    if (nodes_.empty()) return;
    search(0, root_center_, root_half_, query, radius * radius, visit);
  }

  std::vector<std::uint32_t> within(const Vec3& query, double radius) const;

 private:
  struct Node {
    /// Index of the first of 8 children, or kLeaf.
    std::uint32_t children = kLeaf;
    /// Leaf payload: range [first, first + count) in points_.
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };
  static constexpr std::uint32_t kLeaf = ~0u;

  void subdivide(std::uint32_t node_index, const Vec3& center, double half,
                 int depth);

  template <typename Visitor>
  void search(std::uint32_t node_index, const Vec3& center, double half,
              const Vec3& query, double radius2, Visitor&& visit) const {
    const Node& node = nodes_[node_index];
    if (node.children == kLeaf) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if ((points_[i].position - query).norm2() <= radius2) visit(points_[i]);
      }
      return;
    }
    const double child_half = half / 2.0;
    for (int octant = 0; octant < 8; ++octant) {
      const Vec3 child_center{center.x + ((octant & 1) ? child_half : -child_half),
                              center.y + ((octant & 2) ? child_half : -child_half),
                              center.z + ((octant & 4) ? child_half : -child_half)};
      // Prune children whose cube cannot intersect the query ball.
      const double dx = std::max(0.0, std::abs(query.x - child_center.x) - child_half);
      const double dy = std::max(0.0, std::abs(query.y - child_center.y) - child_half);
      const double dz = std::max(0.0, std::abs(query.z - child_center.z) - child_half);
      if (dx * dx + dy * dy + dz * dz > radius2) continue;
      search(node.children + octant, child_center, child_half, query, radius2, visit);
    }
  }

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  Vec3 root_center_;
  double root_half_ = 0.0;
  std::size_t leaf_capacity_;
  int max_depth_;
};

}  // namespace scod
