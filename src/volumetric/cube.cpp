#include "volumetric/cube.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>

#include "spatial/cell.hpp"
#include "spatial/grid_hash_set.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {

CubeResult cube_collision_estimate(const Propagator& propagator, double t_begin,
                                   double t_end, const CubeConfig& config) {
  if (!(t_begin < t_end)) throw std::invalid_argument("cube: empty span");
  if (!(config.cube_size_km > 0.0)) throw std::invalid_argument("cube: bad cube size");
  if (config.samples == 0) throw std::invalid_argument("cube: zero samples");

  const std::size_t n = propagator.size();
  CubeResult result;
  result.samples = config.samples;
  if (n < 2) return result;

  // Random sample epochs, drawn up-front so the parallel loop stays
  // deterministic regardless of scheduling.
  Rng rng(config.seed);
  std::vector<double> times(config.samples);
  for (double& t : times) t = rng.uniform(t_begin, t_end);

  const double span = t_end - t_begin;
  const double du = config.cube_size_km * config.cube_size_km * config.cube_size_km;
  const double sigma = kPi * config.object_radius_km * config.object_radius_km;
  // Each co-residency sample contributes v_rel * sigma / dU [1/s],
  // averaged over samples and integrated over the span.
  const double weight = sigma / du * span / static_cast<double>(config.samples);

  ThreadPool& pool = config.pool != nullptr ? *config.pool : global_thread_pool();
  const CellIndexer indexer(config.cube_size_km);

  struct PairAccumulator {
    std::size_t co_residencies = 0;
    double expected = 0.0;
  };
  std::map<std::uint64_t, PairAccumulator> pair_totals;
  std::mutex merge_mutex;
  std::atomic<std::uint64_t> total_pair_samples{0};
  // expected_collisions accumulated in fixed point (1e-15 units) so the
  // reduction is associative and deterministic across schedules.
  std::atomic<std::uint64_t> total_expected_micro{0};

  pool.parallel_for_ranges(config.samples, [&](std::size_t begin, std::size_t end) {
    GridHashSet cubes(n);
    std::map<std::uint64_t, PairAccumulator> local;

    for (std::size_t s = begin; s < end; ++s) {
      const double t = times[s];
      cubes.clear();
      for (std::size_t i = 0; i < n; ++i) {
        cubes.insert(indexer.key_of(propagator.position(i, t)),
                     static_cast<std::uint32_t>(i), {});
      }
      // Unlike the screening grid, the Cube method only pairs objects in
      // the SAME cube (Liou et al.): the cube size itself encodes the
      // proximity scale of the estimator.
      for (std::size_t slot = 0; slot < cubes.slot_count(); ++slot) {
        if (cubes.slot_key(slot) == kEmptySlotKey) continue;
        for (std::uint32_t ea = cubes.slot_head(slot); ea != kNoEntry;
             ea = cubes.entry(ea).next) {
          for (std::uint32_t eb = cubes.entry(ea).next; eb != kNoEntry;
               eb = cubes.entry(eb).next) {
            const std::uint32_t a = cubes.entry(ea).satellite;
            const std::uint32_t b = cubes.entry(eb).satellite;
            const double v_rel = (propagator.state(a, t).velocity -
                                  propagator.state(b, t).velocity).norm();
            const double expected = v_rel * weight;
            auto& acc = local[(static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                              std::max(a, b)];
            acc.co_residencies += 1;
            acc.expected += expected;
            total_pair_samples.fetch_add(1, std::memory_order_relaxed);
            total_expected_micro.fetch_add(
                static_cast<std::uint64_t>(expected * 1e15),
                std::memory_order_relaxed);
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (const auto& [key, acc] : local) {
      auto& total = pair_totals[key];
      total.co_residencies += acc.co_residencies;
      total.expected += acc.expected;
    }
  });

  result.expected_collisions =
      static_cast<double>(total_expected_micro.load()) * 1e-15;
  result.mean_pairs_per_sample = static_cast<double>(total_pair_samples.load()) /
                                 static_cast<double>(config.samples);
  result.pair_rates.reserve(pair_totals.size());
  for (const auto& [key, acc] : pair_totals) {
    CubePairRate rate;
    rate.sat_a = static_cast<std::uint32_t>(key >> 32);
    rate.sat_b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    rate.co_residencies = acc.co_residencies;
    rate.expected_collisions = acc.expected;
    result.pair_rates.push_back(rate);
  }
  std::sort(result.pair_rates.begin(), result.pair_rates.end(),
            [](const CubePairRate& x, const CubePairRate& y) {
              if (x.expected_collisions != y.expected_collisions) {
                return x.expected_collisions > y.expected_collisions;
              }
              return std::make_pair(x.sat_a, x.sat_b) < std::make_pair(y.sat_a, y.sat_b);
            });
  return result;
}

}  // namespace scod
