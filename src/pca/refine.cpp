#include "pca/refine.hpp"

#include <algorithm>

namespace scod {

double grid_search_radius(double cell_size, double slower_speed_km_s) {
  return 2.0 * cell_size / slower_speed_km_s;
}

std::optional<Encounter> refine_on_interval(const Propagator& propagator,
                                            std::uint32_t sat_a, std::uint32_t sat_b,
                                            double t_lo, double t_hi,
                                            const RefineOptions& options) {
  return refine_on_interval_fn(
      [&](double t) { return propagator.distance(sat_a, sat_b, t); }, t_lo, t_hi,
      options);
}

std::optional<Encounter> refine_candidate(const Propagator& propagator,
                                          std::uint32_t sat_a, std::uint32_t sat_b,
                                          double center, double radius,
                                          double t_min, double t_max,
                                          const RefineOptions& options) {
  return refine_candidate_fn(
      [&](double t) { return propagator.distance(sat_a, sat_b, t); }, center, radius,
      t_min, t_max, options);
}

std::vector<Encounter> merge_encounters(std::vector<Encounter> encounters,
                                        double time_tolerance) {
  std::sort(encounters.begin(), encounters.end(),
            [](const Encounter& x, const Encounter& y) { return x.tca < y.tca; });
  std::vector<Encounter> merged;
  for (const Encounter& e : encounters) {
    if (!merged.empty() && e.tca - merged.back().tca <= time_tolerance) {
      if (e.pca < merged.back().pca) merged.back() = e;
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

}  // namespace scod
