#include "pca/refine.hpp"

#include <algorithm>
#include <cmath>

#include "pca/brent.hpp"

namespace scod {

double grid_search_radius(double cell_size, double slower_speed_km_s) {
  return 2.0 * cell_size / slower_speed_km_s;
}

std::optional<Encounter> refine_on_interval(const Propagator& propagator,
                                            std::uint32_t sat_a, std::uint32_t sat_b,
                                            double t_lo, double t_hi,
                                            const RefineOptions& options) {
  if (!(t_lo < t_hi)) return std::nullopt;
  const auto distance = [&](double t) { return propagator.distance(sat_a, sat_b, t); };

  const MinimizeResult min =
      brent_minimize(distance, t_lo, t_hi, options.time_tolerance, options.max_iterations);

  // Boundary handling (Section IV-C): when the search stops at an interval
  // edge, probe slightly beyond it. If the distance keeps falling, the
  // local minimum lies outside this interval — discard; the neighbouring
  // interval's search will find it. Otherwise the edge really is the
  // (clamped) minimum.
  const double radius = 0.5 * (t_hi - t_lo);
  const double probe = std::max(options.edge_probe_fraction * radius,
                                4.0 * options.time_tolerance);
  const double edge_tol = 2.0 * options.time_tolerance;

  if (min.x - t_lo <= edge_tol) {
    if (distance(t_lo - probe) < min.value) return std::nullopt;
  } else if (t_hi - min.x <= edge_tol) {
    if (distance(t_hi + probe) < min.value) return std::nullopt;
  }

  return Encounter{min.x, min.value};
}

std::optional<Encounter> refine_candidate(const Propagator& propagator,
                                          std::uint32_t sat_a, std::uint32_t sat_b,
                                          double center, double radius,
                                          double t_min, double t_max,
                                          const RefineOptions& options) {
  const double t_lo = std::max(center - radius, t_min);
  const double t_hi = std::min(center + radius, t_max);
  if (!(t_lo < t_hi)) return std::nullopt;

  const auto distance = [&](double t) { return propagator.distance(sat_a, sat_b, t); };
  const MinimizeResult min =
      brent_minimize(distance, t_lo, t_hi, options.time_tolerance, options.max_iterations);

  const double probe =
      std::max(options.edge_probe_fraction * radius, 4.0 * options.time_tolerance);
  const double edge_tol = 2.0 * options.time_tolerance;

  // At the simulation-span boundary the minimum cannot be discarded — there
  // is no neighbouring interval beyond the span; report the clamped value.
  if (min.x - t_lo <= edge_tol && t_lo > t_min) {
    if (distance(std::max(t_lo - probe, t_min)) < min.value) return std::nullopt;
  } else if (t_hi - min.x <= edge_tol && t_hi < t_max) {
    if (distance(std::min(t_hi + probe, t_max)) < min.value) return std::nullopt;
  }

  return Encounter{min.x, min.value};
}

std::vector<Encounter> merge_encounters(std::vector<Encounter> encounters,
                                        double time_tolerance) {
  std::sort(encounters.begin(), encounters.end(),
            [](const Encounter& x, const Encounter& y) { return x.tca < y.tca; });
  std::vector<Encounter> merged;
  for (const Encounter& e : encounters) {
    if (!merged.empty() && e.tca - merged.back().tca <= time_tolerance) {
      if (e.pca < merged.back().pca) merged.back() = e;
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

}  // namespace scod
