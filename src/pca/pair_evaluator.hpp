#pragma once

#include <cstdint>

#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"

namespace scod {

/// Devirtualized objective function for the Brent refinement (Section
/// IV-C). The legacy path pays two virtual dispatches (Propagator::position
/// -> KeplerSolver::eccentric_anomaly) plus a cache-line-scattered
/// TwoBodyCache load for BOTH satellites on EVERY objective evaluation —
/// and Brent evaluates the objective dozens of times per candidate. This
/// evaluator snapshots both satellites' cache entries and binds the
/// concrete ContourKeplerSolver once per candidate, so each evaluation is a
/// direct call on local data. It routes through the same
/// detail::cache_position/cache_state helpers as TwoBodyPropagator, so the
/// refined TCAs/PCAs are unchanged.
class PairStateEvaluator {
 public:
  PairStateEvaluator(const TwoBodyPropagator& propagator,
                     const ContourKeplerSolver& solver, std::uint32_t sat_a,
                     std::uint32_t sat_b)
      : cache_a_(propagator.cache(sat_a)),
        cache_b_(propagator.cache(sat_b)),
        solver_(&solver) {}

  /// Pairwise distance [km] at `time` — the Brent objective.
  double distance(double time) const {
    return detail::cache_position(cache_a_, *solver_, time)
        .distance(detail::cache_position(cache_b_, *solver_, time));
  }

  /// Orbital speeds [km/s], for the cell-crossing search radius.
  double speed_a(double time) const {
    return detail::cache_state(cache_a_, *solver_, time).velocity.norm();
  }
  double speed_b(double time) const {
    return detail::cache_state(cache_b_, *solver_, time).velocity.norm();
  }

 private:
  TwoBodyCache cache_a_;
  TwoBodyCache cache_b_;
  const ContourKeplerSolver* solver_;
};

/// Resolves the concrete (TwoBodyPropagator, ContourKeplerSolver) pair
/// behind an abstract Propagator — once per refinement phase, so the
/// per-candidate hot loop never touches RTTI. When the screener runs a
/// different propagator or solver, `available()` is false and callers keep
/// the virtual path.
struct RefineFastPath {
  const TwoBodyPropagator* propagator = nullptr;
  const ContourKeplerSolver* solver = nullptr;

  static RefineFastPath probe(const Propagator& p) {
    RefineFastPath fast;
    fast.propagator = dynamic_cast<const TwoBodyPropagator*>(&p);
    if (fast.propagator != nullptr) {
      fast.solver = dynamic_cast<const ContourKeplerSolver*>(&fast.propagator->solver());
      if (fast.solver == nullptr) fast.propagator = nullptr;
    }
    return fast;
  }

  bool available() const { return solver != nullptr; }

  PairStateEvaluator pair(std::uint32_t sat_a, std::uint32_t sat_b) const {
    return {*propagator, *solver, sat_a, sat_b};
  }
};

}  // namespace scod
