#pragma once

#include <cmath>
#include <utility>

namespace scod {

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;       ///< abscissa of the minimum
  double value = 0.0;   ///< f(x)
  int iterations = 0;
  bool converged = false;
};

/// Brent's method for minimizing a unimodal scalar function on [a, b]
/// (Brent 1971) — golden-section steps with successive parabolic
/// interpolation whenever the parabola is trustworthy. The paper uses the
/// Boost implementation for its PCA/TCA search; this is a from-scratch
/// implementation of the same algorithm, validated against analytic minima
/// in the test suite.
///
/// `xtol` is the absolute abscissa tolerance (for TCA searches, seconds).
template <typename F>
MinimizeResult brent_minimize(F&& f, double a, double b, double xtol = 1e-8,
                              int max_iterations = 100) {
  if (a > b) std::swap(a, b);
  constexpr double kGolden = 0.3819660112501051;  // 2 - golden ratio
  constexpr double kEps = 1e-12;                  // relative floor on tolerance

  double x = a + kGolden * (b - a);  // best point so far
  double w = x;                      // second best
  double v = x;                      // previous second best
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0;  // last step
  double e = 0.0;  // step before last

  MinimizeResult result;
  for (int it = 0; it < max_iterations; ++it) {
    const double mid = 0.5 * (a + b);
    const double tol1 = xtol + kEps * std::abs(x);
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - mid) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      result.iterations = it;
      break;
    }

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Fit a parabola through (x, fx), (w, fw), (v, fv).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      // Accept the parabolic step only if it falls inside the bracket and
      // moves less than half the step before last.
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (mid > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= mid) ? a - x : b - x;
      d = kGolden * e;
    }

    const double u = (std::abs(d) >= tol1) ? x + d : x + (d > 0.0 ? tol1 : -tol1);
    const double fu = f(u);

    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
    result.iterations = it + 1;
  }

  result.x = x;
  result.value = fx;
  return result;
}

/// Golden-section search: the reliable-but-slow half of Brent's method,
/// kept as an independent reference implementation for the property tests
/// (both must agree on unimodal functions).
template <typename F>
MinimizeResult golden_section_minimize(F&& f, double a, double b, double xtol = 1e-8,
                                       int max_iterations = 200) {
  if (a > b) std::swap(a, b);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);

  MinimizeResult result;
  int it = 0;
  for (; it < max_iterations && (b - a) > xtol; ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  result.converged = (b - a) <= xtol;
  result.iterations = it;
  if (f1 < f2) {
    result.x = x1;
    result.value = f1;
  } else {
    result.x = x2;
    result.value = f2;
  }
  return result;
}

}  // namespace scod
