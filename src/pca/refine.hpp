#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/telemetry.hpp"
#include "pca/brent.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// A refined close approach of a satellite pair: the Time of Closest
/// Approach (TCA) and the distance at that time (PCA). See Fig. 2 of the
/// paper — an encounter is one local minimum of the pairwise distance.
struct Encounter {
  double tca = 0.0;  ///< [s] past epoch
  double pca = 0.0;  ///< [km]
};

/// Options for the Brent-based TCA/PCA search (Section IV-C).
struct RefineOptions {
  /// Absolute time tolerance of the Brent search [s].
  double time_tolerance = 1e-4;
  /// Maximum Brent iterations per candidate.
  int max_iterations = 80;
  /// How far beyond an interval edge to probe when the minimum lands on
  /// the boundary, as a fraction of the interval radius.
  double edge_probe_fraction = 0.05;
};

/// Radius of the search interval for a grid candidate: "t is the time it
/// takes the slower of both satellites to cross two cells" (Section IV-C).
double grid_search_radius(double cell_size, double slower_speed_km_s);

/// Functor-based core of refine_on_interval: `distance(t)` is the pairwise
/// distance objective. Exposed as a template so the screeners can pass a
/// devirtualized PairStateEvaluator closure instead of paying two virtual
/// dispatches per Brent evaluation; the Propagator overloads below wrap it.
template <typename DistanceFn>
std::optional<Encounter> refine_on_interval_fn(DistanceFn&& distance, double t_lo,
                                               double t_hi,
                                               const RefineOptions& options = {}) {
  if (!(t_lo < t_hi)) return std::nullopt;

  const MinimizeResult min =
      brent_minimize(distance, t_lo, t_hi, options.time_tolerance, options.max_iterations);
  obs::count(obs::Counter::kRefinements);
  obs::count(obs::Counter::kBrentIterations,
             static_cast<std::uint64_t>(min.iterations));

  // Boundary handling (Section IV-C): when the search stops at an interval
  // edge, probe slightly beyond it. If the distance keeps falling, the
  // local minimum lies outside this interval — discard; the neighbouring
  // interval's search will find it. Otherwise the edge really is the
  // (clamped) minimum.
  const double radius = 0.5 * (t_hi - t_lo);
  const double probe = std::max(options.edge_probe_fraction * radius,
                                4.0 * options.time_tolerance);
  const double edge_tol = 2.0 * options.time_tolerance;

  if (min.x - t_lo <= edge_tol) {
    if (distance(t_lo - probe) < min.value) {
      obs::count(obs::Counter::kEdgeDiscards);
      return std::nullopt;
    }
  } else if (t_hi - min.x <= edge_tol) {
    if (distance(t_hi + probe) < min.value) {
      obs::count(obs::Counter::kEdgeDiscards);
      return std::nullopt;
    }
  }

  return Encounter{min.x, min.value};
}

/// Functor-based core of refine_candidate (grid-style search interval
/// [center - radius, center + radius] clamped to the simulation span).
template <typename DistanceFn>
std::optional<Encounter> refine_candidate_fn(DistanceFn&& distance, double center,
                                             double radius, double t_min, double t_max,
                                             const RefineOptions& options = {}) {
  const double t_lo = std::max(center - radius, t_min);
  const double t_hi = std::min(center + radius, t_max);
  if (!(t_lo < t_hi)) return std::nullopt;
  if (center - radius < t_min || center + radius > t_max) {
    obs::count(obs::Counter::kWindowClamps);
  }

  const MinimizeResult min =
      brent_minimize(distance, t_lo, t_hi, options.time_tolerance, options.max_iterations);
  obs::count(obs::Counter::kRefinements);
  obs::count(obs::Counter::kBrentIterations,
             static_cast<std::uint64_t>(min.iterations));

  const double probe =
      std::max(options.edge_probe_fraction * radius, 4.0 * options.time_tolerance);
  const double edge_tol = 2.0 * options.time_tolerance;

  // At the simulation-span boundary the minimum cannot be discarded — there
  // is no neighbouring interval beyond the span; report the clamped value.
  if (min.x - t_lo <= edge_tol && t_lo > t_min) {
    if (distance(std::max(t_lo - probe, t_min)) < min.value) {
      obs::count(obs::Counter::kEdgeDiscards);
      return std::nullopt;
    }
  } else if (t_hi - min.x <= edge_tol && t_hi < t_max) {
    if (distance(std::min(t_hi + probe, t_max)) < min.value) {
      obs::count(obs::Counter::kEdgeDiscards);
      return std::nullopt;
    }
  }

  return Encounter{min.x, min.value};
}

/// Minimizes the pairwise distance of (sat_a, sat_b) on
/// [center - radius, center + radius], clamped to [t_min, t_max].
///
/// Returns the encounter, or std::nullopt when the minimum lies on the
/// interval boundary and the distance keeps decreasing just beyond it — in
/// that case the true local minimum belongs to a neighbouring interval and
/// will be found from there (the paper's discard rule).
std::optional<Encounter> refine_candidate(const Propagator& propagator,
                                          std::uint32_t sat_a, std::uint32_t sat_b,
                                          double center, double radius,
                                          double t_min, double t_max,
                                          const RefineOptions& options = {});

/// Minimizes the pairwise distance on an explicit interval [t_lo, t_hi]
/// (used by the hybrid variant, whose orbital filters construct the
/// interval). The boundary-discard rule is applied the same way.
std::optional<Encounter> refine_on_interval(const Propagator& propagator,
                                            std::uint32_t sat_a, std::uint32_t sat_b,
                                            double t_lo, double t_hi,
                                            const RefineOptions& options = {});

/// Collapses encounters of one pair that describe the same physical local
/// minimum: candidates generated at adjacent sample steps refine to nearly
/// identical TCAs. Encounters within `time_tolerance` of each other are
/// merged, keeping the smallest PCA. Returns the list sorted by TCA.
std::vector<Encounter> merge_encounters(std::vector<Encounter> encounters,
                                        double time_tolerance);

}  // namespace scod
