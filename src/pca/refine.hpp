#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "propagation/propagator.hpp"

namespace scod {

/// A refined close approach of a satellite pair: the Time of Closest
/// Approach (TCA) and the distance at that time (PCA). See Fig. 2 of the
/// paper — an encounter is one local minimum of the pairwise distance.
struct Encounter {
  double tca = 0.0;  ///< [s] past epoch
  double pca = 0.0;  ///< [km]
};

/// Options for the Brent-based TCA/PCA search (Section IV-C).
struct RefineOptions {
  /// Absolute time tolerance of the Brent search [s].
  double time_tolerance = 1e-4;
  /// Maximum Brent iterations per candidate.
  int max_iterations = 80;
  /// How far beyond an interval edge to probe when the minimum lands on
  /// the boundary, as a fraction of the interval radius.
  double edge_probe_fraction = 0.05;
};

/// Radius of the search interval for a grid candidate: "t is the time it
/// takes the slower of both satellites to cross two cells" (Section IV-C).
double grid_search_radius(double cell_size, double slower_speed_km_s);

/// Minimizes the pairwise distance of (sat_a, sat_b) on
/// [center - radius, center + radius], clamped to [t_min, t_max].
///
/// Returns the encounter, or std::nullopt when the minimum lies on the
/// interval boundary and the distance keeps decreasing just beyond it — in
/// that case the true local minimum belongs to a neighbouring interval and
/// will be found from there (the paper's discard rule).
std::optional<Encounter> refine_candidate(const Propagator& propagator,
                                          std::uint32_t sat_a, std::uint32_t sat_b,
                                          double center, double radius,
                                          double t_min, double t_max,
                                          const RefineOptions& options = {});

/// Minimizes the pairwise distance on an explicit interval [t_lo, t_hi]
/// (used by the hybrid variant, whose orbital filters construct the
/// interval). The boundary-discard rule is applied the same way.
std::optional<Encounter> refine_on_interval(const Propagator& propagator,
                                            std::uint32_t sat_a, std::uint32_t sat_b,
                                            double t_lo, double t_hi,
                                            const RefineOptions& options = {});

/// Collapses encounters of one pair that describe the same physical local
/// minimum: candidates generated at adjacent sample steps refine to nearly
/// identical TCAs. Encounters within `time_tolerance` of each other are
/// merged, keeping the smallest PCA. Returns the list sorted by TCA.
std::vector<Encounter> merge_encounters(std::vector<Encounter> encounters,
                                        double time_tolerance);

}  // namespace scod
