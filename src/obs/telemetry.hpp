#pragma once

// Low-overhead screening telemetry: per-thread, cache-line-padded counter
// blocks that are only touched on the owning thread and summed when a
// snapshot is requested. Two gates keep the cost in check:
//
//   * compile time — building with -DSCOD_TELEMETRY=OFF defines
//     SCOD_TELEMETRY_ENABLED=0 and every count()/timer call below collapses
//     to an empty inline function, so instrumented call sites carry no code
//     at all in stripped builds;
//   * run time — with telemetry compiled in, counting is off by default and
//     each call site pays a single relaxed atomic load + predictable branch
//     until set_enabled(true).
//
// Counter writes are relaxed load+store (not lock-prefixed RMW): each block
// is written only by its owning thread, so plain increments are race-free,
// and the atomic type only makes the concurrent snapshot reads well-defined.

#ifndef SCOD_TELEMETRY_ENABLED
#define SCOD_TELEMETRY_ENABLED 1
#endif

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#if SCOD_TELEMETRY_ENABLED
#include <atomic>
#endif

namespace scod::obs {

enum class Counter : std::uint32_t {
  // Insertion phase / GridHashSet internals.
  kSamplesPropagated,
  kGridInserts,
  kGridProbeSteps,
  kGridCasRetries,
  kGridPoolRejects,
  // Detection funnel (grid pipeline).
  kCellsScanned,
  kCellsOccupied,
  kPairsTested,
  kPairsMaskedClean,
  kPairsPrefiltered,
  kCandidatesEmitted,
  kCandidatesDeduplicated,
  kCandidateSetGrowths,
  // Classical filter chain (hybrid / legacy / sieve front end).
  kFilterPairsIn,
  kFilterApogeePerigeeRejects,
  kFilterPathChecks,
  kFilterPathRejects,
  kFilterWindowChecks,
  kFilterWindowRejects,
  kFilterCoplanarPairs,
  kFilterSurvivors,
  kSieveDistanceEvals,
  // Refinement.
  kRefinements,
  kBrentIterations,
  kWindowClamps,
  kEdgeDiscards,
  kConjunctionsRaw,
  kConjunctionsReported,
  // Incremental screening service.
  kServiceFullScreens,
  kServiceIncrementalScreens,
  kServiceCachedScreens,
  kServiceSnapshotObjects,
  kServiceDirtyObjects,
  kServiceRemovedObjects,
  kServiceCarried,
  kServiceEvicted,
  kServiceRefreshed,
  // Stage timers, accumulated in nanoseconds.
  kTimeInsertionNs,
  kTimeDetectionNs,
  kTimeFilteringNs,
  kTimeRefinementNs,
  kCounterCount_,  // sentinel, keep last
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCounterCount_);

// Probe-length histogram buckets: exact counts for 0..6 probe steps per
// insert, with everything >= 7 collapsed into the final bucket.
inline constexpr std::size_t kProbeHistogramBuckets = 8;

const char* counter_name(Counter c);

struct TelemetrySnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kProbeHistogramBuckets> probe_histogram{};

  std::uint64_t value(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  // Fraction of scanned grid slots that held at least one sample; with the
  // pipeline's 2x slot factor this stays near or below 0.5 (Eq. 1 sizing
  // keeps per-cell chains short rather than the table sparse).
  double occupancy() const;
  // Mean linear-probe steps per successful insert.
  double mean_probe_length() const;
  std::string to_json() const;
};

// True when the library was built with telemetry support compiled in.
constexpr bool compiled() { return SCOD_TELEMETRY_ENABLED != 0; }

#if SCOD_TELEMETRY_ENABLED

namespace detail {

struct alignas(64) ThreadBlock {
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  std::array<std::atomic<std::uint64_t>, kProbeHistogramBuckets> probes{};

  void bump(std::size_t index, std::uint64_t n) {
    auto& c = counters[index];
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
};

ThreadBlock& local_block();
extern std::atomic<bool> g_enabled;

}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);
void reset();
TelemetrySnapshot snapshot();

inline void count(Counter c, std::uint64_t n = 1) {
  if (!enabled()) return;
  detail::local_block().bump(static_cast<std::size_t>(c), n);
}

// One call per GridHashSet::insert: bundles the insert count, total probe
// steps, histogram bucket, and CAS retries into a single enabled() check.
inline void count_grid_insert(std::uint64_t probe_steps,
                              std::uint64_t cas_retries) {
  if (!enabled()) return;
  detail::ThreadBlock& block = detail::local_block();
  block.bump(static_cast<std::size_t>(Counter::kGridInserts), 1);
  if (probe_steps != 0)
    block.bump(static_cast<std::size_t>(Counter::kGridProbeSteps), probe_steps);
  if (cas_retries != 0)
    block.bump(static_cast<std::size_t>(Counter::kGridCasRetries), cas_retries);
  const std::size_t bucket =
      probe_steps < kProbeHistogramBuckets - 1 ? static_cast<std::size_t>(probe_steps)
                                               : kProbeHistogramBuckets - 1;
  auto& h = block.probes[bucket];
  h.store(h.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

inline void add_seconds(Counter c, double seconds) {
  if (!enabled()) return;
  if (seconds < 0.0) return;
  count(c, static_cast<std::uint64_t>(seconds * 1e9));
}

#else  // !SCOD_TELEMETRY_ENABLED

inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}
inline TelemetrySnapshot snapshot() { return {}; }
inline void count(Counter, std::uint64_t = 1) {}
inline void count_grid_insert(std::uint64_t, std::uint64_t) {}
inline void add_seconds(Counter, double) {}

#endif  // SCOD_TELEMETRY_ENABLED

// RAII stage timer: accumulates the scope's wall time into a timer counter.
// Cheap enough to leave in place — it reads the clock only when telemetry is
// both compiled in and enabled.
class StageTimer {
 public:
  explicit StageTimer(Counter c);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
#if SCOD_TELEMETRY_ENABLED
  Counter counter_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
#endif
};

#if !SCOD_TELEMETRY_ENABLED
inline StageTimer::StageTimer(Counter) {}
inline StageTimer::~StageTimer() {}
#endif

}  // namespace scod::obs
