#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace scod::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSamplesPropagated: return "samples_propagated";
    case Counter::kGridInserts: return "grid_inserts";
    case Counter::kGridProbeSteps: return "grid_probe_steps";
    case Counter::kGridCasRetries: return "grid_cas_retries";
    case Counter::kGridPoolRejects: return "grid_pool_rejects";
    case Counter::kCellsScanned: return "cells_scanned";
    case Counter::kCellsOccupied: return "cells_occupied";
    case Counter::kPairsTested: return "pairs_tested";
    case Counter::kPairsMaskedClean: return "pairs_masked_clean";
    case Counter::kPairsPrefiltered: return "pairs_prefiltered";
    case Counter::kCandidatesEmitted: return "candidates_emitted";
    case Counter::kCandidatesDeduplicated: return "candidates_deduplicated";
    case Counter::kCandidateSetGrowths: return "candidate_set_growths";
    case Counter::kFilterPairsIn: return "filter_pairs_in";
    case Counter::kFilterApogeePerigeeRejects: return "filter_ap_rejects";
    case Counter::kFilterPathChecks: return "filter_path_checks";
    case Counter::kFilterPathRejects: return "filter_path_rejects";
    case Counter::kFilterWindowChecks: return "filter_window_checks";
    case Counter::kFilterWindowRejects: return "filter_window_rejects";
    case Counter::kFilterCoplanarPairs: return "filter_coplanar_pairs";
    case Counter::kFilterSurvivors: return "filter_survivors";
    case Counter::kSieveDistanceEvals: return "sieve_distance_evals";
    case Counter::kRefinements: return "refinements";
    case Counter::kBrentIterations: return "brent_iterations";
    case Counter::kWindowClamps: return "window_clamps";
    case Counter::kEdgeDiscards: return "edge_discards";
    case Counter::kConjunctionsRaw: return "conjunctions_raw";
    case Counter::kConjunctionsReported: return "conjunctions_reported";
    case Counter::kServiceFullScreens: return "service_full_screens";
    case Counter::kServiceIncrementalScreens: return "service_incremental_screens";
    case Counter::kServiceCachedScreens: return "service_cached_screens";
    case Counter::kServiceSnapshotObjects: return "service_snapshot_objects";
    case Counter::kServiceDirtyObjects: return "service_dirty_objects";
    case Counter::kServiceRemovedObjects: return "service_removed_objects";
    case Counter::kServiceCarried: return "service_carried";
    case Counter::kServiceEvicted: return "service_evicted";
    case Counter::kServiceRefreshed: return "service_refreshed";
    case Counter::kTimeInsertionNs: return "time_insertion_ns";
    case Counter::kTimeDetectionNs: return "time_detection_ns";
    case Counter::kTimeFilteringNs: return "time_filtering_ns";
    case Counter::kTimeRefinementNs: return "time_refinement_ns";
    case Counter::kCounterCount_: break;
  }
  return "unknown";
}

double TelemetrySnapshot::occupancy() const {
  const auto scanned = value(Counter::kCellsScanned);
  if (scanned == 0) return 0.0;
  return static_cast<double>(value(Counter::kCellsOccupied)) /
         static_cast<double>(scanned);
}

double TelemetrySnapshot::mean_probe_length() const {
  const auto inserts = value(Counter::kGridInserts);
  if (inserts == 0) return 0.0;
  return static_cast<double>(value(Counter::kGridProbeSteps)) /
         static_cast<double>(inserts);
}

std::string TelemetrySnapshot::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %llu, ",
                  counter_name(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(counters[i]));
    out += buf;
  }
  out += "\"probe_histogram\": [";
  for (std::size_t i = 0; i < kProbeHistogramBuckets; ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(probe_histogram[i]);
  }
  out += "], ";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"occupancy\": %.6f, \"mean_probe_length\": %.6f}",
                occupancy(), mean_probe_length());
  out += buf;
  return out;
}

#if SCOD_TELEMETRY_ENABLED

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

// Blocks are owned by the registry, not the thread: a worker that exits
// leaves its counts behind for the next snapshot. Pool threads are
// long-lived, so the registry stays small.
std::mutex g_registry_mutex;
std::vector<std::unique_ptr<ThreadBlock>>& registry() {
  static std::vector<std::unique_ptr<ThreadBlock>> blocks;
  return blocks;
}

}  // namespace

ThreadBlock& local_block() {
  thread_local ThreadBlock* block = [] {
    auto owned = std::make_unique<ThreadBlock>();
    ThreadBlock* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    registry().push_back(std::move(owned));
    return raw;
  }();
  return *block;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
  for (auto& block : detail::registry()) {
    for (auto& c : block->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : block->probes) h.store(0, std::memory_order_relaxed);
  }
}

TelemetrySnapshot snapshot() {
  TelemetrySnapshot snap;
  std::lock_guard<std::mutex> lock(detail::g_registry_mutex);
  for (const auto& block : detail::registry()) {
    for (std::size_t i = 0; i < kCounterCount; ++i)
      snap.counters[i] += block->counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kProbeHistogramBuckets; ++i)
      snap.probe_histogram[i] += block->probes[i].load(std::memory_order_relaxed);
  }
  return snap;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StageTimer::StageTimer(Counter c) : counter_(c) {
  if (enabled()) {
    start_ns_ = now_ns();
    armed_ = true;
  }
}

StageTimer::~StageTimer() {
  // A timer armed before a reset()/disable mid-scope still commits; that is
  // benign (at worst one stale interval) and keeps the hot path branch-light.
  if (armed_ && enabled()) count(counter_, now_ns() - start_ns_);
}

#endif  // SCOD_TELEMETRY_ENABLED

}  // namespace scod::obs
