#include "service/screening_service.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/screener.hpp"
#include "obs/telemetry.hpp"
#include "util/stopwatch.hpp"

namespace scod {

namespace {

bool id_order(const IdConjunction& x, const IdConjunction& y) {
  if (x.id_a != y.id_a) return x.id_a < y.id_a;
  if (x.id_b != y.id_b) return x.id_b < y.id_b;
  return x.tca < y.tca;
}

/// Maps a dense-index report onto stable catalog ids. Dense indices are
/// id-sorted, so sat_a < sat_b already implies id_a < id_b.
std::vector<IdConjunction> to_id_space(const std::vector<Conjunction>& conjunctions,
                                       const CatalogSnapshot& snap) {
  std::vector<IdConjunction> out;
  out.reserve(conjunctions.size());
  for (const Conjunction& c : conjunctions) {
    out.push_back({snap.satellites[c.sat_a].id, snap.satellites[c.sat_b].id,
                   c.tca, c.pca});
  }
  std::sort(out.begin(), out.end(), id_order);
  return out;
}

}  // namespace

ScreeningService::ScreeningService(ServiceOptions options)
    : options_(std::move(options)) {
  // Pin the sample period: GridScreener would otherwise take it from the
  // pipeline options, but making it explicit in the config documents that
  // every epoch screens with identical grid geometry.
  if (options_.config.seconds_per_sample <= 0.0) {
    options_.config.seconds_per_sample = options_.pipeline.seconds_per_sample;
  }
  options_.pipeline.seconds_per_sample = options_.config.seconds_per_sample;
}

std::size_t ScreeningService::ingest_csv(const std::string& path) {
  const std::size_t count = store_.ingest_csv(path);
  ++stats_.ingests;
  stats_.upserts += count;
  return count;
}

std::size_t ScreeningService::ingest_tle(const std::string& path) {
  const std::size_t count = store_.ingest_tle(path);
  ++stats_.ingests;
  stats_.upserts += count;
  return count;
}

void ScreeningService::upsert(const Satellite& satellite) {
  store_.upsert(satellite);
  ++stats_.upserts;
}

void ScreeningService::upsert(std::span<const Satellite> batch) {
  store_.upsert(batch);
  stats_.upserts += batch.size();
}

bool ScreeningService::remove(std::uint32_t id) {
  const bool removed = store_.remove(id);
  if (removed) ++stats_.removals;
  return removed;
}

void ScreeningService::adopt_baseline(std::shared_ptr<const CatalogSnapshot> snap,
                                      const ServiceReport& report) {
  has_baseline_ = true;
  baseline_epoch_ = snap->epoch;
  baseline_sps_ = report.stats.seconds_per_sample > 0.0
                      ? report.stats.seconds_per_sample
                      : baseline_sps_;
  baseline_conjunctions_ = report.conjunctions;
}

ServiceReport ScreeningService::full_screen(
    std::shared_ptr<const CatalogSnapshot> snap) {
  ServiceReport report;
  report.epoch = snap->epoch;
  report.catalog_size = snap->size();

  const ScreeningReport dense =
      make_screener(Variant::kGrid, &context_, pipeline_options(options_.pipeline))
          ->screen(snap->satellites, options_.config);
  report.conjunctions = to_id_space(dense.conjunctions, *snap);
  report.refreshed = report.conjunctions.size();
  report.timings = dense.timings;
  report.stats = dense.stats;
  adopt_baseline(std::move(snap), report);
  return report;
}

ServiceReport ScreeningService::incremental_screen(
    std::shared_ptr<const CatalogSnapshot> snap,
    const std::vector<std::uint32_t>& dirty_ids,
    const std::vector<std::uint32_t>& removed_ids) {
  ServiceReport report;
  report.epoch = snap->epoch;
  report.catalog_size = snap->size();
  report.incremental = true;
  report.dirty = dirty_ids.size();
  report.removed = removed_ids.size();

  std::vector<IdConjunction> refreshed;
  if (!dirty_ids.empty()) {
    // Mark the dirty dense indices and run the ordinary grid pass over the
    // full snapshot; only candidates with >= 1 dirty member survive
    // detection, so refinement cost scales with the delta, not with n.
    std::vector<std::uint8_t> mask(snap->size(), 0);
    for (const std::uint32_t id : dirty_ids) {
      mask[snap->index_of(id)] = 1;  // dirty ids are always present
    }
    GridPipelineOptions pipeline = options_.pipeline;
    pipeline.dirty_mask = mask;
    const ScreeningReport dense =
        make_screener(Variant::kGrid, &context_, pipeline_options(pipeline))
            ->screen(snap->satellites, options_.config);

    if (dense.stats.seconds_per_sample != baseline_sps_) {
      // The sizing model auto-shrank the sample period (population grew
      // into the memory budget): clean-pair results are no longer
      // guaranteed to match the baseline grid geometry, so rebuild.
      return full_screen(std::move(snap));
    }
    refreshed = to_id_space(dense.conjunctions, *snap);
    report.timings = dense.timings;
    report.stats = dense.stats;
  }

  // Merge rule: a baseline conjunction stays valid iff neither member
  // changed; everything touching a dirty or removed id is stale (the
  // refreshed set re-reports whatever still exists).
  Stopwatch merge_watch;
  std::unordered_set<std::uint32_t> stale(dirty_ids.begin(), dirty_ids.end());
  stale.insert(removed_ids.begin(), removed_ids.end());

  report.conjunctions.reserve(baseline_conjunctions_.size() + refreshed.size());
  for (const IdConjunction& c : baseline_conjunctions_) {
    if (stale.count(c.id_a) == 0 && stale.count(c.id_b) == 0) {
      report.conjunctions.push_back(c);
    }
  }
  report.carried = report.conjunctions.size();
  report.evicted = baseline_conjunctions_.size() - report.carried;
  report.refreshed = refreshed.size();
  report.conjunctions.insert(report.conjunctions.end(), refreshed.begin(),
                             refreshed.end());
  std::sort(report.conjunctions.begin(), report.conjunctions.end(), id_order);
  report.merge_seconds = merge_watch.seconds();

  adopt_baseline(std::move(snap), report);
  return report;
}

std::vector<IdConjunction> ScreeningService::reference_conjunctions() const {
  // Deliberately cold (no shared context): the reference must not be able
  // to inherit state from the passes it is checking.
  const std::shared_ptr<const CatalogSnapshot> snap = store_.snapshot();
  const ScreeningReport dense =
      make_screener(Variant::kGrid, nullptr, pipeline_options(options_.pipeline))
          ->screen(snap->satellites, options_.config);
  return to_id_space(dense.conjunctions, *snap);
}

ServiceReport ScreeningService::screen(ScreenMode mode) {
  Stopwatch total_watch;
  std::shared_ptr<const CatalogSnapshot> snap = store_.snapshot();

  ServiceReport report;
  if (!has_baseline_ || mode == ScreenMode::kFull) {
    report = full_screen(std::move(snap));
    ++stats_.full_screens;
  } else {
    const std::vector<std::uint32_t> dirty = snap->modified_since(baseline_epoch_);
    const std::vector<std::uint32_t> removed = store_.removed_since(baseline_epoch_);
    if (dirty.empty() && removed.empty()) {
      // No delta: the warm baseline is the answer.
      report.epoch = snap->epoch;
      report.incremental = true;
      report.catalog_size = snap->size();
      report.carried = baseline_conjunctions_.size();
      report.conjunctions = baseline_conjunctions_;
      baseline_epoch_ = snap->epoch;
      ++stats_.cached_screens;
    } else {
      const double fraction =
          snap->size() == 0
              ? 1.0
              : static_cast<double>(dirty.size()) / static_cast<double>(snap->size());
      const bool go_incremental =
          mode == ScreenMode::kIncremental ||
          fraction <= options_.full_rescreen_fraction;
      if (go_incremental) {
        report = incremental_screen(std::move(snap), dirty, removed);
        if (report.incremental) {
          ++stats_.incremental_screens;
        } else {
          ++stats_.full_screens;  // sps-drift fallback
        }
      } else {
        report = full_screen(std::move(snap));
        ++stats_.full_screens;
      }
    }
  }

  report.total_seconds = total_watch.seconds();
  if (obs::enabled()) {
    // Merge-path taken this call: exactly one of the three screen counters
    // ticks, so their sum equals the number of screen() calls observed.
    if (!report.incremental) {
      obs::count(obs::Counter::kServiceFullScreens);
    } else if (report.dirty == 0 && report.removed == 0) {
      obs::count(obs::Counter::kServiceCachedScreens);
    } else {
      obs::count(obs::Counter::kServiceIncrementalScreens);
    }
    obs::count(obs::Counter::kServiceSnapshotObjects, report.catalog_size);
    obs::count(obs::Counter::kServiceDirtyObjects, report.dirty);
    obs::count(obs::Counter::kServiceRemovedObjects, report.removed);
    obs::count(obs::Counter::kServiceCarried, report.carried);
    obs::count(obs::Counter::kServiceEvicted, report.evicted);
    obs::count(obs::Counter::kServiceRefreshed, report.refreshed);
  }
  stats_.last_epoch_screened = report.epoch;
  stats_.last_dirty = report.dirty;
  stats_.last_removed = report.removed;
  stats_.last_timings = report.timings;
  stats_.last_merge_seconds = report.merge_seconds;
  stats_.last_screen_seconds = report.total_seconds;
  stats_.total_screen_seconds += report.total_seconds;
  return report;
}

}  // namespace scod
