#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/context.hpp"
#include "core/grid_pipeline.hpp"
#include "core/report.hpp"
#include "service/catalog_store.hpp"

namespace scod {

/// A conjunction keyed by stable catalog ids instead of dense screener
/// indices. The service reports in id space because dense indices shift
/// whenever objects are added or removed between epochs, while ids are
/// what the baseline cache and the incremental merge reason about.
struct IdConjunction {
  std::uint32_t id_a = 0;  ///< smaller catalog id
  std::uint32_t id_b = 0;  ///< larger catalog id
  double tca = 0.0;        ///< time of closest approach [s past epoch]
  double pca = 0.0;        ///< distance at TCA [km]
};

/// How screen() decides between a full and an incremental pass.
enum class ScreenMode {
  kAuto,         ///< incremental when the dirty fraction is small enough
  kFull,         ///< always re-screen from scratch
  kIncremental,  ///< incremental whenever a baseline exists
};

/// Result of one service screening pass.
struct ServiceReport {
  std::uint64_t epoch = 0;       ///< store epoch this report describes
  bool incremental = false;      ///< served by the dirty-set path
  std::size_t catalog_size = 0;
  std::size_t dirty = 0;         ///< objects added/updated since baseline
  std::size_t removed = 0;       ///< objects removed since baseline
  std::size_t carried = 0;       ///< baseline conjunctions kept as-is
  std::size_t evicted = 0;       ///< baseline conjunctions dropped as stale
  std::size_t refreshed = 0;     ///< conjunctions recomputed this pass
  /// Complete conjunction set of the epoch, sorted by (id_a, id_b, tca) —
  /// identical to what a from-scratch screen of the snapshot reports.
  std::vector<IdConjunction> conjunctions;
  PhaseTimings timings;          ///< underlying pipeline phases (zero when
                                 ///< the pass was served from cache)
  ScreeningStats stats;          ///< underlying pipeline counters
  double merge_seconds = 0.0;    ///< baseline merge/eviction time
  double total_seconds = 0.0;    ///< wall clock of the whole screen() call
};

/// Cumulative service counters (ServiceStats of the design docs).
struct ServiceStats {
  std::uint64_t ingests = 0;              ///< bulk file ingests
  std::uint64_t upserts = 0;              ///< objects added or updated
  std::uint64_t removals = 0;             ///< objects removed
  std::uint64_t full_screens = 0;
  std::uint64_t incremental_screens = 0;
  std::uint64_t cached_screens = 0;       ///< no delta: baseline returned
  std::uint64_t last_epoch_screened = 0;
  std::size_t last_dirty = 0;
  std::size_t last_removed = 0;
  PhaseTimings last_timings;              ///< pipeline phases of last screen
  double last_merge_seconds = 0.0;
  double last_screen_seconds = 0.0;
  double total_screen_seconds = 0.0;
};

/// Configuration of a ScreeningService.
struct ServiceOptions {
  /// Screening window and threshold shared by every pass. The service pins
  /// seconds_per_sample at construction (defaulting it when unset) so the
  /// grid geometry — and therefore per-pair refinement — is identical
  /// across epochs regardless of how the population size drifts; that
  /// invariance is what makes the baseline merge exact.
  ScreeningConfig config;
  /// Grid front-end options of the underlying passes.
  GridPipelineOptions pipeline;
  /// Auto mode runs a full screen when dirty/n exceeds this fraction; at
  /// high churn the eviction savings no longer pay for the merge.
  double full_rescreen_fraction = 0.25;
};

/// Long-lived conjunction-screening service: owns a versioned catalog and
/// keeps the last full ConjunctionReport as a warm baseline.
///
/// After a delta touching k of n objects, screen() re-screens only pairs
/// with at least one dirty member (the full snapshot is inserted into the
/// grid, so dirty-vs-clean candidates are found exactly as in a full pass;
/// see GridPipelineOptions::dirty_mask) and merges with the baseline by
/// evicting pairs whose members changed. The merged report is identical to
/// a from-scratch screen of the same snapshot: a pair's conjunctions
/// depend only on the two orbits and the fixed config, so clean-clean
/// pairs carry over verbatim and everything else is recomputed.
///
/// Mutators and screen() are intended for one driver thread; concurrent
/// readers may snapshot the store at any time.
class ScreeningService {
 public:
  explicit ScreeningService(ServiceOptions options = {});

  CatalogStore& store() { return store_; }
  const CatalogStore& store() const { return store_; }
  const ServiceOptions& options() const { return options_; }
  const ServiceStats& stats() const { return stats_; }

  /// The long-lived screening context every full and incremental pass
  /// borrows scratch from. Exposed so callers can inspect arena stats or
  /// force a cold pass (context().arena().release()); reports are
  /// bit-identical either way.
  ScreeningContext& context() { return context_; }
  const ScreeningContext& context() const { return context_; }

  /// Convenience mutators forwarding to the store, with service counters.
  std::size_t ingest_csv(const std::string& path);
  std::size_t ingest_tle(const std::string& path);
  void upsert(const Satellite& satellite);
  void upsert(std::span<const Satellite> batch);
  bool remove(std::uint32_t id);

  /// Screens the current snapshot and refreshes the warm baseline. With no
  /// delta since the last pass the cached report is returned directly.
  ServiceReport screen(ScreenMode mode = ScreenMode::kAuto);

  /// Delta-equivalence reference: a from-scratch screen of the current
  /// snapshot with the service's pinned config, in id space, WITHOUT
  /// touching the warm baseline, counters, or stats. The incremental path
  /// is documented to reproduce this exactly; the verify subsystem (and
  /// test_service) diff screen()'s merged report against it.
  std::vector<IdConjunction> reference_conjunctions() const;

 private:
  ServiceReport full_screen(std::shared_ptr<const CatalogSnapshot> snap);
  ServiceReport incremental_screen(std::shared_ptr<const CatalogSnapshot> snap,
                                   const std::vector<std::uint32_t>& dirty_ids,
                                   const std::vector<std::uint32_t>& removed_ids);
  void adopt_baseline(std::shared_ptr<const CatalogSnapshot> snap,
                      const ServiceReport& report);

  ServiceOptions options_;
  CatalogStore store_;
  ServiceStats stats_;
  ScreeningContext context_;  ///< warm scratch reused across epochs

  // Warm baseline: the conjunction set of `baseline_epoch_`, in id space.
  bool has_baseline_ = false;
  std::uint64_t baseline_epoch_ = 0;
  double baseline_sps_ = 0.0;  ///< sample period the baseline was built with
  std::vector<IdConjunction> baseline_conjunctions_;
};

}  // namespace scod
