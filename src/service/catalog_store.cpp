#include "service/catalog_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "orbit/geometry.hpp"
#include "population/catalog_io.hpp"
#include "population/tle.hpp"

namespace scod {

namespace {

struct IdLess {
  bool operator()(const Satellite& s, std::uint32_t id) const { return s.id < id; }
  bool operator()(std::uint32_t id, const Satellite& s) const { return id < s.id; }
};

}  // namespace

std::size_t CatalogSnapshot::index_of(std::uint32_t id) const {
  const auto it = std::lower_bound(satellites.begin(), satellites.end(), id, IdLess{});
  if (it == satellites.end() || it->id != id) return npos;
  return static_cast<std::size_t>(it - satellites.begin());
}

const Satellite* CatalogSnapshot::find(std::uint32_t id) const {
  const std::size_t i = index_of(id);
  return i == npos ? nullptr : &satellites[i];
}

std::vector<std::uint32_t> CatalogSnapshot::modified_since(std::uint64_t since) const {
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < satellites.size(); ++i) {
    if (modified_epoch[i] > since) ids.push_back(satellites[i].id);
  }
  return ids;  // ascending because satellites are id-sorted
}

CatalogStore::CatalogStore() : current_(std::make_shared<CatalogSnapshot>()) {}

std::shared_ptr<const CatalogSnapshot> CatalogStore::snapshot() const {
  return current_.load(std::memory_order_acquire);
}

std::uint64_t CatalogStore::publish_upserts(std::span<const Satellite> batch) {
  for (const Satellite& sat : batch) {
    if (!is_valid_orbit(sat.elements)) {
      throw std::invalid_argument("CatalogStore: invalid orbit for id " +
                                  std::to_string(sat.id));
    }
  }

  std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto old = current_.load(std::memory_order_relaxed);
  if (batch.empty()) return old->epoch;

  auto next = std::make_shared<CatalogSnapshot>(*old);
  next->epoch = old->epoch + 1;
  for (const Satellite& sat : batch) {
    const auto it = std::lower_bound(next->satellites.begin(),
                                     next->satellites.end(), sat.id, IdLess{});
    const auto i = static_cast<std::size_t>(it - next->satellites.begin());
    if (it != next->satellites.end() && it->id == sat.id) {
      next->satellites[i] = sat;
      next->modified_epoch[i] = next->epoch;
    } else {
      next->satellites.insert(it, sat);
      next->modified_epoch.insert(next->modified_epoch.begin() +
                                      static_cast<std::ptrdiff_t>(i),
                                  next->epoch);
    }
  }
  current_.store(next, std::memory_order_release);
  return next->epoch;
}

std::uint64_t CatalogStore::upsert(const Satellite& satellite) {
  return publish_upserts({&satellite, 1});
}

std::uint64_t CatalogStore::upsert(std::span<const Satellite> batch) {
  return publish_upserts(batch);
}

bool CatalogStore::remove(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto old = current_.load(std::memory_order_relaxed);
  const std::size_t i = old->index_of(id);
  if (i == CatalogSnapshot::npos) return false;

  auto next = std::make_shared<CatalogSnapshot>(*old);
  next->epoch = old->epoch + 1;
  next->satellites.erase(next->satellites.begin() + static_cast<std::ptrdiff_t>(i));
  next->modified_epoch.erase(next->modified_epoch.begin() +
                             static_cast<std::ptrdiff_t>(i));
  removals_.push_back({next->epoch, id});
  current_.store(next, std::memory_order_release);
  return true;
}

std::size_t CatalogStore::ingest_csv(const std::string& path) {
  const std::vector<Satellite> rows = load_catalog_csv(path);
  publish_upserts(rows);
  return rows.size();
}

std::size_t CatalogStore::ingest_tle(const std::string& path) {
  const std::vector<TleRecord> records = load_tle_file(path);
  std::vector<Satellite> sats;
  sats.reserve(records.size());
  for (const TleRecord& rec : records) {
    sats.push_back(to_satellite(rec, rec.catalog_number));
  }
  publish_upserts(sats);
  return sats.size();
}

std::vector<std::uint32_t> CatalogStore::removed_since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto snap = current_.load(std::memory_order_relaxed);
  std::vector<std::uint32_t> ids;
  for (const Removal& r : removals_) {
    // A re-added id is covered by the modified stamps; only ids still
    // absent need baseline eviction.
    if (r.epoch > since && snap->index_of(r.id) == CatalogSnapshot::npos) {
      ids.push_back(r.id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace scod
