#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "orbit/elements.hpp"

namespace scod {

/// One immutable view of the catalog at a store epoch. Snapshots are
/// copy-on-write: every mutation batch publishes a fresh snapshot and
/// readers holding an older one keep a consistent catalog for as long as
/// they need it (the screening service screens a snapshot while ingest
/// continues concurrently).
struct CatalogSnapshot {
  /// Monotonically increasing store version; 0 is the empty catalog.
  std::uint64_t epoch = 0;
  /// Dense population in ascending-id order — the exact layout the
  /// screeners consume (dense index i is the screener's satellite index).
  std::vector<Satellite> satellites;
  /// Parallel to `satellites`: the epoch at which each object was last
  /// added or updated. The incremental re-screen derives its dirty set by
  /// comparing these stamps against the baseline epoch.
  std::vector<std::uint64_t> modified_epoch;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t size() const { return satellites.size(); }

  /// Dense index of `id`, or npos when absent. O(log n).
  std::size_t index_of(std::uint32_t id) const;

  /// The satellite with `id`, or nullptr when absent.
  const Satellite* find(std::uint32_t id) const;

  /// Ids added or updated strictly after `epoch`, ascending.
  std::vector<std::uint32_t> modified_since(std::uint64_t epoch) const;
};

/// Versioned in-memory satellite catalog with lock-free snapshot reads.
///
/// Writers (add/update/remove/bulk ingest) serialize on an internal mutex,
/// build the next snapshot copy and publish it atomically; each mutation
/// batch advances the epoch counter by exactly one. Readers never block:
/// snapshot() is an atomic shared_ptr load, so a long screening pass works
/// on a frozen catalog while deltas keep landing.
///
/// Thread-safe for any mix of concurrent readers and writers.
class CatalogStore {
 public:
  CatalogStore();

  /// Current snapshot (lock-free, wait-free for readers).
  std::shared_ptr<const CatalogSnapshot> snapshot() const;

  std::uint64_t epoch() const { return snapshot()->epoch; }
  std::size_t size() const { return snapshot()->size(); }

  /// Inserts or replaces one satellite by id. Throws std::invalid_argument
  /// on an invalid orbit. Returns the new epoch.
  std::uint64_t upsert(const Satellite& satellite);

  /// Inserts or replaces a batch in one epoch step (later entries of the
  /// batch win on duplicate ids). Returns the new epoch; an empty batch
  /// leaves the store untouched.
  std::uint64_t upsert(std::span<const Satellite> batch);

  /// Removes one satellite by id. Returns true (and bumps the epoch) when
  /// the id was present.
  bool remove(std::uint32_t id);

  /// Bulk ingest from a catalog CSV (see population/catalog_io.hpp); rows
  /// upsert by their id column, all in one epoch step. Returns the number
  /// of objects ingested.
  std::size_t ingest_csv(const std::string& path);

  /// Bulk ingest from a TLE file; records upsert by NORAD catalog number,
  /// so re-ingesting a newer element set for the same object is an update,
  /// not a duplicate. Returns the number of records ingested.
  std::size_t ingest_tle(const std::string& path);

  /// Ids removed strictly after `epoch` and not re-added since, ascending,
  /// deduplicated. The incremental merge evicts baseline pairs with these
  /// members; re-added ids show up as modified instead.
  std::vector<std::uint32_t> removed_since(std::uint64_t epoch) const;

 private:
  struct Removal {
    std::uint64_t epoch;
    std::uint32_t id;
  };

  std::uint64_t publish_upserts(std::span<const Satellite> batch);

  // Writers copy the current snapshot under this mutex, mutate the copy
  // and publish it with an atomic store.
  mutable std::mutex writer_mutex_;
  std::atomic<std::shared_ptr<const CatalogSnapshot>> current_;
  std::vector<Removal> removals_;  // guarded by writer_mutex_
};

}  // namespace scod
