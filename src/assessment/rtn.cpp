#include "assessment/rtn.hpp"

namespace scod {

RtnFrame rtn_frame(const StateVector& state) {
  RtnFrame frame;
  frame.radial = state.position.normalized();
  frame.normal = state.position.cross(state.velocity).normalized();
  frame.transverse = frame.normal.cross(frame.radial);
  return frame;
}

}  // namespace scod
