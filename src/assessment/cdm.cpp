#include "assessment/cdm.hpp"

#include <iomanip>

#include "assessment/probability.hpp"

namespace scod {

namespace {
CdmObject object_or_default(const std::vector<CdmObject>& objects, std::uint32_t index) {
  if (index < objects.size()) return objects[index];
  CdmObject fallback;
  fallback.designator = "OBJECT-" + std::to_string(index);
  return fallback;
}
}  // namespace

std::vector<ConjunctionAssessment> assess_conjunctions(
    const Propagator& propagator, const ScreeningReport& report,
    const std::vector<CdmObject>& objects) {
  std::vector<ConjunctionAssessment> assessments;
  assessments.reserve(report.conjunctions.size());
  for (const Conjunction& c : report.conjunctions) {
    ConjunctionAssessment a;
    a.conjunction = c;
    a.geometry = encounter_geometry(propagator, c);

    const CdmObject obj_a = object_or_default(objects, c.sat_a);
    const CdmObject obj_b = object_or_default(objects, c.sat_b);
    a.combined_hard_body_km = obj_a.hard_body_radius_km + obj_b.hard_body_radius_km;
    a.combined_sigma_km =
        combined_sigma(obj_a.position_sigma_km, obj_b.position_sigma_km);
    a.collision_probability = collision_probability_isotropic(
        a.geometry.miss_distance, a.combined_sigma_km, a.combined_hard_body_km);
    assessments.push_back(a);
  }
  return assessments;
}

void write_cdm(std::ostream& os, const ConjunctionAssessment& assessment,
               const CdmObject& object_a, const CdmObject& object_b) {
  const EncounterGeometry& g = assessment.geometry;
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();

  os << "CCSDS_CDM_VERS                = 1.0\n";
  os << "ORIGINATOR                    = SCOD\n";
  os << "MESSAGE_FOR                   = " << object_a.designator << '\n';
  os << std::fixed << std::setprecision(6);
  os << "TCA                           = T+" << g.tca << " [s]\n";
  os << "MISS_DISTANCE                 = " << g.miss_distance * 1000.0 << " [m]\n";
  os << "RELATIVE_SPEED                = " << g.relative_speed * 1000.0 << " [m/s]\n";
  os << "RELATIVE_POSITION_R           = " << g.miss_rtn.x * 1000.0 << " [m]\n";
  os << "RELATIVE_POSITION_T           = " << g.miss_rtn.y * 1000.0 << " [m]\n";
  os << "RELATIVE_POSITION_N           = " << g.miss_rtn.z * 1000.0 << " [m]\n";
  os << "APPROACH_ANGLE                = " << g.approach_angle << " [rad]\n";
  os << std::scientific << std::setprecision(4);
  os << "COLLISION_PROBABILITY         = " << assessment.collision_probability << '\n';
  os << "COLLISION_PROBABILITY_METHOD  = FOSTER-1992 (isotropic)\n";

  auto object_block = [&](const char* tag, const CdmObject& obj,
                          const StateVector& state) {
    os << std::fixed << std::setprecision(6);
    os << tag << "_OBJECT_DESIGNATOR   = " << obj.designator << '\n';
    os << tag << "_HARD_BODY_RADIUS    = " << obj.hard_body_radius_km * 1000.0
       << " [m]\n";
    os << tag << "_POSITION_SIGMA      = " << obj.position_sigma_km * 1000.0
       << " [m]\n";
    os << std::setprecision(3);
    os << tag << "_X = " << state.position.x << " [km]\n";
    os << tag << "_Y = " << state.position.y << " [km]\n";
    os << tag << "_Z = " << state.position.z << " [km]\n";
    os << std::setprecision(6);
    os << tag << "_X_DOT = " << state.velocity.x << " [km/s]\n";
    os << tag << "_Y_DOT = " << state.velocity.y << " [km/s]\n";
    os << tag << "_Z_DOT = " << state.velocity.z << " [km/s]\n";
  };
  object_block("OBJECT1", object_a, g.state_a);
  object_block("OBJECT2", object_b, g.state_b);

  os.flags(old_flags);
  os.precision(old_precision);
}

}  // namespace scod
