#pragma once

namespace scod {

/// Short-encounter collision probability (Foster & Estes 1992): for a fast
/// fly-by, the probability of the combined hard body (radius R) overlapping
/// the relative-position uncertainty is a 2-D Gaussian integral over the
/// encounter plane,
///
///   Pc = (1 / (2 pi sx sy)) * \int_{x^2+y^2 <= R^2}
///        exp(-((x-mx)^2/(2 sx^2) + (y-my)^2/(2 sy^2))) dx dy.
///
/// The screening phase treats uncertainty as a uniform threshold; this is
/// the quantitative follow-up the paper's Section III delegates to the
/// "conjunction assessment process".

/// Modified Bessel function of the first kind, order zero. Power series
/// for small arguments, standard asymptotic expansion for large ones;
/// relative error < 1e-8 over the domain Pc computations touch.
double bessel_i0(double x);

/// Isotropic (circular-covariance) collision probability via the Rician
/// integral:
///
///   Pc = \int_0^R (r / s^2) exp(-(r^2 + m^2)/(2 s^2)) I0(r m / s^2) dr,
///
/// with miss distance m, combined 1-sigma position uncertainty s (per
/// axis, in the encounter plane) and combined hard-body radius R. All in
/// consistent length units (km).
double collision_probability_isotropic(double miss_distance, double sigma,
                                       double hard_body_radius);

/// Anisotropic 2-D probability: miss components (mx, my) and per-axis
/// sigmas (sx, sy) in the encounter plane. Evaluated with an adaptive-
/// order polar quadrature over the hard-body disc; reduces to the
/// isotropic form when sx == sy (the tests cross-check the two paths).
double collision_probability_2d(double miss_x, double miss_y, double sigma_x,
                                double sigma_y, double hard_body_radius);

/// Combined 1-sigma from two objects' independent isotropic position
/// uncertainties (root-sum-square).
double combined_sigma(double sigma_a, double sigma_b);

}  // namespace scod
