#include "assessment/probability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"

namespace scod {

double bessel_i0(double x) {
  x = std::abs(x);
  if (x < 15.0) {
    // Power series I0(x) = sum_k (x^2/4)^k / (k!)^2.
    const double q = 0.25 * x * x;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 120; ++k) {
      term *= q / (static_cast<double>(k) * static_cast<double>(k));
      sum += term;
      if (term < sum * 1e-16) break;
    }
    return sum;
  }
  // Asymptotic: I0(x) ~ e^x / sqrt(2 pi x) * (1 + 1/(8x) + 9/(128 x^2) + ...).
  const double inv = 1.0 / x;
  const double series =
      1.0 + inv * (0.125 + inv * (0.0703125 + inv * 0.0732421875));
  return std::exp(x) / std::sqrt(2.0 * kPi * x) * series;
}

namespace {

/// exp(-a) * I0(b) evaluated without overflow: for large b the I0
/// asymptotic is folded into the exponent.
double exp_scaled_i0(double a, double b) {
  b = std::abs(b);
  if (b < 15.0) return std::exp(-a) * bessel_i0(b);
  const double inv = 1.0 / b;
  const double series =
      1.0 + inv * (0.125 + inv * (0.0703125 + inv * 0.0732421875));
  return std::exp(b - a) / std::sqrt(2.0 * kPi * b) * series;
}

}  // namespace

double collision_probability_isotropic(double miss_distance, double sigma,
                                       double hard_body_radius) {
  if (sigma <= 0.0) throw std::invalid_argument("collision probability: sigma <= 0");
  if (hard_body_radius <= 0.0) return 0.0;
  miss_distance = std::abs(miss_distance);

  // Composite Simpson over r in [0, R]; the integrand is smooth and the
  // scaled Bessel keeps it overflow-free for any m/sigma.
  const double inv_s2 = 1.0 / (sigma * sigma);
  const auto integrand = [&](double r) {
    const double a = 0.5 * (r * r + miss_distance * miss_distance) * inv_s2;
    const double b = r * miss_distance * inv_s2;
    return r * inv_s2 * exp_scaled_i0(a, b);
  };

  const int n = 512;  // even
  const double h = hard_body_radius / n;
  double sum = integrand(0.0) + integrand(hard_body_radius);
  for (int i = 1; i < n; ++i) {
    sum += integrand(i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  const double pc = sum * h / 3.0;
  return std::clamp(pc, 0.0, 1.0);
}

double collision_probability_2d(double miss_x, double miss_y, double sigma_x,
                                double sigma_y, double hard_body_radius) {
  if (sigma_x <= 0.0 || sigma_y <= 0.0) {
    throw std::invalid_argument("collision probability: sigma <= 0");
  }
  if (hard_body_radius <= 0.0) return 0.0;

  // Polar 2-D quadrature over the disc: Simpson in r, trapezoid (periodic,
  // spectrally accurate) in theta.
  const int nr = 256;       // even
  const int ntheta = 256;
  const double hr = hard_body_radius / nr;
  const double htheta = 2.0 * kPi / ntheta;

  const double inv_2sx2 = 0.5 / (sigma_x * sigma_x);
  const double inv_2sy2 = 0.5 / (sigma_y * sigma_y);
  const double norm = 1.0 / (2.0 * kPi * sigma_x * sigma_y);

  auto ring = [&](double r) {
    double acc = 0.0;
    for (int j = 0; j < ntheta; ++j) {
      const double theta = j * htheta;
      const double x = r * std::cos(theta) - miss_x;
      const double y = r * std::sin(theta) - miss_y;
      acc += std::exp(-(x * x * inv_2sx2 + y * y * inv_2sy2));
    }
    return acc * htheta * r;
  };

  double sum = ring(0.0) + ring(hard_body_radius);
  for (int i = 1; i < nr; ++i) {
    sum += ring(i * hr) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  const double pc = norm * sum * hr / 3.0;
  return std::clamp(pc, 0.0, 1.0);
}

double combined_sigma(double sigma_a, double sigma_b) {
  return std::sqrt(sigma_a * sigma_a + sigma_b * sigma_b);
}

}  // namespace scod
