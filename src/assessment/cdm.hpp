#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "assessment/geometry.hpp"
#include "core/report.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Per-object metadata for a conjunction data message.
struct CdmObject {
  std::string designator;           ///< e.g. catalog id or name
  double hard_body_radius_km = 0.005;  ///< combined-size contribution [km]
  double position_sigma_km = 0.5;   ///< isotropic 1-sigma position uncertainty
};

/// One fully assessed conjunction: the screener's (pair, TCA, PCA) plus
/// the relative geometry and the collision probability.
struct ConjunctionAssessment {
  Conjunction conjunction;
  EncounterGeometry geometry;
  double combined_hard_body_km = 0.0;
  double combined_sigma_km = 0.0;
  double collision_probability = 0.0;
};

/// Assesses every conjunction of a screening report: evaluates the
/// encounter geometry at each TCA and the isotropic short-encounter
/// collision probability from the objects' metadata. `objects` is indexed
/// by satellite index; missing entries fall back to CdmObject defaults.
std::vector<ConjunctionAssessment> assess_conjunctions(
    const Propagator& propagator, const ScreeningReport& report,
    const std::vector<CdmObject>& objects = {});

/// Writes one assessment as a CCSDS-CDM-style key/value (KVN) block. The
/// field set follows CCSDS 508.0-B-1 (TCA, MISS_DISTANCE, RELATIVE_SPEED,
/// RTN miss components, COLLISION_PROBABILITY, per-object metadata);
/// epoch-relative times are used since the simulation has no calendar
/// epoch.
void write_cdm(std::ostream& os, const ConjunctionAssessment& assessment,
               const CdmObject& object_a, const CdmObject& object_b);

}  // namespace scod
