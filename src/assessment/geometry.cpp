#include "assessment/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scod {

EncounterGeometry encounter_geometry(const Propagator& propagator,
                                     std::uint32_t sat_a, std::uint32_t sat_b,
                                     double tca) {
  EncounterGeometry g;
  g.tca = tca;
  g.state_a = propagator.state(sat_a, tca);
  g.state_b = propagator.state(sat_b, tca);

  const Vec3 miss_eci = g.state_b.position - g.state_a.position;
  g.miss_distance = miss_eci.norm();
  g.miss_rtn = rtn_frame(g.state_a).to_rtn(miss_eci);

  g.relative_velocity_eci = g.state_b.velocity - g.state_a.velocity;
  g.relative_speed = g.relative_velocity_eci.norm();

  const double va = g.state_a.velocity.norm();
  const double vb = g.state_b.velocity.norm();
  if (va > 0.0 && vb > 0.0) {
    const double c = g.state_a.velocity.dot(g.state_b.velocity) / (va * vb);
    g.approach_angle = std::acos(std::clamp(c, -1.0, 1.0));
  }
  return g;
}

EncounterGeometry encounter_geometry(const Propagator& propagator,
                                     const Conjunction& conjunction) {
  return encounter_geometry(propagator, conjunction.sat_a, conjunction.sat_b,
                            conjunction.tca);
}

EncounterPlane encounter_plane(const EncounterGeometry& geometry) {
  if (geometry.relative_speed <= 0.0) {
    throw std::invalid_argument("encounter_plane: zero relative velocity");
  }
  EncounterPlane plane;
  plane.axis_z = geometry.relative_velocity_eci / geometry.relative_speed;

  // Any stable in-plane basis works; seed with the axis least aligned with
  // z to avoid degeneracy.
  const Vec3 seed = std::abs(plane.axis_z.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  plane.axis_x = plane.axis_z.cross(seed).normalized();
  plane.axis_y = plane.axis_z.cross(plane.axis_x);

  const Vec3 miss_eci =
      geometry.state_b.position - geometry.state_a.position;
  plane.miss_x = plane.axis_x.dot(miss_eci);
  plane.miss_y = plane.axis_y.dot(miss_eci);
  return plane;
}

}  // namespace scod
