#pragma once

#include "orbit/frames.hpp"
#include "orbit/state.hpp"

namespace scod {

/// The satellite-centred RTN (radial / transverse / normal) frame, the
/// standard frame for expressing conjunction miss vectors: R along the
/// position vector, N along the orbital angular momentum (cross-track),
/// T = N x R completing the right-handed triad (along-track for
/// near-circular orbits).
///
/// The screening phase (the paper's contribution) hands off to a "more
/// detailed subsequent conjunction assessment process" (Section III);
/// this module is that downstream stage.
struct RtnFrame {
  Vec3 radial;      ///< R unit vector [ECI]
  Vec3 transverse;  ///< T unit vector [ECI]
  Vec3 normal;      ///< N unit vector [ECI]

  /// Expresses an ECI vector in RTN components.
  Vec3 to_rtn(const Vec3& eci) const {
    return {radial.dot(eci), transverse.dot(eci), normal.dot(eci)};
  }

  /// Expresses an RTN vector in ECI components.
  Vec3 to_eci(const Vec3& rtn) const {
    return radial * rtn.x + transverse * rtn.y + normal * rtn.z;
  }
};

/// RTN frame of a satellite state. The state must have non-degenerate
/// position and angular momentum (any bound orbit qualifies).
RtnFrame rtn_frame(const StateVector& state);

}  // namespace scod
