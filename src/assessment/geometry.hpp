#pragma once

#include <cstdint>

#include "assessment/rtn.hpp"
#include "core/report.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Full relative geometry of one conjunction at its TCA — what the
/// follow-up assessment needs beyond the screener's (pair, TCA, PCA).
struct EncounterGeometry {
  double tca = 0.0;                ///< [s past epoch]
  double miss_distance = 0.0;      ///< [km]
  Vec3 miss_rtn;                   ///< miss vector of object B relative to A,
                                   ///< in A's RTN frame at TCA [km]
  Vec3 relative_velocity_eci;      ///< v_B - v_A at TCA [km/s]
  double relative_speed = 0.0;     ///< [km/s]
  /// Angle between the two velocity vectors at TCA [rad]; ~0 for tail
  /// chases (long, slow encounters), ~pi for head-on geometry.
  double approach_angle = 0.0;
  StateVector state_a;             ///< object A at TCA [ECI]
  StateVector state_b;             ///< object B at TCA [ECI]
};

/// Evaluates the relative geometry of (sat_a, sat_b) at `tca`. Both
/// indices must be valid for the propagator.
EncounterGeometry encounter_geometry(const Propagator& propagator,
                                     std::uint32_t sat_a, std::uint32_t sat_b,
                                     double tca);

/// Convenience: geometry of a screener-reported conjunction.
EncounterGeometry encounter_geometry(const Propagator& propagator,
                                     const Conjunction& conjunction);

/// The 2-D encounter ("B-plane") decomposition: the plane through object A
/// perpendicular to the relative velocity at TCA, where the short-encounter
/// collision-probability integral lives (Foster & Estes 1992).
struct EncounterPlane {
  Vec3 axis_x;   ///< in-plane unit vector [ECI]
  Vec3 axis_y;   ///< in-plane unit vector [ECI]
  Vec3 axis_z;   ///< unit vector along the relative velocity [ECI]
  double miss_x = 0.0;  ///< miss-vector component along axis_x [km]
  double miss_y = 0.0;  ///< miss-vector component along axis_y [km]
};

/// Projects the encounter onto the plane perpendicular to the relative
/// velocity. Requires a non-zero relative speed (true for any encounter
/// the screener reports: a zero relative speed means identical orbits).
EncounterPlane encounter_plane(const EncounterGeometry& geometry);

}  // namespace scod
