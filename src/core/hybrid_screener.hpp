#pragma once

#include <span>

#include "core/config.hpp"
#include "core/grid_pipeline.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The hybrid conjunction-detection variant (Section III): the same grid
/// front-end, but sampled less frequently (larger cells), with the
/// candidate pairs passed through the classical orbital filter chain —
/// apogee/perigee overlap, coplanarity classification, node-miss (orbit
/// path) check and the node time-window filter — before the Brent
/// refinement. "The additional checks reduce the number of pairs we have
/// to examine for their PCAs and TCAs, so we sample less frequently ...
/// effectively trading time for space."
class HybridScreener {
 public:
  /// Default sampling period [s]; four times the grid variant's, i.e.
  /// four-times-fewer sample steps with correspondingly larger cells.
  static constexpr double kDefaultSecondsPerSample = 16.0;

  explicit HybridScreener(GridPipelineOptions options = default_options());

  static GridPipelineOptions default_options();

  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const;

 private:
  GridPipelineOptions options_;
};

}  // namespace scod
