#pragma once

#include <span>

#include "core/config.hpp"
#include "core/grid_pipeline.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The hybrid conjunction-detection variant (Section III): the same grid
/// front-end, but sampled less frequently (larger cells), with the
/// candidate pairs passed through the classical orbital filter chain —
/// apogee/perigee overlap, coplanarity classification, node-miss (orbit
/// path) check and the node time-window filter — before the Brent
/// refinement. "The additional checks reduce the number of pairs we have
/// to examine for their PCAs and TCAs, so we sample less frequently ...
/// effectively trading time for space."
class HybridScreener final : public Screener {
 public:
  /// Default sampling period [s]; four times the grid variant's, i.e.
  /// four-times-fewer sample steps with correspondingly larger cells.
  static constexpr double kDefaultSecondsPerSample = 16.0;

  /// With a context, pipeline scratch and refinement slots are borrowed
  /// from its arena across calls; the context must outlive the screener.
  explicit HybridScreener(GridPipelineOptions options = default_options(),
                          ScreeningContext* context = nullptr);

  static GridPipelineOptions default_options();

  Variant variant() const override { return Variant::kHybrid; }

  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const override;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const override;

 private:
  GridPipelineOptions options_;
  ScreeningContext* context_ = nullptr;
};

}  // namespace scod
