#pragma once

#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The (smart) sieve baseline from the paper's related work — Healy 1995
/// [16] and Rodriguez, Fadrique & Klinkrad 2002 [17]: still an all-on-all
/// pairwise method, but instead of geometric orbit filters it walks each
/// pair through time with *adaptive skipping*: at distance d the pair
/// cannot come within the threshold sooner than (d - threshold) / v_max,
/// so that much time is sieved out at one distance evaluation.
///
/// Complexity stays O(n^2) in pairs (each pair is touched at least once
/// per skip chain), which is exactly why the paper moves to spatial data
/// structures; this implementation exists as the third classical baseline
/// for the comparison benches. Unlike the legacy filter chain it needs no
/// plane geometry, so it is robust for coplanar pairs too; unlike the
/// paper's baseline it parallelizes trivially over pairs.
class SieveScreener final : public Screener {
 public:
  using Options = SieveScreenerOptions;

  SieveScreener();
  /// With a context, the vmax table and flat pair list are borrowed from
  /// its arena across calls; the context must outlive the screener.
  explicit SieveScreener(Options options, ScreeningContext* context = nullptr);

  Variant variant() const override { return Variant::kSieve; }

  /// Throws std::invalid_argument when config.device is set: the sieve
  /// baseline is CPU-only by definition.
  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const override;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const override;

 private:
  Options options_;
  ScreeningContext* context_ = nullptr;
};

}  // namespace scod
