#pragma once

#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The (smart) sieve baseline from the paper's related work — Healy 1995
/// [16] and Rodriguez, Fadrique & Klinkrad 2002 [17]: still an all-on-all
/// pairwise method, but instead of geometric orbit filters it walks each
/// pair through time with *adaptive skipping*: at distance d the pair
/// cannot come within the threshold sooner than (d - threshold) / v_max,
/// so that much time is sieved out at one distance evaluation.
///
/// Complexity stays O(n^2) in pairs (each pair is touched at least once
/// per skip chain), which is exactly why the paper moves to spatial data
/// structures; this implementation exists as the third classical baseline
/// for the comparison benches. Unlike the legacy filter chain it needs no
/// plane geometry, so it is robust for coplanar pairs too; unlike the
/// paper's baseline it parallelizes trivially over pairs.
class SieveScreener {
 public:
  struct Options {
    /// The coarse sieve threshold is `coarse_factor` * screening
    /// threshold; below it the pair is considered inside a proximity
    /// window and a Brent search runs. Larger values find windows earlier
    /// (fewer, longer skips) at the cost of more refinements.
    double coarse_factor = 8.0;
    /// Lower bound on a skip [s]; prevents pathological crawling when a
    /// pair hovers just outside the coarse threshold.
    double min_skip = 1.0;
  };

  SieveScreener();
  explicit SieveScreener(Options options);

  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const;

 private:
  Options options_;
};

}  // namespace scod
