#include "core/screener.hpp"

#include <stdexcept>

#include "core/grid_screener.hpp"
#include "core/hybrid_screener.hpp"
#include "core/legacy_screener.hpp"
#include "core/sieve_screener.hpp"

namespace scod {

std::string variant_name(Variant variant) {
  switch (variant) {
    case Variant::kGrid: return "grid";
    case Variant::kHybrid: return "hybrid";
    case Variant::kLegacy: return "legacy";
    case Variant::kSieve: return "sieve";
  }
  return "unknown";
}

std::optional<Variant> parse_variant(std::string_view name) {
  if (name == "grid") return Variant::kGrid;
  if (name == "hybrid") return Variant::kHybrid;
  if (name == "legacy") return Variant::kLegacy;
  if (name == "sieve") return Variant::kSieve;
  return std::nullopt;
}

std::unique_ptr<Screener> make_screener(Variant variant,
                                        ScreeningContext* context,
                                        const ScreenerOptions& options) {
  switch (variant) {
    case Variant::kGrid:
      return std::make_unique<GridScreener>(
          options.pipeline.value_or(GridScreener::default_options()), context);
    case Variant::kHybrid:
      return std::make_unique<HybridScreener>(
          options.pipeline.value_or(HybridScreener::default_options()), context);
    case Variant::kLegacy:
      return std::make_unique<LegacyScreener>(
          options.legacy.value_or(LegacyScreenerOptions{}), context);
    case Variant::kSieve:
      return std::make_unique<SieveScreener>(
          options.sieve.value_or(SieveScreenerOptions{}), context);
  }
  throw std::invalid_argument("make_screener: unknown variant");
}

}  // namespace scod
