#include "core/partitioned.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "parallel/thread_pool.hpp"

namespace scod {

ScreeningReport partitioned_screen(std::span<const Satellite> satellites,
                                   const ScreeningConfig& caller_config,
                                   Variant variant, std::size_t partitions,
                                   ScreeningContext* context) {
  if (partitions == 0) throw std::invalid_argument("partitioned_screen: 0 partitions");
  const std::size_t n = satellites.size();

  detail::ContextLease lease(context);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  // Contiguous block decomposition; block b owns indices
  // [b * n / partitions, (b+1) * n / partitions).
  auto block_begin = [&](std::size_t b) { return b * n / partitions; };
  auto block_of = [&](std::uint32_t index) {
    // Blocks are contiguous and near-equal; a short scan is fine for the
    // partition counts this harness targets.
    for (std::size_t b = 0; b < partitions; ++b) {
      if (index < block_begin(b + 1)) return b;
    }
    return partitions - 1;
  };

  // Every unordered block pair is one independent job. Materialize the
  // list upfront so the jobs can fan out across the pool; each job keeps
  // its report and index mapping in its own slot, and the merge below
  // walks the slots in (bi, bj) order, so the output is independent of
  // which job finishes first.
  struct Job {
    std::size_t bi, bj;
    ScreeningReport report;
    std::vector<std::uint32_t> global_index;
  };
  std::vector<Job> jobs;
  for (std::size_t bi = 0; bi < partitions; ++bi) {
    for (std::size_t bj = bi; bj < partitions; ++bj) {
      jobs.push_back(Job{bi, bj, {}, {}});
    }
  }

  const auto run_job = [&](Job& job, const ScreeningConfig& job_config) {
    // The job's working set: block bi plus (for cross jobs) block bj,
    // with a mapping from job-local indices back to global ones.
    std::vector<Satellite> subset;
    auto add_block = [&](std::size_t b) {
      for (std::size_t k = block_begin(b); k < block_begin(b + 1); ++k) {
        Satellite sat = satellites[k];
        sat.id = static_cast<std::uint32_t>(subset.size());
        subset.push_back(sat);
        job.global_index.push_back(static_cast<std::uint32_t>(k));
      }
    };
    add_block(job.bi);
    if (job.bj != job.bi) add_block(job.bj);
    if (subset.size() < 2) return;
    // Each job builds its own screener with an ephemeral context: the
    // arena is single-screen scratch, not shareable across concurrent
    // jobs — exactly the independence a multi-machine deployment needs.
    job.report = make_screener(variant)->screen(subset, job_config);
  };

  if (config.device != nullptr || jobs.size() == 1) {
    // Device launches serialize on the backend anyway; run jobs in order.
    for (Job& job : jobs) run_job(job, config);
  } else {
    // Fan the block-pair jobs out across the outer pool. Inner screens
    // run on a single-thread pool: a nested run_on_all from a pool worker
    // would deadlock, and ThreadPool(1) executes work inline with no
    // shared state, so concurrent jobs can share one instance safely.
    static ThreadPool inline_pool(1);
    ScreeningConfig job_config = config;
    job_config.pool = &inline_pool;
    detail::pool_of(config).parallel_for(
        jobs.size(), [&](std::size_t j) { run_job(jobs[j], job_config); },
        /*grain=*/1);
  }

  ScreeningReport merged;
  std::vector<Conjunction> all;
  for (const Job& job : jobs) {
    const ScreeningReport& part = job.report;
    merged.timings.allocation += part.timings.allocation;
    merged.timings.insertion += part.timings.insertion;
    merged.timings.detection += part.timings.detection;
    merged.timings.filtering += part.timings.filtering;
    merged.timings.refinement += part.timings.refinement;
    merged.stats.candidates += part.stats.candidates;
    merged.stats.refinements += part.stats.refinements;
    merged.stats.pairs_examined += part.stats.pairs_examined;

    for (const Conjunction& c : part.conjunctions) {
      Conjunction global = c;
      global.sat_a = job.global_index[c.sat_a];
      global.sat_b = job.global_index[c.sat_b];
      if (global.sat_a > global.sat_b) std::swap(global.sat_a, global.sat_b);
      // Keep only the combination this job owns: both in bi for the
      // diagonal job, one in each block for cross jobs — every global
      // pair is then reported by exactly one job.
      const std::size_t ba = block_of(global.sat_a);
      const std::size_t bb = block_of(global.sat_b);
      const bool owned = (job.bi == job.bj)
                             ? (ba == job.bi && bb == job.bi)
                             : ((ba == job.bi && bb == job.bj) ||
                                (ba == job.bj && bb == job.bi));
      if (owned) all.push_back(global);
    }
  }

  merged.conjunctions = merge_conjunctions(std::move(all), 0.0);
  merged.stats.satellites = n;
  return merged;
}

}  // namespace scod
