#include "core/partitioned.hpp"

#include <stdexcept>
#include <vector>

namespace scod {

ScreeningReport partitioned_screen(std::span<const Satellite> satellites,
                                   const ScreeningConfig& config, Variant variant,
                                   std::size_t partitions) {
  if (partitions == 0) throw std::invalid_argument("partitioned_screen: 0 partitions");
  const std::size_t n = satellites.size();

  // Contiguous block decomposition; block b owns indices
  // [b * n / partitions, (b+1) * n / partitions).
  auto block_begin = [&](std::size_t b) { return b * n / partitions; };
  auto block_of = [&](std::uint32_t index) {
    // Blocks are contiguous and near-equal; a short scan is fine for the
    // partition counts this harness targets.
    for (std::size_t b = 0; b < partitions; ++b) {
      if (index < block_begin(b + 1)) return b;
    }
    return partitions - 1;
  };

  ScreeningReport merged;
  std::vector<Conjunction> all;

  for (std::size_t bi = 0; bi < partitions; ++bi) {
    for (std::size_t bj = bi; bj < partitions; ++bj) {
      // The job's working set: block bi plus (for cross jobs) block bj,
      // with a mapping from job-local indices back to global ones.
      std::vector<Satellite> subset;
      std::vector<std::uint32_t> global_index;
      auto add_block = [&](std::size_t b) {
        for (std::size_t k = block_begin(b); k < block_begin(b + 1); ++k) {
          Satellite sat = satellites[k];
          sat.id = static_cast<std::uint32_t>(subset.size());
          subset.push_back(sat);
          global_index.push_back(static_cast<std::uint32_t>(k));
        }
      };
      add_block(bi);
      if (bj != bi) add_block(bj);
      if (subset.size() < 2) continue;

      const ScreeningReport part = screen(subset, config, variant);
      merged.timings.allocation += part.timings.allocation;
      merged.timings.insertion += part.timings.insertion;
      merged.timings.detection += part.timings.detection;
      merged.timings.filtering += part.timings.filtering;
      merged.timings.refinement += part.timings.refinement;
      merged.stats.candidates += part.stats.candidates;
      merged.stats.refinements += part.stats.refinements;
      merged.stats.pairs_examined += part.stats.pairs_examined;

      for (const Conjunction& c : part.conjunctions) {
        Conjunction global = c;
        global.sat_a = global_index[c.sat_a];
        global.sat_b = global_index[c.sat_b];
        if (global.sat_a > global.sat_b) std::swap(global.sat_a, global.sat_b);
        // Keep only the combination this job owns: both in bi for the
        // diagonal job, one in each block for cross jobs — every global
        // pair is then reported by exactly one job.
        const std::size_t ba = block_of(global.sat_a);
        const std::size_t bb = block_of(global.sat_b);
        const bool owned = (bi == bj) ? (ba == bi && bb == bi)
                                      : ((ba == bi && bb == bj) || (ba == bj && bb == bi));
        if (owned) all.push_back(global);
      }
    }
  }

  merged.conjunctions = merge_conjunctions(std::move(all), 0.0);
  merged.stats.satellites = n;
  return merged;
}

}  // namespace scod
