#include "core/report.hpp"

#include <algorithm>
#include <cmath>

namespace scod {

void sort_conjunctions(std::vector<Conjunction>& conjunctions) {
  std::sort(conjunctions.begin(), conjunctions.end(),
            [](const Conjunction& x, const Conjunction& y) {
              if (x.sat_a != y.sat_a) return x.sat_a < y.sat_a;
              if (x.sat_b != y.sat_b) return x.sat_b < y.sat_b;
              return x.tca < y.tca;
            });
}

std::vector<Conjunction> merge_conjunctions(std::vector<Conjunction> conjunctions,
                                            double time_tolerance) {
  sort_conjunctions(conjunctions);
  std::vector<Conjunction> merged;
  merged.reserve(conjunctions.size());
  for (const Conjunction& c : conjunctions) {
    if (!merged.empty() && merged.back().sat_a == c.sat_a &&
        merged.back().sat_b == c.sat_b && c.tca - merged.back().tca <= time_tolerance) {
      if (c.pca < merged.back().pca) {
        merged.back().tca = c.tca;
        merged.back().pca = c.pca;
      }
    } else {
      merged.push_back(c);
    }
  }
  return merged;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> ScreeningReport::colliding_pairs()
    const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(conjunctions.size());
  for (const Conjunction& c : conjunctions) pairs.emplace_back(c.sat_a, c.sat_b);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

ConjunctionSetDiff compare_conjunction_sets(std::vector<Conjunction> first,
                                            std::vector<Conjunction> second,
                                            const ConjunctionMatchOptions& options) {
  first = merge_conjunctions(std::move(first), options.tca_window);
  second = merge_conjunctions(std::move(second), options.tca_window);

  ConjunctionSetDiff diff;
  std::size_t i = 0, j = 0;
  const auto pair_key = [](const Conjunction& c) {
    return (static_cast<std::uint64_t>(c.sat_a) << 32) | c.sat_b;
  };
  while (i < first.size() && j < second.size()) {
    const Conjunction& a = first[i];
    const Conjunction& b = second[j];
    if (pair_key(a) != pair_key(b)) {
      if (pair_key(a) < pair_key(b)) {
        diff.only_in_first.push_back(a);
        ++i;
      } else {
        diff.only_in_second.push_back(b);
        ++j;
      }
      continue;
    }
    // Same pair: greedy TCA-order matching within the window.
    if (std::abs(a.tca - b.tca) <= options.tca_window) {
      ++diff.matched;
      if (std::abs(a.pca - b.pca) > options.pca_tolerance) {
        diff.pca_mismatches.emplace_back(a, b);
      }
      ++i;
      ++j;
    } else if (a.tca < b.tca) {
      diff.only_in_first.push_back(a);
      ++i;
    } else {
      diff.only_in_second.push_back(b);
      ++j;
    }
  }
  for (; i < first.size(); ++i) diff.only_in_first.push_back(first[i]);
  for (; j < second.size(); ++j) diff.only_in_second.push_back(second[j]);
  return diff;
}

PairSetDiff compare_pair_sets(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& first,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& second) {
  // Inputs are sorted-unique (colliding_pairs() guarantees it).
  PairSetDiff diff;
  std::size_t i = 0, j = 0;
  while (i < first.size() && j < second.size()) {
    if (first[i] == second[j]) {
      ++diff.common;
      ++i;
      ++j;
    } else if (first[i] < second[j]) {
      ++diff.only_in_first;
      ++i;
    } else {
      ++diff.only_in_second;
      ++j;
    }
  }
  diff.only_in_first += first.size() - i;
  diff.only_in_second += second.size() - j;
  return diff;
}

}  // namespace scod
