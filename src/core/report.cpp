#include "core/report.hpp"

#include <algorithm>

namespace scod {

void sort_conjunctions(std::vector<Conjunction>& conjunctions) {
  std::sort(conjunctions.begin(), conjunctions.end(),
            [](const Conjunction& x, const Conjunction& y) {
              if (x.sat_a != y.sat_a) return x.sat_a < y.sat_a;
              if (x.sat_b != y.sat_b) return x.sat_b < y.sat_b;
              return x.tca < y.tca;
            });
}

std::vector<Conjunction> merge_conjunctions(std::vector<Conjunction> conjunctions,
                                            double time_tolerance) {
  sort_conjunctions(conjunctions);
  std::vector<Conjunction> merged;
  merged.reserve(conjunctions.size());
  for (const Conjunction& c : conjunctions) {
    if (!merged.empty() && merged.back().sat_a == c.sat_a &&
        merged.back().sat_b == c.sat_b && c.tca - merged.back().tca <= time_tolerance) {
      if (c.pca < merged.back().pca) {
        merged.back().tca = c.tca;
        merged.back().pca = c.pca;
      }
    } else {
      merged.push_back(c);
    }
  }
  return merged;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> ScreeningReport::colliding_pairs()
    const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(conjunctions.size());
  for (const Conjunction& c : conjunctions) pairs.emplace_back(c.sat_a, c.sat_b);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

PairSetDiff compare_pair_sets(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& first,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& second) {
  // Inputs are sorted-unique (colliding_pairs() guarantees it).
  PairSetDiff diff;
  std::size_t i = 0, j = 0;
  while (i < first.size() && j < second.size()) {
    if (first[i] == second[j]) {
      ++diff.common;
      ++i;
      ++j;
    } else if (first[i] < second[j]) {
      ++diff.only_in_first;
      ++i;
    } else {
      ++diff.only_in_second;
      ++j;
    }
  }
  diff.only_in_first += first.size() - i;
  diff.only_in_second += second.size() - j;
  return diff;
}

}  // namespace scod
