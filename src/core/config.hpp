#pragma once

#include <cstdint>

#include "filters/coplanarity.hpp"
#include "filters/time_windows.hpp"
#include "parallel/device.hpp"
#include "parallel/thread_pool.hpp"
#include "pca/refine.hpp"

namespace scod {

/// Configuration of a conjunction-screening run, shared by all variants.
///
/// The defaults mirror the paper's evaluation setup scaled to laptop
/// hardware: a 2 km screening threshold ("typical for a rough screening
/// process") over a multi-hour span.
struct ScreeningConfig {
  /// Screening threshold d [km]: encounters with PCA below this are
  /// reported, everything above is discarded (Fig. 2).
  double threshold_km = 2.0;

  /// Screened time span [s] past epoch.
  double t_begin = 0.0;
  double t_end = 7200.0;

  /// Sampling period s_ps [s]. The grid variant wants small steps (small
  /// cells, few candidates); the hybrid variant samples less frequently
  /// and lets the orbital filters prune (Section III). Each screener has
  /// its own default; a value > 0 here overrides it.
  double seconds_per_sample = 0.0;

  /// Memory budget m [bytes] for the sizing model (Section V-B). For the
  /// devicesim backend the device's free memory is the budget instead.
  std::uint64_t memory_budget = 2ull << 30;

  /// Plane angle below which a pair is handled by the coplanar path.
  double coplanar_tolerance = kDefaultCoplanarTolerance;

  /// Pad added to the threshold in the orbit-path and node-miss filters.
  double filter_pad_km = 0.5;

  /// Time-window construction for the node filter (hybrid + legacy).
  TimeWindowOptions time_windows;

  /// Brent search options for the TCA/PCA refinement.
  RefineOptions refine;

  /// Encounters of the same pair closer than this in TCA are merged
  /// (duplicates found from adjacent sample steps refine to the same
  /// minimum); <= 0 picks max(1 s, Brent tolerance * 8).
  double merge_tolerance = 0.0;

  /// Worker pool; nullptr uses the process-global pool.
  ThreadPool* pool = nullptr;

  /// When set, the screening runs on the devicesim backend: kernel-style
  /// launches, device-accounted memory, sizing against device memory —
  /// the stand-in for the paper's CUDA variants (see DESIGN.md).
  Device* device = nullptr;

  double span_seconds() const { return t_end - t_begin; }

  double effective_merge_tolerance() const {
    return merge_tolerance > 0.0 ? merge_tolerance
                                 : (refine.time_tolerance * 8.0 > 1.0
                                        ? refine.time_tolerance * 8.0
                                        : 1.0);
  }
};

}  // namespace scod
