#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"
#include "spatial/conjunction_set.hpp"
#include "spatial/grid_hash_set.hpp"

namespace scod {

/// Reusable scratch buffers for the screening pipeline — the paper's step 1
/// ("memory allocation") made a checkout instead of a per-call allocation.
///
/// Every buffer is handed out reset to the state a fresh allocation would
/// have, at exactly the size the caller requested, so a screen borrowing
/// from the arena is bit-identical to one that allocates from scratch:
///  - per-step grids are reused only when the entry capacity matches the
///    population exactly (a GridHashSet's slot count is a pure function of
///    its entry capacity), otherwise they are rebuilt;
///  - the candidate set is reused only when its capacity equals the sizing
///    plan's request — after an in-screen grow() the capacities differ and
///    the next checkout rebuilds at plan size, exactly reproducing a cold
///    screen's growth count;
///  - plain vectors are resized to the request and shrunk back when their
///    held capacity is grossly oversized for it (shrink-on-oversize), so a
///    one-off 100k screen does not pin 100k-sized buffers under a 1k
///    steady state.
///
/// Not thread-safe: one checkout sequence at a time (enforced by
/// ScreeningContext::Use). The buffers returned by a checkout stay valid
/// until the next checkout of the same buffer.
class ScratchArena {
 public:
  /// Reuse/rebuild tallies, for tests and the serve `stats` command.
  struct Stats {
    std::uint64_t grid_reuses = 0;        ///< grids handed out pre-built
    std::uint64_t grid_rebuilds = 0;      ///< grids constructed fresh
    std::uint64_t candidate_reuses = 0;
    std::uint64_t candidate_rebuilds = 0;
    std::uint64_t vector_shrinks = 0;     ///< oversized buffers released
  };

  /// Result of a grid checkout: the first `reused` grids of `*grids` are
  /// carried over from a previous screen and still hold its entries — the
  /// caller must clear() them (the pipeline does so on its worker pool);
  /// the rest were constructed fresh and are already empty.
  struct GridCheckout {
    std::vector<GridHashSet>* grids = nullptr;
    std::size_t reused = 0;
  };

  /// Checks out `count` per-step grids, each sized for exactly `entries`
  /// satellites. Grids cached with a different entry capacity are
  /// discarded and rebuilt (their slot tables would differ from a cold
  /// screen's); surplus grids beyond `count` are released.
  GridCheckout grids(std::size_t count, std::size_t entries);

  /// Checks out the candidate set at exactly `capacity` (cleared). A
  /// cached set whose capacity differs — smaller plan, or doubled by a
  /// previous screen's grow() — is rebuilt at the requested size.
  CandidateSet& candidates(std::size_t capacity);

  /// Per-satellite speed-bound table, resized to n (contents unspecified;
  /// the pipeline overwrites every element).
  std::vector<double>& vmax(std::size_t n);

  /// Refinement output slots, resized to n (contents unspecified; only
  /// slots flagged valid are ever read).
  std::vector<Conjunction>& conjunction_slots(std::size_t n);

  /// Refinement validity flags, resized to n and zero-filled.
  std::vector<std::uint8_t>& valid_flags(std::size_t n);

  /// Flat pair list for the all-on-all baselines, cleared with capacity
  /// for `expected` pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>>& pair_buffer(
      std::size_t expected);

  /// Approximate bytes currently held across all cached buffers.
  std::size_t memory_bytes() const;

  const Stats& stats() const { return stats_; }

  /// Drops every cached buffer (the cold-start state). The next screen
  /// re-allocates everything, exactly like a fresh arena.
  void release();

 private:
  template <typename T>
  std::vector<T>& checkout(std::vector<T>& buffer, std::size_t n);

  std::vector<GridHashSet> grids_;
  std::size_t grid_entries_ = 0;  ///< entry capacity the cached grids share
  std::optional<CandidateSet> candidates_;
  std::vector<double> vmax_;
  std::vector<Conjunction> conjunction_slots_;
  std::vector<std::uint8_t> valid_flags_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
  Stats stats_;
};

/// Long-lived state shared across screen() calls: the thread-pool binding,
/// the telemetry handle, and the scratch arena. Constructing one and
/// passing it to make_screener (or ScreeningService, which owns one) turns
/// repeat screens warm: the paper's step-1 allocation cost drops to a
/// reset while reports stay bit-identical (verified by test_context).
///
/// A context serves one screen at a time from one thread; nested
/// acquisition on the owning thread is fine (screen(span) delegates to
/// screen(propagator), streaming refinement runs mid-pipeline), concurrent
/// use from a second thread throws. Unrelated concurrent screens should
/// each use their own context — screeners without one behave exactly as
/// before, allocating per call.
class ScreeningContext {
 public:
  struct Options {
    /// Pool bound to screens run through this context when the per-call
    /// ScreeningConfig does not name one; nullptr keeps the process-global
    /// pool.
    ThreadPool* pool = nullptr;
    /// Telemetry handle: when true, obs counters are enabled for the
    /// duration of every screen run through this context (and restored
    /// afterwards). No-op in builds with SCOD_TELEMETRY=OFF.
    bool telemetry = false;
  };

  ScreeningContext() = default;
  explicit ScreeningContext(Options options) : options_(std::move(options)) {}

  ScreeningContext(const ScreeningContext&) = delete;
  ScreeningContext& operator=(const ScreeningContext&) = delete;

  ScratchArena& arena() { return arena_; }
  const ScratchArena& arena() const { return arena_; }
  const Options& options() const { return options_; }

  ThreadPool& pool() const {
    return options_.pool != nullptr ? *options_.pool : global_thread_pool();
  }

  /// Returns `config` with the context's pool bound, unless the caller
  /// already chose one (an explicit per-call pool always wins).
  ScreeningConfig apply(const ScreeningConfig& config) const {
    ScreeningConfig out = config;
    if (out.pool == nullptr && options_.pool != nullptr) out.pool = options_.pool;
    return out;
  }

  /// RAII guard a screen holds while borrowing from the context. Reentrant
  /// on the owning thread; throws std::logic_error when a second thread
  /// tries to screen through a context that is already in use.
  class Use {
   public:
    explicit Use(ScreeningContext& context);
    ~Use();

    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;

   private:
    ScreeningContext& context_;
  };

 private:
  Options options_;
  ScratchArena arena_;
  std::atomic<int> depth_{0};
  std::atomic<std::thread::id> owner_{};
  bool telemetry_was_enabled_ = false;  ///< outermost Use only; owner thread
};

namespace detail {

/// Bound-or-ephemeral context for one screen() call: screeners bind an
/// optional long-lived context; when none is bound each call runs against
/// a throwaway cold context, so the warm and cold paths are one code path.
class ContextLease {
 public:
  explicit ContextLease(ScreeningContext* bound) {
    if (bound == nullptr) bound = &ephemeral_.emplace();
    context_ = bound;
  }

  ScreeningContext* get() const { return context_; }
  ScreeningContext* operator->() const { return context_; }
  ScreeningContext& operator*() const { return *context_; }

 private:
  std::optional<ScreeningContext> ephemeral_;
  ScreeningContext* context_ = nullptr;
};

}  // namespace detail

}  // namespace scod
