#include "core/grid_screener.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "obs/telemetry.hpp"
#include "pca/pair_evaluator.hpp"
#include "pca/refine.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/stopwatch.hpp"

namespace scod {

namespace {

/// Step 4 for one batch of candidates: Brent refinement, one logical
/// thread per candidate (kernel-style fixed output slots keep the phase
/// lock-free). Returns the raw (unmerged) sub-threshold conjunctions.
/// When the propagator is the concrete TwoBody/Contour pair, each candidate
/// snapshots both cache entries into a PairStateEvaluator so every Brent
/// objective evaluation is a direct call instead of two virtual dispatches.
std::vector<Conjunction> refine_candidates(const Propagator& propagator,
                                           const ScreeningConfig& config,
                                           const GridPipelineResult& pipeline,
                                           const std::vector<Candidate>& candidates,
                                           ScratchArena& arena) {
  std::vector<Conjunction>& slots = arena.conjunction_slots(candidates.size());
  std::vector<std::uint8_t>& valid = arena.valid_flags(candidates.size());

  const RefineFastPath fast = RefineFastPath::probe(propagator);
  detail::execute(config, candidates.size(), [&](std::size_t i) {
    const Candidate& c = candidates[i];
    const double t_s = pipeline.sample_time(c.step, config.t_begin, config.t_end);
    // "t is the time it takes the slower of both satellites to cross two
    // cells, which we can calculate simply by using the velocity vector at
    // that time step" (Section IV-C).
    std::optional<Encounter> encounter;
    if (fast.available()) {
      const PairStateEvaluator eval = fast.pair(c.sat_a, c.sat_b);
      const double radius = grid_search_radius(
          pipeline.cell_size, std::min(eval.speed_a(t_s), eval.speed_b(t_s)));
      encounter = refine_candidate_fn([&eval](double t) { return eval.distance(t); },
                                      t_s, radius, config.t_begin, config.t_end,
                                      config.refine);
    } else {
      const double speed_a = propagator.state(c.sat_a, t_s).velocity.norm();
      const double speed_b = propagator.state(c.sat_b, t_s).velocity.norm();
      const double radius =
          grid_search_radius(pipeline.cell_size, std::min(speed_a, speed_b));
      encounter = refine_candidate(propagator, c.sat_a, c.sat_b, t_s, radius,
                                   config.t_begin, config.t_end, config.refine);
    }
    if (encounter.has_value() && encounter->pca <= config.threshold_km) {
      slots[i] = {c.sat_a, c.sat_b, encounter->tca, encounter->pca};
      valid[i] = 1;
    }
  });

  std::vector<Conjunction> raw;
  raw.reserve(candidates.size() / 4 + 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (valid[i]) raw.push_back(slots[i]);
  }
  obs::count(obs::Counter::kConjunctionsRaw, raw.size());
  return raw;
}

void fill_stats(ScreeningReport& report, const Propagator& propagator,
                const GridPipelineResult& pipeline) {
  report.timings.allocation += pipeline.allocation_seconds;
  report.timings.insertion = pipeline.insertion_seconds;
  report.timings.detection = pipeline.detection_seconds;
  report.stats.satellites = propagator.size();
  report.stats.total_samples = pipeline.plan.total_samples;
  report.stats.parallel_samples = pipeline.plan.parallel_samples;
  report.stats.rounds = pipeline.plan.rounds;
  report.stats.seconds_per_sample = pipeline.sample_period;
  report.stats.cell_size_km = pipeline.cell_size;
  report.stats.candidates = pipeline.total_candidates;
  report.stats.refinements = pipeline.total_candidates;
  report.stats.candidate_set_growths = pipeline.candidate_set_growths;
  report.stats.grid_memory_bytes = pipeline.grid_memory_bytes;
  report.stats.candidate_memory_bytes = pipeline.candidate_memory_bytes;
}

}  // namespace

GridPipelineOptions GridScreener::default_options() {
  GridPipelineOptions options;
  options.seconds_per_sample = kDefaultSecondsPerSample;
  options.count_model = ConjunctionCountModel::paper_grid();
  return options;
}

GridScreener::GridScreener(GridPipelineOptions options, ScreeningContext* context)
    : options_(options),
      context_(context != nullptr ? context : options.context) {
  options_.context = nullptr;  // resolved per call through context_
}

ScreeningReport GridScreener::screen(std::span<const Satellite> satellites,
                                     const ScreeningConfig& config) const {
  Stopwatch alloc_watch;
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(satellites, solver);
  const double setup = alloc_watch.seconds();

  ScreeningReport report = screen(propagator, config);
  report.timings.allocation += setup;
  return report;
}

ScreeningReport GridScreener::screen(const Propagator& propagator,
                                     const ScreeningConfig& caller_config) const {
  detail::ContextLease lease(context_);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  GridPipelineOptions options = options_;
  if (config.seconds_per_sample > 0.0) {
    options.seconds_per_sample = config.seconds_per_sample;
  }
  options.context = lease.get();

  const GridPipelineResult pipeline = run_grid_pipeline(propagator, config, options);

  ScreeningReport report;
  Stopwatch refine_watch;
  report.conjunctions =
      merge_conjunctions(refine_candidates(propagator, config, pipeline,
                                           pipeline.candidates, lease->arena()),
                         config.effective_merge_tolerance());
  report.timings.refinement = refine_watch.seconds();
  obs::add_seconds(obs::Counter::kTimeRefinementNs, report.timings.refinement);
  obs::count(obs::Counter::kConjunctionsReported, report.conjunctions.size());
  fill_stats(report, propagator, pipeline);
  return report;
}

ScreeningReport GridScreener::screen_streaming(const Propagator& propagator,
                                               const ScreeningConfig& caller_config,
                                               const ConjunctionSink& sink) const {
  detail::ContextLease lease(context_);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  GridPipelineOptions options = options_;
  if (config.seconds_per_sample > 0.0) {
    options.seconds_per_sample = config.seconds_per_sample;
  }
  options.context = lease.get();

  const double merge_tolerance = config.effective_merge_tolerance();
  double refine_seconds = 0.0;
  // Last emitted TCA per pair, to suppress duplicates of a minimum found
  // from both sides of a round boundary.
  std::unordered_map<std::uint64_t, double> last_emitted;

  const GridRoundSink round_sink = [&](std::size_t round,
                                       std::vector<Candidate>&& candidates,
                                       const GridPipelineResult& pipeline) {
    Stopwatch watch;
    std::vector<Conjunction> merged = merge_conjunctions(
        refine_candidates(propagator, config, pipeline, candidates,
                          lease->arena()),
        merge_tolerance);

    std::vector<Conjunction> fresh;
    fresh.reserve(merged.size());
    for (const Conjunction& c : merged) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(c.sat_a) << 32) | c.sat_b;
      const auto it = last_emitted.find(key);
      if (it == last_emitted.end() || c.tca - it->second > merge_tolerance) {
        fresh.push_back(c);
        last_emitted[key] = c.tca;
      }
    }
    const double round_seconds = watch.seconds();
    refine_seconds += round_seconds;
    obs::add_seconds(obs::Counter::kTimeRefinementNs, round_seconds);
    obs::count(obs::Counter::kConjunctionsReported, fresh.size());
    sink(round, fresh);
  };

  const GridPipelineResult pipeline =
      run_grid_pipeline_streaming(propagator, config, options, round_sink);

  ScreeningReport report;
  report.timings.refinement = refine_seconds;
  fill_stats(report, propagator, pipeline);
  return report;
}

}  // namespace scod
