#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "core/config.hpp"
#include "core/grid_pipeline.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

class ScreeningContext;

/// The conjunction-detection variants of the paper's evaluation.
enum class Variant {
  kGrid,    ///< purely grid-based (Section III, first variant)
  kHybrid,  ///< grid + classical orbital filters (second variant)
  kLegacy,  ///< single-threaded all-on-all filter chain (baseline)
  kSieve,   ///< all-on-all smart sieve (related-work baseline [16], [17])
};

std::string variant_name(Variant variant);

/// Inverse of variant_name; nullopt for an unknown name. The one parser
/// every tool shares (CLI, fuzz, benches) — no per-tool string switches.
std::optional<Variant> parse_variant(std::string_view name);

/// Common interface of the four screening variants. A screener is an
/// immutable strategy object: screen() is const and safe to call
/// repeatedly; all per-run state lives on the stack or in the attached
/// ScreeningContext. Obtain instances through make_screener.
class Screener {
 public:
  virtual ~Screener() = default;

  virtual Variant variant() const = 0;

  /// Screens a satellite population: builds the variant's internal
  /// propagator (timed as allocation) and screens it.
  virtual ScreeningReport screen(std::span<const Satellite> satellites,
                                 const ScreeningConfig& config) const = 0;

  /// Screens with a caller-supplied propagator (e.g. the J2 secular
  /// propagator); the propagator must be thread-safe.
  virtual ScreeningReport screen(const Propagator& propagator,
                                 const ScreeningConfig& config) const = 0;
};

/// Options of the legacy (all-on-all filter chain) variant.
struct LegacyScreenerOptions {
  /// Sampling step of the dense encounter scan used for coplanar pairs,
  /// where the node-window construction degenerates [s].
  double dense_scan_step = 16.0;
};

/// Options of the smart-sieve variant.
struct SieveScreenerOptions {
  /// The coarse sieve threshold is `coarse_factor` * screening threshold;
  /// below it the pair is considered inside a proximity window and a Brent
  /// search runs. Larger values find windows earlier (fewer, longer skips)
  /// at the cost of more refinements.
  double coarse_factor = 8.0;
  /// Lower bound on a skip [s]; prevents pathological crawling when a pair
  /// hovers just outside the coarse threshold.
  double min_skip = 1.0;
};

/// Per-variant construction options of make_screener. An unset field means
/// the variant's own defaults; fields of other variants are ignored.
struct ScreenerOptions {
  std::optional<GridPipelineOptions> pipeline;    ///< grid + hybrid
  std::optional<LegacyScreenerOptions> legacy;    ///< legacy
  std::optional<SieveScreenerOptions> sieve;      ///< sieve
};

/// Convenience for the common "grid variant with these pipeline options"
/// call: make_screener(Variant::kGrid, ctx, pipeline_options(p)).
inline ScreenerOptions pipeline_options(GridPipelineOptions pipeline) {
  ScreenerOptions options;
  options.pipeline = std::move(pipeline);
  return options;
}

/// Factory behind every variant dispatch site. With a context the returned
/// screener borrows its scratch from the context's arena (warm repeat
/// screens, bit-identical reports); without one each screen() call
/// allocates and frees as before. The context must outlive the screener.
std::unique_ptr<Screener> make_screener(Variant variant,
                                        ScreeningContext* context = nullptr,
                                        const ScreenerOptions& options = {});

}  // namespace scod
