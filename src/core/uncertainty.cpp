#include "core/uncertainty.hpp"

#include <algorithm>
#include <cmath>

namespace scod {

double UncertaintyModel::pair_threshold(std::uint32_t a, std::uint32_t b) const {
  const double sa = sigma_of(a);
  const double sb = sigma_of(b);
  return hard_body_km + k_sigma * std::sqrt(sa * sa + sb * sb);
}

double UncertaintyModel::max_threshold() const {
  double top1 = default_sigma_km;
  double top2 = default_sigma_km;
  for (double s : sigma_km) {
    if (s > top1) {
      top2 = top1;
      top1 = s;
    } else if (s > top2) {
      top2 = s;
    }
  }
  return hard_body_km + k_sigma * std::sqrt(top1 * top1 + top2 * top2);
}

ScreeningReport screen_with_uncertainty(std::span<const Satellite> satellites,
                                        ScreeningConfig config, Variant variant,
                                        const UncertaintyModel& model) {
  // Superset screening at the most conservative threshold any pair needs.
  config.threshold_km = model.max_threshold();
  ScreeningReport report = screen(satellites, config, variant);

  std::erase_if(report.conjunctions, [&](const Conjunction& c) {
    return c.pca > model.pair_threshold(c.sat_a, c.sat_b);
  });
  return report;
}

}  // namespace scod
