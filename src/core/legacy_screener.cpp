#include "core/legacy_screener.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "core/context.hpp"
#include "filters/apogee_perigee.hpp"
#include "filters/coplanarity.hpp"
#include "filters/dense_scan.hpp"
#include "filters/orbit_path.hpp"
#include "filters/time_windows.hpp"
#include "obs/telemetry.hpp"
#include "pca/refine.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"
#include "util/stopwatch.hpp"

namespace scod {

LegacyScreener::LegacyScreener() : options_(Options{}) {}

LegacyScreener::LegacyScreener(Options options, ScreeningContext* context)
    : options_(options), context_(context) {}

ScreeningReport LegacyScreener::screen(std::span<const Satellite> satellites,
                                       const ScreeningConfig& config) const {
  Stopwatch alloc_watch;
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(satellites, solver);
  const double setup = alloc_watch.seconds();

  ScreeningReport report = screen(propagator, config);
  report.timings.allocation += setup;
  return report;
}

ScreeningReport LegacyScreener::screen(const Propagator& propagator,
                                       const ScreeningConfig& config) const {
  if (config.device != nullptr) {
    throw std::invalid_argument(
        "screen: the legacy variant has no device backend");
  }
  // The single-threaded chain carries no sized scratch; the context is
  // only the telemetry handle (and the cross-thread misuse guard).
  detail::ContextLease lease(context_);
  ScreeningContext::Use use(*lease);

  ScreeningReport report;
  const std::size_t n = propagator.size();
  const double reach = config.threshold_km + config.filter_pad_km;

  std::vector<Conjunction> raw;
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;

  DenseScanOptions scan_options;
  scan_options.step = options_.dense_scan_step;
  scan_options.refine = config.refine;

  std::size_t pairs = 0, rejected_ap = 0, rejected_path = 0, rejected_windows = 0,
              coplanar_count = 0, refinements = 0, window_pass = 0, survivors = 0;

  Stopwatch section;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const KeplerElements& ea = propagator.elements(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const KeplerElements& eb = propagator.elements(j);
      ++pairs;

      if (!apogee_perigee_overlap(ea, eb, reach)) {
        ++rejected_ap;
        continue;
      }

      const auto sat_a = static_cast<std::uint32_t>(i);
      const auto sat_b = static_cast<std::uint32_t>(j);

      if (are_coplanar(ea, eb, config.coplanar_tolerance)) {
        ++coplanar_count;
        if (!orbit_path_overlap(ea, eb, config.threshold_km, config.filter_pad_km)) {
          ++rejected_path;
          continue;
        }
        ++survivors;
        filter_seconds += section.seconds();
        section.restart();
        // Coplanar survivor: exhaustive sampled encounter search.
        scan_options.refine_below = 8.0 * reach + 2.0 * kLeoSpeed * scan_options.step;
        for (const Encounter& e :
             scan_encounters(propagator, sat_a, sat_b, config.t_begin, config.t_end,
                             scan_options)) {
          ++refinements;
          if (e.pca <= config.threshold_km) raw.push_back({sat_a, sat_b, e.tca, e.pca});
        }
        refine_seconds += section.seconds();
        section.restart();
        continue;
      }

      // Non-coplanar: node-miss check (the analytic orbit path filter).
      const auto crossings = node_crossings(ea, eb);
      if (crossings[0].miss_distance > reach && crossings[1].miss_distance > reach) {
        ++rejected_path;
        continue;
      }

      const std::vector<Interval> windows = conjunction_time_windows(
          ea, eb, config.t_begin, config.t_end, config.threshold_km,
          config.time_windows);
      if (windows.empty()) {
        ++rejected_windows;
        continue;
      }
      ++window_pass;
      ++survivors;

      filter_seconds += section.seconds();
      section.restart();
      for (const Interval& window : windows) {
        const double ext = 0.25 * window.length() + 5.0;
        const auto encounter = refine_on_interval(propagator, sat_a, sat_b,
                                                  window.lo - ext, window.hi + ext,
                                                  config.refine);
        ++refinements;
        if (encounter.has_value() && encounter->pca <= config.threshold_km &&
            encounter->tca >= config.t_begin && encounter->tca <= config.t_end) {
          raw.push_back({sat_a, sat_b, encounter->tca, encounter->pca});
        }
      }
      refine_seconds += section.seconds();
      section.restart();
    }
  }
  filter_seconds += section.seconds();

  if (obs::enabled()) {
    obs::count(obs::Counter::kFilterPairsIn, pairs);
    obs::count(obs::Counter::kFilterApogeePerigeeRejects, rejected_ap);
    obs::count(obs::Counter::kFilterPathChecks, pairs - rejected_ap);
    obs::count(obs::Counter::kFilterPathRejects, rejected_path);
    obs::count(obs::Counter::kFilterCoplanarPairs, coplanar_count);
    obs::count(obs::Counter::kFilterWindowChecks, rejected_windows + window_pass);
    obs::count(obs::Counter::kFilterWindowRejects, rejected_windows);
    obs::count(obs::Counter::kFilterSurvivors, survivors);
    obs::count(obs::Counter::kConjunctionsRaw, raw.size());
    obs::add_seconds(obs::Counter::kTimeFilteringNs, filter_seconds);
    obs::add_seconds(obs::Counter::kTimeRefinementNs, refine_seconds);
  }

  report.conjunctions =
      merge_conjunctions(std::move(raw), config.effective_merge_tolerance());
  obs::count(obs::Counter::kConjunctionsReported, report.conjunctions.size());
  report.timings.filtering = filter_seconds;
  report.timings.refinement = refine_seconds;

  report.stats.satellites = n;
  report.stats.pairs_examined = pairs;
  report.stats.filtered_apogee_perigee = rejected_ap;
  report.stats.filtered_path = rejected_path;
  report.stats.filtered_windows = rejected_windows;
  report.stats.coplanar_pairs = coplanar_count;
  report.stats.refinements = refinements;
  return report;
}

}  // namespace scod
