#include "core/sieve_screener.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "filters/apogee_perigee.hpp"
#include "obs/telemetry.hpp"
#include "orbit/geometry.hpp"
#include "pca/pair_evaluator.hpp"
#include "pca/refine.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/stopwatch.hpp"

namespace scod {

SieveScreener::SieveScreener() : options_(Options{}) {}

SieveScreener::SieveScreener(Options options, ScreeningContext* context)
    : options_(options), context_(context) {}

ScreeningReport SieveScreener::screen(std::span<const Satellite> satellites,
                                      const ScreeningConfig& config) const {
  Stopwatch alloc_watch;
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(satellites, solver);
  const double setup = alloc_watch.seconds();

  ScreeningReport report = screen(propagator, config);
  report.timings.allocation += setup;
  return report;
}

ScreeningReport SieveScreener::screen(const Propagator& propagator,
                                      const ScreeningConfig& caller_config) const {
  if (caller_config.device != nullptr) {
    throw std::invalid_argument(
        "screen: the sieve variant has no device backend");
  }
  detail::ContextLease lease(context_);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  ScreeningReport report;
  const std::size_t n = propagator.size();
  if (n < 2) return report;

  Stopwatch alloc_watch;
  std::vector<double>& vmax = lease->arena().vmax(n);
  for (std::size_t i = 0; i < n; ++i) vmax[i] = max_speed(propagator.elements(i));

  // Enumerate the upper-triangle pairs once so the parallel loop is flat.
  std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs =
      lease->arena().pair_buffer(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  report.timings.allocation += alloc_watch.seconds();

  const double coarse = options_.coarse_factor * config.threshold_km;
  std::atomic<std::size_t> rejected_ap{0}, refinements{0}, distance_evals{0};

  Stopwatch sieve_watch;
  std::vector<Conjunction> all;
  std::mutex merge_mutex;

  // The sieve evaluates the pairwise distance in a tight skipping loop, so
  // the devirtualized evaluator pays off even more than in refinement: one
  // snapshot per pair covers the whole time scan.
  const RefineFastPath fast = RefineFastPath::probe(propagator);

  detail::pool_of(config).parallel_for_ranges(
      pairs.size(), [&](std::size_t begin, std::size_t end) {
        std::vector<Conjunction> local;
        std::size_t local_evals = 0, local_refines = 0, local_ap = 0;

        for (std::size_t p = begin; p < end; ++p) {
          const auto [a, b] = pairs[p];
          // The apogee/perigee filter stays worthwhile: it removes the
          // radially separated pairs in O(1) before any propagation.
          if (!apogee_perigee_overlap(propagator.elements(a), propagator.elements(b),
                                      config.threshold_km + config.filter_pad_km)) {
            ++local_ap;
            continue;
          }

          const std::optional<PairStateEvaluator> eval =
              fast.available() ? std::optional<PairStateEvaluator>(fast.pair(a, b))
                               : std::nullopt;
          const auto pair_distance = [&](double t) {
            return eval.has_value() ? eval->distance(t)
                                    : propagator.distance(a, b, t);
          };

          const double closing_speed = vmax[a] + vmax[b];
          std::vector<Encounter> encounters;

          double t = config.t_begin;
          while (t <= config.t_end) {
            const double d = pair_distance(t);
            ++local_evals;
            if (d > coarse) {
              // Sieve step: the distance cannot shrink to the threshold
              // before the gap is closed at the maximum closing speed.
              t += std::max((d - config.threshold_km) / closing_speed,
                            options_.min_skip);
              continue;
            }
            // Proximity window: bracket the local minimum around t. The
            // window cannot be wider than the time to traverse the coarse
            // sphere at the lowest realistic speed. Clamp to the span so a
            // minimum sitting exactly on t_begin/t_end is reported instead
            // of being discarded toward a neighbouring interval that does
            // not exist.
            const double half = std::max(2.0 * coarse / closing_speed, 2.0);
            const auto enc =
                refine_candidate_fn(pair_distance, t, half, config.t_begin,
                                    config.t_end, config.refine);
            ++local_refines;
            if (enc.has_value() && enc->pca <= config.threshold_km) {
              encounters.push_back(*enc);
            }
            t += half + options_.min_skip;  // move past this window
          }

          for (const Encounter& e :
               merge_encounters(std::move(encounters),
                                config.effective_merge_tolerance())) {
            local.push_back({a, b, e.tca, e.pca});
            obs::count(obs::Counter::kConjunctionsRaw);
          }
        }

        distance_evals.fetch_add(local_evals, std::memory_order_relaxed);
        refinements.fetch_add(local_refines, std::memory_order_relaxed);
        rejected_ap.fetch_add(local_ap, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(merge_mutex);
        all.insert(all.end(), local.begin(), local.end());
      });

  report.conjunctions =
      merge_conjunctions(std::move(all), config.effective_merge_tolerance());
  report.timings.filtering = sieve_watch.seconds();

  if (obs::enabled()) {
    // The sieve's filter funnel is two-stage: the apogee/perigee test, then
    // the skipping distance scan — survivors are every pair the scan had to
    // examine (in == ap_rejects + survivors).
    obs::count(obs::Counter::kFilterPairsIn, pairs.size());
    obs::count(obs::Counter::kFilterApogeePerigeeRejects, rejected_ap.load());
    obs::count(obs::Counter::kFilterSurvivors,
               pairs.size() - rejected_ap.load());
    obs::count(obs::Counter::kSieveDistanceEvals, distance_evals.load());
    obs::count(obs::Counter::kConjunctionsReported, report.conjunctions.size());
    obs::add_seconds(obs::Counter::kTimeFilteringNs, report.timings.filtering);
  }

  report.stats.satellites = n;
  report.stats.pairs_examined = pairs.size();
  report.stats.filtered_apogee_perigee = rejected_ap.load();
  report.stats.refinements = refinements.load();
  // Repurpose the candidates counter for the sieve's distance evaluations
  // (its analogue of grid candidates: the work the skipping did not avoid).
  report.stats.candidates = distance_evals.load();
  return report;
}

}  // namespace scod
