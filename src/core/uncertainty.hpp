#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screen.hpp"
#include "orbit/elements.hpp"

namespace scod {

/// Per-object position uncertainty driving pair-specific screening
/// thresholds.
///
/// The paper screens with a uniform threshold "which size should include
/// the largest typical uncertainties" (Section III). This layer makes that
/// link explicit: with 1-sigma position uncertainties per object, the pair
/// (i, j) is screened at
///
///     d_ij = hard_body_km + k_sigma * sqrt(sigma_i^2 + sigma_j^2),
///
/// i.e. a k-sigma miss plus the physical size budget. Objects without an
/// entry use `default_sigma_km`.
struct UncertaintyModel {
  std::vector<double> sigma_km;    ///< indexed by satellite index
  double default_sigma_km = 0.5;
  double k_sigma = 3.0;
  double hard_body_km = 0.02;

  double sigma_of(std::uint32_t index) const {
    return index < sigma_km.size() ? sigma_km[index] : default_sigma_km;
  }

  /// Pair-specific screening threshold d_ij [km].
  double pair_threshold(std::uint32_t a, std::uint32_t b) const;

  /// The largest pair threshold any two objects can produce — the uniform
  /// threshold the paper's screening phase would have to use to be as
  /// conservative as the per-pair rule.
  double max_threshold() const;
};

/// Screens with per-pair uncertainty thresholds: runs the chosen variant
/// at the model's max_threshold() (a superset of every per-pair result —
/// screening at a larger threshold can only add encounters), then keeps
/// each conjunction only if its PCA is below its own pair's threshold.
/// Stats/timings are the inner run's; conjunctions are the filtered set.
ScreeningReport screen_with_uncertainty(std::span<const Satellite> satellites,
                                        ScreeningConfig config, Variant variant,
                                        const UncertaintyModel& model);

}  // namespace scod
