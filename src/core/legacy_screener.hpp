#pragma once

#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The traditional deterministic all-on-all baseline the paper measures
/// against ("legacy", [45]): every pair of satellites is pushed through a
/// chain of orbital filters — apogee/perigee, coplanarity, orbit-path /
/// node-miss, node time windows — and the survivors get a Brent TCA/PCA
/// search. Deliberately single-threaded, like the paper's numba-JIT Python
/// baseline, so the quadratic pair loop is undiluted.
class LegacyScreener {
 public:
  struct Options {
    /// Sampling step of the dense encounter scan used for coplanar pairs,
    /// where the node-window construction degenerates [s].
    double dense_scan_step = 16.0;
  };

  LegacyScreener();
  explicit LegacyScreener(Options options);

  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const;

 private:
  Options options_;
};

}  // namespace scod
