#pragma once

#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The traditional deterministic all-on-all baseline the paper measures
/// against ("legacy", [45]): every pair of satellites is pushed through a
/// chain of orbital filters — apogee/perigee, coplanarity, orbit-path /
/// node-miss, node time windows — and the survivors get a Brent TCA/PCA
/// search. Deliberately single-threaded, like the paper's numba-JIT Python
/// baseline, so the quadratic pair loop is undiluted.
class LegacyScreener final : public Screener {
 public:
  using Options = LegacyScreenerOptions;

  LegacyScreener();
  explicit LegacyScreener(Options options, ScreeningContext* context = nullptr);

  Variant variant() const override { return Variant::kLegacy; }

  /// Throws std::invalid_argument when config.device is set: the legacy
  /// baseline is CPU-only (and single-threaded) by definition.
  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const override;

  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const override;

 private:
  Options options_;
  ScreeningContext* context_ = nullptr;  ///< telemetry handle only; the
                                         ///< chain needs no sized scratch
};

}  // namespace scod
