#pragma once

#include <functional>
#include <span>

#include "core/config.hpp"
#include "core/grid_pipeline.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
#include "orbit/elements.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// The purely grid-based conjunction-detection variant (Section III):
/// small sampling steps, small cells, every grid candidate goes straight
/// to the Brent TCA/PCA refinement — no orbital filters. Lower memory
/// footprint than the hybrid variant at the cost of more refinement work.
class GridScreener final : public Screener {
 public:
  /// Default sampling period of the grid variant [s]; Eq. (1) then gives
  /// cells of threshold + 7.8 * s_ps km. Overridden by
  /// ScreeningConfig::seconds_per_sample when that is positive.
  static constexpr double kDefaultSecondsPerSample = 4.0;

  /// With a context, pipeline scratch and refinement slots are borrowed
  /// from its arena across calls; the context must outlive the screener.
  explicit GridScreener(GridPipelineOptions options = default_options(),
                        ScreeningContext* context = nullptr);

  static GridPipelineOptions default_options();

  Variant variant() const override { return Variant::kGrid; }

  /// Screens a satellite population: builds the Contour-solver two-body
  /// propagator internally (timed as allocation) and runs the pipeline.
  ScreeningReport screen(std::span<const Satellite> satellites,
                         const ScreeningConfig& config) const override;

  /// Screens with a caller-supplied propagator (e.g. the J2 secular
  /// propagator); the propagator must be thread-safe.
  ScreeningReport screen(const Propagator& propagator,
                         const ScreeningConfig& config) const override;

  /// Conjunctions found in one streaming round.
  using ConjunctionSink =
      std::function<void(std::size_t round, std::span<const Conjunction>)>;

  /// Bounded-memory streaming mode: candidates are refined and emitted
  /// round by round instead of being held for the whole span, so
  /// arbitrarily long screening horizons run in the memory of a single
  /// round (the time-slicing parallelization strategy of the related work
  /// [23], composed with the paper's sample-parallel rounds). Conjunctions
  /// arrive through `sink` in round order, sorted within each round;
  /// duplicates of a minimum straddling a round boundary are suppressed.
  /// The returned report carries timings/stats only (empty conjunctions).
  ScreeningReport screen_streaming(const Propagator& propagator,
                                   const ScreeningConfig& config,
                                   const ConjunctionSink& sink) const;

 private:
  GridPipelineOptions options_;
  ScreeningContext* context_ = nullptr;
};

}  // namespace scod
