#pragma once

#include <span>
#include <string>

#include "core/config.hpp"
#include "core/grid_screener.hpp"
#include "core/hybrid_screener.hpp"
#include "core/legacy_screener.hpp"
#include "core/sieve_screener.hpp"
#include "core/report.hpp"

namespace scod {

/// The three conjunction-detection variants of the paper's evaluation.
enum class Variant {
  kGrid,    ///< purely grid-based (Section III, first variant)
  kHybrid,  ///< grid + classical orbital filters (second variant)
  kLegacy,  ///< single-threaded all-on-all filter chain (baseline)
  kSieve,   ///< all-on-all smart sieve (related-work baseline [16], [17])
};

std::string variant_name(Variant variant);

/// One-call convenience API: screens `satellites` over the configured span
/// with the chosen variant. Equivalent to constructing the corresponding
/// screener with default options. Pair a Device with config.device to run
/// the grid/hybrid variants on the devicesim backend (the legacy variant
/// is CPU-only by definition).
ScreeningReport screen(std::span<const Satellite> satellites,
                       const ScreeningConfig& config, Variant variant);

}  // namespace scod
