#pragma once

#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
// Concrete screeners, re-exported for callers that construct one directly
// (benches, tests); new code should go through make_screener.
#include "core/grid_screener.hpp"
#include "core/hybrid_screener.hpp"
#include "core/legacy_screener.hpp"
#include "core/sieve_screener.hpp"

namespace scod {

/// One-call convenience API: screens `satellites` over the configured span
/// with the chosen variant. Equivalent to
/// make_screener(variant)->screen(satellites, config). Pair a Device with
/// config.device to run the grid/hybrid variants on the devicesim backend
/// (the all-on-all baselines are CPU-only by definition).
ScreeningReport screen(std::span<const Satellite> satellites,
                       const ScreeningConfig& config, Variant variant);

}  // namespace scod
