#include "core/grid_pipeline.hpp"

#include <atomic>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "obs/telemetry.hpp"
#include "orbit/geometry.hpp"
#include "propagation/two_body.hpp"
#include "spatial/cell.hpp"
#include "spatial/grid_hash_set.hpp"
#include "util/stopwatch.hpp"

namespace scod {

using detail::execute;
using detail::pool_of;

namespace {

/// Simulates the host->device upload of `bytes` of propagation data with
/// real (chunked) copies so the transfer accounting reflects actual bytes.
void simulate_upload(Device& device, DeviceBuffer<std::byte>& dst, std::size_t bytes) {
  static constexpr std::size_t kChunk = 1 << 20;
  std::vector<std::byte> staging(std::min(bytes, kChunk));
  std::size_t offset = 0;
  while (offset < bytes) {
    const std::size_t n = std::min(kChunk, bytes - offset);
    // The staging buffer stands in for the Kepler-solver cache slice; the
    // copy itself and its byte count are real.
    device.copy_to_device(dst, staging.data(), n);
    offset += n;
  }
}

}  // namespace

namespace {

GridPipelineResult run_pipeline_impl(const Propagator& propagator,
                                     const ScreeningConfig& caller_config,
                                     const GridPipelineOptions& options,
                                     const GridRoundSink* sink) {
  GridPipelineResult result;

  // Bound-or-ephemeral context: step-1 scratch is always checked out of an
  // arena; without an attached context it is a throwaway one, which is
  // exactly the old allocate-per-call behavior.
  detail::ContextLease lease(options.context);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  Stopwatch alloc_watch;

  const std::size_t n = propagator.size();
  if (n < 2) return result;
  if (!(config.t_begin < config.t_end)) {
    throw std::invalid_argument("run_grid_pipeline: empty time span");
  }

  Device* device = config.device;
  const std::uint64_t budget =
      device != nullptr ? device->memory_free() : config.memory_budget;

  if (!options.dirty_mask.empty() && options.dirty_mask.size() != n) {
    throw std::invalid_argument(
        "run_grid_pipeline: dirty_mask size does not match the population");
  }
  const std::uint8_t* dirty = options.dirty_mask.empty()
                                  ? nullptr
                                  : options.dirty_mask.data();

  // Resolved once: the batched insertion path needs the concrete SoA
  // propagator and only applies on the CPU backend.
  const TwoBodyPropagator* batch_propagator =
      options.batch_propagation && device == nullptr
          ? dynamic_cast<const TwoBodyPropagator*>(&propagator)
          : nullptr;

  // Sizing (Section V-B): candidate capacity from the Extra-P model, then
  // the sample parallelism p from the remaining budget. The automatic
  // s_ps reduction kicks in when the conjunction map alone busts the
  // budget (the paper's Fig. 10c regime).
  SizingRequest request;
  request.satellites = n;
  request.span_seconds = config.span_seconds();
  request.seconds_per_sample = options.seconds_per_sample;
  request.memory_budget = budget;

  const AutoAdjustResult adjusted =
      auto_adjust_sps(options.count_model, request, config.threshold_km);
  if (!adjusted.feasible) {
    throw std::runtime_error(
        "run_grid_pipeline: population does not fit into the memory budget "
        "even at 1 s sampling");
  }
  const double sps = adjusted.seconds_per_sample;
  request.seconds_per_sample = sps;
  request.candidate_capacity = adjusted.candidate_capacity;
  result.plan = plan_samples(request);
  result.sample_period = sps;
  result.cell_size = options.cell_size_override > 0.0
                         ? options.cell_size_override
                         : grid_cell_size(config.threshold_km, sps);

  const CellIndexer indexer(result.cell_size);
  const std::size_t p = result.plan.parallel_samples;
  const std::size_t total_steps = result.plan.total_samples;

  // Step 1 (allocation): p per-step grids, the candidate set, and the
  // per-satellite speed bounds used by the distance prefilter — checked
  // out of the arena at exactly the sizes a cold screen would allocate.
  // Carried-over grids still hold the previous screen's entries; reset
  // them here, on the worker pool, like the between-rounds clears below.
  ScratchArena& arena = lease->arena();
  const ScratchArena::GridCheckout grid_checkout = arena.grids(p, n);
  std::vector<GridHashSet>& grids = *grid_checkout.grids;
  pool_of(config).parallel_for(
      grid_checkout.reused, [&](std::size_t g) { grids[g].clear(); },
      /*grain=*/1);
  CandidateSet& candidates = arena.candidates(request.candidate_capacity);

  std::vector<double>& vmax = arena.vmax(n);
  pool_of(config).parallel_for(n, [&](std::size_t i) {
    vmax[i] = max_speed(propagator.elements(i));
  });

  for (const GridHashSet& g : grids) result.grid_memory_bytes += g.memory_bytes();
  result.candidate_memory_bytes = candidates.memory_bytes();

  // Device mode: account the fixed data, grids and candidate map against
  // the simulated device memory and model the upload of the propagation
  // cache (the paper reports ~3% of GPU time in allocation + transfers).
  std::optional<DeviceBuffer<std::byte>> dev_fixed, dev_grids, dev_cands;
  if (device != nullptr) {
    const std::size_t fixed =
        n * (request.layout.satellite_bytes + request.layout.kepler_cache_bytes);
    dev_fixed = device->alloc<std::byte>(fixed);
    simulate_upload(*device, *dev_fixed, fixed);
    dev_grids = device->alloc<std::byte>(result.grid_memory_bytes);
    dev_cands = device->alloc<std::byte>(result.candidate_memory_bytes);
  }

  result.allocation_seconds = alloc_watch.seconds();

  const std::size_t slots = grids.front().slot_count();
  const auto full_stencil = std::span<const CellCoord>(cell_neighborhood());
  const auto half_stencil = std::span<const CellCoord>(cell_half_neighborhood());
  const auto offsets = options.half_stencil ? half_stencil : full_stencil;

  for (std::size_t round = 0; round < result.plan.rounds; ++round) {
    const std::size_t step0 = round * p;
    const std::size_t steps = std::min(p, total_steps - step0);

    if (round > 0) {
      Stopwatch clear_watch;
      pool_of(config).parallel_for(steps, [&](std::size_t g) { grids[g].clear(); },
                                   /*grain=*/1);
      result.allocation_seconds += clear_watch.seconds();
    }

    // Step 2a (INS): one logical thread per (sample, satellite) tuple. With
    // a TwoBodyPropagator on the CPU backend the tuples are handed to
    // workers as ranges and propagated through the batched SoA kernel —
    // same positions, no per-tuple virtual dispatch (bit-identical, see
    // GridPipelineOptions::batch_propagation). The devicesim backend keeps
    // the per-tuple kernel, mirroring the paper's GPU decomposition.
    Stopwatch ins_watch;
    std::atomic<std::size_t> insert_failures{0};
    if (batch_propagator != nullptr) {
      pool_of(config).parallel_for_ranges(steps * n, [&](std::size_t begin,
                                                         std::size_t end) {
        constexpr std::size_t kScratch = 256;
        Vec3 scratch[kScratch];
        std::size_t failures = 0;
        while (begin < end) {
          const std::size_t local = begin / n;
          const std::size_t sat0 = begin % n;
          const std::size_t run = std::min({end - begin, n - sat0, kScratch});
          const double t =
              result.sample_time(step0 + local, config.t_begin, config.t_end);
          batch_propagator->positions_at(t, sat0, sat0 + run, scratch);
          GridHashSet& grid = grids[local];
          for (std::size_t k = 0; k < run; ++k) {
            const Vec3& pos = scratch[k];
            if (!grid.insert(indexer.key_of(pos),
                             static_cast<std::uint32_t>(sat0 + k), pos)) {
              ++failures;
            }
          }
          begin += run;
        }
        if (failures != 0) {
          insert_failures.fetch_add(failures, std::memory_order_relaxed);
        }
      });
    } else {
      execute(config, steps * n, [&](std::size_t idx) {
        const std::size_t local = idx / n;
        const std::size_t sat = idx % n;
        const double t =
            result.sample_time(step0 + local, config.t_begin, config.t_end);
        const Vec3 pos = propagator.position(sat, t);
        if (!grids[local].insert(indexer.key_of(pos), static_cast<std::uint32_t>(sat),
                                 pos)) {
          insert_failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    if (insert_failures.load() != 0) {
      throw std::logic_error("run_grid_pipeline: grid hash set overflow "
                             "(invariant violation: one entry per satellite)");
    }
    const double ins_seconds = ins_watch.seconds();
    result.insertion_seconds += ins_seconds;
    obs::count(obs::Counter::kSamplesPropagated, steps * n);
    obs::add_seconds(obs::Counter::kTimeInsertionNs, ins_seconds);

    // Step 2b (CD): one logical thread per (sample, slot). Retried with a
    // grown candidate set if the Extra-P sizing underestimated.
    Stopwatch cd_watch;
    const std::size_t candidates_before = candidates.size();
    for (;;) {
      std::atomic<bool> overflow{false};
      // Funnel tallies for this attempt. Declared inside the retry loop so
      // an overflowed attempt is discarded wholesale: only the successful
      // scan is committed to telemetry below, which keeps the conservation
      // invariant (tested == masked + prefiltered + emitted + deduped)
      // exact even when the candidate set has to grow mid-round.
      std::atomic<std::uint64_t> cd_occupied{0}, cd_tested{0}, cd_masked{0},
          cd_prefiltered{0}, cd_emitted{0}, cd_duplicates{0};
      execute(config, steps * slots, [&](std::size_t idx) {
        const std::size_t local = idx / slots;
        const std::size_t slot = idx % slots;
        const GridHashSet& grid = grids[local];
        const std::uint64_t key = grid.slot_key(slot);
        if (key == kEmptySlotKey) return;

        const std::uint32_t step = static_cast<std::uint32_t>(step0 + local);
        const double prefilter_base = config.threshold_km;
        const double half_sps = 0.5 * result.sample_period;
        const CellCoord coord = indexer.unpack(key);
        const std::uint32_t head = grid.slot_head(slot);
        std::uint64_t tested = 0, masked = 0, prefiltered = 0, emitted = 0,
                      duplicates = 0;

        for (const CellCoord& off : offsets) {
          const bool self = (off.x == 0 && off.y == 0 && off.z == 0);
          std::uint32_t other_head;
          if (self) {
            other_head = head;
          } else {
            const CellCoord nc{coord.x + off.x, coord.y + off.y, coord.z + off.z};
            other_head = grid.find(indexer.pack(nc));
            if (other_head == kNoEntry) continue;
          }
          for (std::uint32_t ea = head; ea != kNoEntry; ea = grid.entry(ea).next) {
            const GridEntry& a = grid.entry(ea);
            const bool a_dirty = dirty == nullptr || dirty[a.satellite] != 0;
            for (std::uint32_t eb = self ? a.next : other_head; eb != kNoEntry;
                 eb = grid.entry(eb).next) {
              const GridEntry& b = grid.entry(eb);
              if (a.satellite == b.satellite) continue;
              ++tested;
              // Incremental hook: a pair with no dirty member carries its
              // baseline conjunctions forward, so it never becomes a
              // candidate here (see GridPipelineOptions::dirty_mask).
              if (!a_dirty && dirty[b.satellite] == 0) {
                ++masked;
                continue;
              }
              if (options.distance_prefilter) {
                // A pair farther apart than d + (v_max_a + v_max_b) * s/2
                // cannot reach the threshold closer than half a sample from
                // this step; the step nearest its minimum keeps it.
                const double cutoff = prefilter_base +
                    half_sps * (vmax[a.satellite] + vmax[b.satellite]);
                if ((a.position - b.position).norm2() > cutoff * cutoff) {
                  ++prefiltered;
                  continue;
                }
              }
              switch (candidates.insert(a.satellite, b.satellite, step)) {
                case CandidateSet::Insert::kInserted:
                  ++emitted;
                  break;
                case CandidateSet::Insert::kDuplicate:
                  ++duplicates;
                  break;
                case CandidateSet::Insert::kFull:
                  overflow.store(true, std::memory_order_relaxed);
                  break;
              }
            }
          }
        }
        if (obs::enabled()) {
          cd_occupied.fetch_add(1, std::memory_order_relaxed);
          cd_tested.fetch_add(tested, std::memory_order_relaxed);
          cd_masked.fetch_add(masked, std::memory_order_relaxed);
          cd_prefiltered.fetch_add(prefiltered, std::memory_order_relaxed);
          cd_emitted.fetch_add(emitted, std::memory_order_relaxed);
          cd_duplicates.fetch_add(duplicates, std::memory_order_relaxed);
        }
      });
      if (!overflow.load()) {
        if (obs::enabled()) {
          obs::count(obs::Counter::kCellsScanned, steps * slots);
          obs::count(obs::Counter::kCellsOccupied, cd_occupied.load());
          obs::count(obs::Counter::kPairsTested, cd_tested.load());
          obs::count(obs::Counter::kPairsMaskedClean, cd_masked.load());
          obs::count(obs::Counter::kPairsPrefiltered, cd_prefiltered.load());
          // A pair first inserted during an overflowed attempt survives the
          // grow (CandidateSet::grow rehashes in place), so the successful
          // re-scan classifies it as a duplicate. Report distinct inserts
          // from the set's own size delta and shift the remainder into the
          // dedup bucket: the per-attempt identity tested == masked +
          // prefiltered + emitted' + duplicates' is preserved exactly.
          const std::uint64_t distinct = candidates.size() - candidates_before;
          const std::uint64_t classified = cd_duplicates.load() + cd_emitted.load();
          obs::count(obs::Counter::kCandidatesEmitted, distinct);
          // classified < distinct only if telemetry was flipped on mid-scan;
          // saturate instead of wrapping in that degenerate case.
          obs::count(obs::Counter::kCandidatesDeduplicated,
                     classified > distinct ? classified - distinct : 0);
        }
        break;
      }
      candidates.grow();
      ++result.candidate_set_growths;
      obs::count(obs::Counter::kCandidateSetGrowths);
      if (device != nullptr) {
        dev_cands.reset();  // release before re-accounting the doubled map
        dev_cands = device->alloc<std::byte>(candidates.memory_bytes());
      }
    }
    const double cd_seconds = cd_watch.seconds();
    result.detection_seconds += cd_seconds;
    obs::add_seconds(obs::Counter::kTimeDetectionNs, cd_seconds);

    // Streaming mode: hand this round's candidates over and recycle the
    // set. A (pair, step) key can only be produced by the round owning
    // that step, so per-round draining changes nothing semantically.
    if (sink != nullptr) {
      std::vector<Candidate> drained = candidates.drain();
      result.total_candidates += drained.size();
      candidates.clear();
      (*sink)(round, std::move(drained), result);
    }
  }

  result.candidate_memory_bytes = candidates.memory_bytes();
  if (sink == nullptr) {
    result.candidates = candidates.drain();
    result.total_candidates = result.candidates.size();
  }
  return result;
}

}  // namespace

GridPipelineResult run_grid_pipeline(const Propagator& propagator,
                                     const ScreeningConfig& config,
                                     const GridPipelineOptions& options) {
  return run_pipeline_impl(propagator, config, options, nullptr);
}

GridPipelineResult run_grid_pipeline_streaming(const Propagator& propagator,
                                               const ScreeningConfig& config,
                                               const GridPipelineOptions& options,
                                               const GridRoundSink& sink) {
  return run_pipeline_impl(propagator, config, options, &sink);
}

}  // namespace scod
