#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"
#include "model/conjunction_model.hpp"
#include "model/sizing.hpp"
#include "propagation/propagator.hpp"
#include "spatial/conjunction_set.hpp"

namespace scod {

class ScreeningContext;

/// Options of the shared grid front-end (steps 1-2 of Section III: memory
/// allocation, parallel propagation + insertion, parallel candidate
/// detection).
struct GridPipelineOptions {
  /// Sampling period s_ps [s]; the cell size follows from Eq. (1).
  double seconds_per_sample = 4.0;
  /// Sizing model for the conjunction hash map (Eq. 3 for grid, Eq. 4 for
  /// hybrid); the set grows and the affected round retries if it proves
  /// too small for the actual population.
  ConjunctionCountModel count_model = ConjunctionCountModel::paper_grid();
  /// Candidate pairs farther apart than threshold + (v_max_a + v_max_b) *
  /// s_ps / 2 at the sample cannot dip below the threshold near it; when
  /// true they are dropped during detection instead of being refined.
  /// Purely an optimization — it never changes the reported conjunctions.
  bool distance_prefilter = true;
  /// Scan only the 13 forward neighbours instead of all 26 (ablation; the
  /// paper scans the full neighbourhood and deduplicates).
  bool half_stencil = false;
  /// Overrides the Eq. (1) cell size [km] when positive. ONLY for the
  /// worst-case ablation (bench_eq1_cellsize): cells smaller than Eq. (1)
  /// void the no-skip guarantee of Fig. 4.
  double cell_size_override = 0.0;
  /// Incremental re-screening hook (src/service): when non-empty it must
  /// have one entry per satellite, and only candidate pairs with at least
  /// one marked ("dirty") member are emitted by the detection phase. The
  /// full population is still inserted into the grid, so dirty-vs-clean
  /// candidates are found exactly as in a full screen; clean-vs-clean
  /// pairs are skipped because their conjunctions are unchanged from the
  /// cached baseline report. Empty (the default) screens every pair.
  std::span<const std::uint8_t> dirty_mask = {};
  /// Run the insertion phase through the batched SoA propagation kernel
  /// (TwoBodyPropagator::positions_at) instead of one virtual position()
  /// call per (sample, satellite) tuple. Applies on the CPU backend when
  /// the propagator is a TwoBodyPropagator; the devicesim backend keeps the
  /// paper's one-thread-per-tuple kernel. Positions are bit-identical
  /// either way — disable only to benchmark the scalar path
  /// (bench_micro_batch).
  bool batch_propagation = true;
  /// Long-lived screening context to borrow step-1 scratch from (grids,
  /// candidate set, vmax table). Checked-out buffers are reset to exactly
  /// the state a fresh allocation would have, so results are bit-identical
  /// either way; warm repeat screens just skip the allocation cost. With
  /// nullptr (the default) the pipeline allocates per call as before.
  ScreeningContext* context = nullptr;
};

/// Everything the grid front-end produced for the refinement/filter stages.
struct GridPipelineResult {
  std::vector<Candidate> candidates;  ///< distinct (pair, step) candidates
                                      ///< (empty in streaming mode)
  std::size_t total_candidates = 0;   ///< count across all rounds
  double cell_size = 0.0;             ///< g_c [km]
  double sample_period = 0.0;         ///< s_ps actually used (auto-adjusted)
  SizingPlan plan;
  std::size_t candidate_set_growths = 0;
  std::uint64_t grid_memory_bytes = 0;
  std::uint64_t candidate_memory_bytes = 0;
  double allocation_seconds = 0.0;
  double insertion_seconds = 0.0;
  double detection_seconds = 0.0;

  /// Wall-clock time of the sample step with global index `step`.
  double sample_time(std::size_t step, double t_begin, double t_end) const {
    const double t = t_begin + static_cast<double>(step) * sample_period;
    return t < t_end ? t : t_end;
  }
};

/// Runs the grid front-end over the whole span: plans the sample
/// parallelism from the memory budget (device memory when config.device is
/// set), then for each round propagates all satellites into the per-step
/// grids and scans every occupied cell plus its neighbourhood for
/// candidate pairs, deduplicated in the lock-free candidate set.
///
/// Throws std::runtime_error when even a single grid does not fit into the
/// memory budget.
GridPipelineResult run_grid_pipeline(const Propagator& propagator,
                                     const ScreeningConfig& config,
                                     const GridPipelineOptions& options);

/// Per-round candidate sink for streaming consumption. Receives the round
/// index, the candidates detected in that round (moved), and the pipeline
/// result as populated so far (cell_size, sample_period and plan are final
/// before the first round). A (pair, step) key can only occur in the round
/// owning that step, so draining per round yields exactly the same
/// candidate multiset as accumulating to the end.
using GridRoundSink = std::function<void(
    std::size_t round, std::vector<Candidate>&& candidates,
    const GridPipelineResult& pipeline)>;

/// Streaming variant of run_grid_pipeline: the candidate set is drained
/// into `sink` and cleared after every round, so memory stays bounded by
/// one round's activity regardless of the span length. The returned
/// result's `candidates` vector is empty; counters cover the whole run.
GridPipelineResult run_grid_pipeline_streaming(const Propagator& propagator,
                                               const ScreeningConfig& config,
                                               const GridPipelineOptions& options,
                                               const GridRoundSink& sink);

}  // namespace scod
