#include "core/context.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"

namespace scod {

namespace {

/// A buffer is "grossly oversized" when its held capacity could serve more
/// than twice the request and the surplus is big enough to matter; small
/// buffers are never worth reallocating.
constexpr std::size_t kShrinkSlackElements = 4096;

template <typename T>
bool oversized(const std::vector<T>& buffer, std::size_t n) {
  return buffer.capacity() > 2 * n && buffer.capacity() - n > kShrinkSlackElements;
}

}  // namespace

ScratchArena::GridCheckout ScratchArena::grids(std::size_t count,
                                               std::size_t entries) {
  if (grid_entries_ != entries && !grids_.empty()) {
    // A GridHashSet's slot table is a pure function of its entry capacity;
    // a different population size means different geometry, so the cache
    // is useless — rebuilding doubles as shrink-on-oversize.
    grids_.clear();
    grids_.shrink_to_fit();
    ++stats_.vector_shrinks;
  }
  grid_entries_ = entries;
  if (grids_.size() > count) {
    grids_.erase(grids_.begin() + static_cast<std::ptrdiff_t>(count),
                 grids_.end());
    ++stats_.vector_shrinks;
  }
  GridCheckout checkout;
  checkout.reused = grids_.size();
  stats_.grid_reuses += checkout.reused;
  grids_.reserve(count);
  while (grids_.size() < count) {
    grids_.emplace_back(entries);
    ++stats_.grid_rebuilds;
  }
  checkout.grids = &grids_;
  return checkout;
}

CandidateSet& ScratchArena::candidates(std::size_t capacity) {
  if (candidates_.has_value() && candidates_->capacity() == capacity) {
    candidates_->clear();
    ++stats_.candidate_reuses;
  } else {
    // Mismatch covers both directions: a different sizing plan, and a set
    // doubled by a previous screen's grow(). Rebuilding at plan size keeps
    // warm growth counts identical to a cold screen's.
    candidates_.emplace(capacity);
    ++stats_.candidate_rebuilds;
  }
  return *candidates_;
}

template <typename T>
std::vector<T>& ScratchArena::checkout(std::vector<T>& buffer, std::size_t n) {
  if (oversized(buffer, n)) {
    std::vector<T>().swap(buffer);
    ++stats_.vector_shrinks;
  }
  buffer.resize(n);
  return buffer;
}

std::vector<double>& ScratchArena::vmax(std::size_t n) {
  return checkout(vmax_, n);
}

std::vector<Conjunction>& ScratchArena::conjunction_slots(std::size_t n) {
  return checkout(conjunction_slots_, n);
}

std::vector<std::uint8_t>& ScratchArena::valid_flags(std::size_t n) {
  if (oversized(valid_flags_, n)) {
    std::vector<std::uint8_t>().swap(valid_flags_);
    ++stats_.vector_shrinks;
  }
  valid_flags_.assign(n, 0);
  return valid_flags_;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>& ScratchArena::pair_buffer(
    std::size_t expected) {
  if (oversized(pairs_, expected)) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>>().swap(pairs_);
    ++stats_.vector_shrinks;
  }
  pairs_.clear();
  pairs_.reserve(expected);
  return pairs_;
}

std::size_t ScratchArena::memory_bytes() const {
  std::size_t bytes = 0;
  for (const GridHashSet& g : grids_) bytes += g.memory_bytes();
  if (candidates_.has_value()) bytes += candidates_->memory_bytes();
  bytes += vmax_.capacity() * sizeof(double);
  bytes += conjunction_slots_.capacity() * sizeof(Conjunction);
  bytes += valid_flags_.capacity();
  bytes += pairs_.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
  return bytes;
}

void ScratchArena::release() {
  grids_.clear();
  grids_.shrink_to_fit();
  grid_entries_ = 0;
  candidates_.reset();
  std::vector<double>().swap(vmax_);
  std::vector<Conjunction>().swap(conjunction_slots_);
  std::vector<std::uint8_t>().swap(valid_flags_);
  std::vector<std::pair<std::uint32_t, std::uint32_t>>().swap(pairs_);
}

ScreeningContext::Use::Use(ScreeningContext& context) : context_(context) {
  const std::thread::id me = std::this_thread::get_id();
  int expected = 0;
  if (context_.depth_.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel)) {
    context_.owner_.store(me, std::memory_order_release);
    if (context_.options_.telemetry && obs::compiled()) {
      context_.telemetry_was_enabled_ = obs::enabled();
      obs::set_enabled(true);
    }
    return;
  }
  if (context_.owner_.load(std::memory_order_acquire) != me) {
    throw std::logic_error(
        "ScreeningContext: concurrent use from a second thread — one screen "
        "at a time per context; give unrelated screens their own context");
  }
  context_.depth_.fetch_add(1, std::memory_order_acq_rel);
}

ScreeningContext::Use::~Use() {
  if (context_.depth_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    context_.owner_.store(std::thread::id{}, std::memory_order_release);
    if (context_.options_.telemetry && obs::compiled()) {
      obs::set_enabled(context_.telemetry_was_enabled_);
    }
  }
}

}  // namespace scod
