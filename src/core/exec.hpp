#pragma once

#include <utility>

#include "core/config.hpp"

namespace scod::detail {

inline ThreadPool& pool_of(const ScreeningConfig& config) {
  return config.pool != nullptr ? *config.pool : global_thread_pool();
}

/// Dispatches a data-parallel index space to the configured backend: the
/// CPU thread pool, or a devicesim kernel launch (one logical thread per
/// index — the paper's one-thread-per-tuple GPU decomposition).
template <typename Fn>
void execute(const ScreeningConfig& config, std::size_t n, Fn&& fn) {
  if (config.device != nullptr) {
    config.device->launch(n, 256, std::forward<Fn>(fn));
  } else {
    pool_of(config).parallel_for(n, std::forward<Fn>(fn));
  }
}

}  // namespace scod::detail
