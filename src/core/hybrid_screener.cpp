#include "core/hybrid_screener.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "filters/apogee_perigee.hpp"
#include "obs/telemetry.hpp"
#include "filters/coplanarity.hpp"
#include "filters/orbit_path.hpp"
#include "filters/time_windows.hpp"
#include "pca/pair_evaluator.hpp"
#include "pca/refine.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/stopwatch.hpp"

namespace scod {

namespace {

enum class PairClass : std::uint8_t {
  kRejectedApogeePerigee,
  kRejectedPath,
  kRejectedWindows,
  kCoplanar,
  kWindows,
};

struct PairVerdict {
  PairClass cls = PairClass::kRejectedApogeePerigee;
  std::vector<Interval> windows;
};

/// One Brent task produced by the filter stage.
struct RefineTask {
  std::uint32_t sat_a = 0;
  std::uint32_t sat_b = 0;
  double t_lo = 0.0;
  double t_hi = 0.0;
  /// Grid-style tasks center on a sample time with a cell-crossing radius
  /// (coplanar pairs); window tasks refine a filter-built interval.
  bool grid_style = false;
  double center = 0.0;
};

}  // namespace

GridPipelineOptions HybridScreener::default_options() {
  GridPipelineOptions options;
  options.seconds_per_sample = kDefaultSecondsPerSample;
  options.count_model = ConjunctionCountModel::paper_hybrid();
  return options;
}

HybridScreener::HybridScreener(GridPipelineOptions options,
                               ScreeningContext* context)
    : options_(options),
      context_(context != nullptr ? context : options.context) {
  options_.context = nullptr;  // resolved per call through context_
}

ScreeningReport HybridScreener::screen(std::span<const Satellite> satellites,
                                       const ScreeningConfig& config) const {
  Stopwatch alloc_watch;
  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(satellites, solver);
  const double setup = alloc_watch.seconds();

  ScreeningReport report = screen(propagator, config);
  report.timings.allocation += setup;
  return report;
}

ScreeningReport HybridScreener::screen(const Propagator& propagator,
                                       const ScreeningConfig& caller_config) const {
  detail::ContextLease lease(context_);
  ScreeningContext::Use use(*lease);
  const ScreeningConfig config = lease->apply(caller_config);

  GridPipelineOptions options = options_;
  if (config.seconds_per_sample > 0.0) {
    options.seconds_per_sample = config.seconds_per_sample;
  }
  options.context = lease.get();

  GridPipelineResult pipeline = run_grid_pipeline(propagator, config, options);

  ScreeningReport report;
  report.timings.allocation = pipeline.allocation_seconds;
  report.timings.insertion = pipeline.insertion_seconds;
  report.timings.detection = pipeline.detection_seconds;

  // ---- Step 3: orbital filters on the distinct pairs --------------------
  Stopwatch filter_watch;

  std::vector<Candidate> candidates = std::move(pipeline.candidates);
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.sat_a != y.sat_a) return x.sat_a < y.sat_a;
              if (x.sat_b != y.sat_b) return x.sat_b < y.sat_b;
              return x.step < y.step;
            });

  // Index ranges of the distinct pairs in the sorted candidate list.
  std::vector<std::pair<std::size_t, std::size_t>> pair_ranges;
  for (std::size_t i = 0; i < candidates.size();) {
    std::size_t j = i + 1;
    while (j < candidates.size() && candidates[j].sat_a == candidates[i].sat_a &&
           candidates[j].sat_b == candidates[i].sat_b) {
      ++j;
    }
    pair_ranges.emplace_back(i, j);
    i = j;
  }

  std::vector<PairVerdict> verdicts(pair_ranges.size());
  std::atomic<std::size_t> rejected_ap{0}, rejected_path{0}, rejected_windows{0},
      coplanar_count{0};

  detail::pool_of(config).parallel_for(pair_ranges.size(), [&](std::size_t pi) {
    const Candidate& c = candidates[pair_ranges[pi].first];
    const KeplerElements& ea = propagator.elements(c.sat_a);
    const KeplerElements& eb = propagator.elements(c.sat_b);
    PairVerdict& v = verdicts[pi];

    if (!apogee_perigee_overlap(ea, eb, config.threshold_km + config.filter_pad_km)) {
      v.cls = PairClass::kRejectedApogeePerigee;
      rejected_ap.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    if (are_coplanar(ea, eb, config.coplanar_tolerance)) {
      coplanar_count.fetch_add(1, std::memory_order_relaxed);
      if (!orbit_path_overlap(ea, eb, config.threshold_km, config.filter_pad_km)) {
        v.cls = PairClass::kRejectedPath;
        rejected_path.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      v.cls = PairClass::kCoplanar;
      return;
    }

    // Non-coplanar: the node-miss check is the (analytic) orbit path
    // filter — the orbits can only approach near the relative nodes.
    const auto crossings = node_crossings(ea, eb);
    const double reach = config.threshold_km + config.filter_pad_km;
    if (crossings[0].miss_distance > reach && crossings[1].miss_distance > reach) {
      v.cls = PairClass::kRejectedPath;
      rejected_path.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    v.windows = conjunction_time_windows(ea, eb, config.t_begin, config.t_end,
                                         config.threshold_km, config.time_windows);
    if (v.windows.empty()) {
      v.cls = PairClass::kRejectedWindows;
      rejected_windows.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    v.cls = PairClass::kWindows;
  });

  // Turn surviving pairs into refinement tasks. Window tasks are emitted
  // once per (pair, window) that is reachable from a candidate sample;
  // coplanar pairs get one grid-style task per candidate step.
  std::vector<RefineTask> tasks;
  std::size_t coplanar_survivors = 0, window_survivors = 0;
  for (std::size_t pi = 0; pi < pair_ranges.size(); ++pi) {
    const PairVerdict& v = verdicts[pi];
    if (v.cls != PairClass::kCoplanar && v.cls != PairClass::kWindows) continue;
    if (v.cls == PairClass::kCoplanar) ++coplanar_survivors;
    else ++window_survivors;
    const auto [begin, end] = pair_ranges[pi];
    const std::uint32_t sat_a = candidates[begin].sat_a;
    const std::uint32_t sat_b = candidates[begin].sat_b;

    if (v.cls == PairClass::kCoplanar) {
      for (std::size_t k = begin; k < end; ++k) {
        const double t_s =
            pipeline.sample_time(candidates[k].step, config.t_begin, config.t_end);
        tasks.push_back({sat_a, sat_b, 0.0, 0.0, /*grid_style=*/true, t_s});
      }
      continue;
    }

    // A candidate at sample t_s flags a minimum within +- the cell-crossing
    // radius; mark every window overlapping that reach.
    std::vector<std::uint8_t> used(v.windows.size(), 0);
    for (std::size_t k = begin; k < end; ++k) {
      const double t_s =
          pipeline.sample_time(candidates[k].step, config.t_begin, config.t_end);
      // Cell-crossing reach at a very conservative 1 km/s lower speed
      // bound; matching only gates which windows get refined, so erring
      // wide costs a few extra Brent calls, never a missed encounter.
      constexpr double kMinCrossSpeed = 1.0;  // km/s
      const double reach_time = 2.0 * pipeline.cell_size / kMinCrossSpeed;
      for (std::size_t w = 0; w < v.windows.size(); ++w) {
        if (v.windows[w].lo <= t_s + reach_time && v.windows[w].hi >= t_s - reach_time) {
          used[w] = 1;
        }
      }
    }
    for (std::size_t w = 0; w < v.windows.size(); ++w) {
      if (!used[w]) continue;
      // Extend the filter window slightly so a minimum grazing its edge is
      // found inside the search interval rather than discarded.
      const double ext = 0.25 * v.windows[w].length() + 5.0;
      tasks.push_back({sat_a, sat_b, v.windows[w].lo - ext, v.windows[w].hi + ext,
                       /*grid_style=*/false, 0.0});
    }
  }
  report.timings.filtering = filter_watch.seconds();

  // ---- Step 4: Brent refinement -----------------------------------------
  Stopwatch refine_watch;
  std::vector<Conjunction>& slots = lease->arena().conjunction_slots(tasks.size());
  std::vector<std::uint8_t>& valid = lease->arena().valid_flags(tasks.size());

  // With the concrete TwoBody/Contour pair, each task snapshots both cache
  // entries once (PairStateEvaluator) so the Brent objective is a direct
  // call instead of two virtual dispatches per evaluation.
  const RefineFastPath fast = RefineFastPath::probe(propagator);
  detail::execute(config, tasks.size(), [&](std::size_t i) {
    const RefineTask& task = tasks[i];
    std::optional<Encounter> encounter;
    if (fast.available()) {
      const PairStateEvaluator eval = fast.pair(task.sat_a, task.sat_b);
      const auto distance = [&eval](double t) { return eval.distance(t); };
      if (task.grid_style) {
        const double radius = grid_search_radius(
            pipeline.cell_size,
            std::min(eval.speed_a(task.center), eval.speed_b(task.center)));
        encounter = refine_candidate_fn(distance, task.center, radius, config.t_begin,
                                        config.t_end, config.refine);
      } else {
        encounter = refine_on_interval_fn(distance, task.t_lo, task.t_hi, config.refine);
      }
    } else if (task.grid_style) {
      const double speed_a = propagator.state(task.sat_a, task.center).velocity.norm();
      const double speed_b = propagator.state(task.sat_b, task.center).velocity.norm();
      const double radius =
          grid_search_radius(pipeline.cell_size, std::min(speed_a, speed_b));
      encounter = refine_candidate(propagator, task.sat_a, task.sat_b, task.center,
                                   radius, config.t_begin, config.t_end, config.refine);
    } else {
      encounter = refine_on_interval(propagator, task.sat_a, task.sat_b, task.t_lo,
                                     task.t_hi, config.refine);
    }
    if (encounter.has_value() && encounter->pca <= config.threshold_km &&
        encounter->tca >= config.t_begin && encounter->tca <= config.t_end) {
      slots[i] = {task.sat_a, task.sat_b, encounter->tca, encounter->pca};
      valid[i] = 1;
    }
  });

  std::vector<Conjunction> raw;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (valid[i]) raw.push_back(slots[i]);
  }
  obs::count(obs::Counter::kConjunctionsRaw, raw.size());
  report.conjunctions =
      merge_conjunctions(std::move(raw), config.effective_merge_tolerance());
  report.timings.refinement = refine_watch.seconds();

  if (obs::enabled()) {
    // Filter-chain funnel: every distinct pair lands in exactly one of
    // {ap-reject, path-reject, window-reject, survivor}, so the telemetry
    // buckets partition filter_pairs_in. Path checks run on all ap-pass
    // pairs; only non-coplanar node-pass pairs reach the window filter.
    obs::count(obs::Counter::kFilterPairsIn, pair_ranges.size());
    obs::count(obs::Counter::kFilterApogeePerigeeRejects, rejected_ap.load());
    obs::count(obs::Counter::kFilterPathChecks,
               pair_ranges.size() - rejected_ap.load());
    obs::count(obs::Counter::kFilterPathRejects, rejected_path.load());
    obs::count(obs::Counter::kFilterCoplanarPairs, coplanar_count.load());
    obs::count(obs::Counter::kFilterWindowChecks,
               rejected_windows.load() + window_survivors);
    obs::count(obs::Counter::kFilterWindowRejects, rejected_windows.load());
    obs::count(obs::Counter::kFilterSurvivors,
               coplanar_survivors + window_survivors);
    obs::add_seconds(obs::Counter::kTimeFilteringNs, report.timings.filtering);
    obs::add_seconds(obs::Counter::kTimeRefinementNs, report.timings.refinement);
    obs::count(obs::Counter::kConjunctionsReported, report.conjunctions.size());
  }

  report.stats.satellites = propagator.size();
  report.stats.total_samples = pipeline.plan.total_samples;
  report.stats.parallel_samples = pipeline.plan.parallel_samples;
  report.stats.rounds = pipeline.plan.rounds;
  report.stats.seconds_per_sample = pipeline.sample_period;
  report.stats.cell_size_km = pipeline.cell_size;
  report.stats.candidates = candidates.size();
  report.stats.pairs_examined = pair_ranges.size();
  report.stats.filtered_apogee_perigee = rejected_ap.load();
  report.stats.filtered_path = rejected_path.load();
  report.stats.filtered_windows = rejected_windows.load();
  report.stats.coplanar_pairs = coplanar_count.load();
  report.stats.refinements = tasks.size();
  report.stats.candidate_set_growths = pipeline.candidate_set_growths;
  report.stats.grid_memory_bytes = pipeline.grid_memory_bytes;
  report.stats.candidate_memory_bytes = pipeline.candidate_memory_bytes;
  return report;
}

}  // namespace scod
