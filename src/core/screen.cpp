#include "core/screen.hpp"

namespace scod {

ScreeningReport screen(std::span<const Satellite> satellites,
                       const ScreeningConfig& config, Variant variant) {
  return make_screener(variant)->screen(satellites, config);
}

}  // namespace scod
