#include "core/screen.hpp"

#include <stdexcept>

namespace scod {

std::string variant_name(Variant variant) {
  switch (variant) {
    case Variant::kGrid: return "grid";
    case Variant::kHybrid: return "hybrid";
    case Variant::kLegacy: return "legacy";
    case Variant::kSieve: return "sieve";
  }
  return "unknown";
}

ScreeningReport screen(std::span<const Satellite> satellites,
                       const ScreeningConfig& config, Variant variant) {
  switch (variant) {
    case Variant::kGrid: return GridScreener().screen(satellites, config);
    case Variant::kHybrid: return HybridScreener().screen(satellites, config);
    case Variant::kLegacy: {
      if (config.device != nullptr) {
        throw std::invalid_argument("screen: the legacy variant has no device backend");
      }
      return LegacyScreener().screen(satellites, config);
    }
    case Variant::kSieve: {
      if (config.device != nullptr) {
        throw std::invalid_argument("screen: the sieve variant has no device backend");
      }
      return SieveScreener().screen(satellites, config);
    }
  }
  throw std::invalid_argument("screen: unknown variant");
}

}  // namespace scod
