#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace scod {

/// One detected conjunction: a pair of satellites whose distance reaches a
/// local minimum (the PCA) below the screening threshold at time TCA. A
/// pair can produce several conjunctions over the span (Fig. 2).
struct Conjunction {
  std::uint32_t sat_a = 0;  ///< smaller satellite index
  std::uint32_t sat_b = 0;  ///< larger satellite index
  double tca = 0.0;         ///< time of closest approach [s past epoch]
  double pca = 0.0;         ///< distance at TCA [km]
};

/// Wall-clock seconds per pipeline phase — the quantities behind the
/// paper's Section V-C1 relative-time-consumption breakdown.
struct PhaseTimings {
  double allocation = 0.0;  ///< step 1: grids, hash maps, caches
  double insertion = 0.0;   ///< step 2 (INS): propagation + grid insertion
  double detection = 0.0;   ///< step 2 (CD): per-cell candidate generation
  double filtering = 0.0;   ///< step 3: orbital filters (hybrid/legacy only)
  double refinement = 0.0;  ///< step 4: Brent TCA/PCA searches

  double total() const {
    return allocation + insertion + detection + filtering + refinement;
  }
};

/// Counters describing what the run did; every variant fills the subset
/// that applies to it.
struct ScreeningStats {
  std::size_t satellites = 0;
  std::size_t total_samples = 0;     ///< o
  std::size_t parallel_samples = 0;  ///< p
  std::size_t rounds = 0;            ///< r_c
  double seconds_per_sample = 0.0;   ///< possibly auto-adjusted
  double cell_size_km = 0.0;         ///< g_c (grid variants)
  std::size_t candidates = 0;        ///< distinct (pair, step) candidates
  std::size_t pairs_examined = 0;    ///< pairs entering the filter chain
  std::size_t filtered_apogee_perigee = 0;
  std::size_t filtered_path = 0;     ///< orbit-path / node-miss exclusions
  std::size_t filtered_windows = 0;  ///< pairs with no overlapping windows
  std::size_t coplanar_pairs = 0;
  std::size_t refinements = 0;       ///< Brent searches executed
  std::size_t candidate_set_growths = 0;
  std::uint64_t grid_memory_bytes = 0;
  std::uint64_t candidate_memory_bytes = 0;
};

/// Result of one screening run.
struct ScreeningReport {
  std::vector<Conjunction> conjunctions;  ///< sorted by (sat_a, sat_b, tca)
  PhaseTimings timings;
  ScreeningStats stats;

  /// Distinct colliding pairs (the paper's accuracy metric distinguishes
  /// conjunction events from colliding pairs, Section V-D).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> colliding_pairs() const;
};

/// Sorts conjunctions into the canonical (sat_a, sat_b, tca) order.
void sort_conjunctions(std::vector<Conjunction>& conjunctions);

/// Sorts and deduplicates raw per-candidate conjunctions: events of the
/// same pair whose TCAs are within `time_tolerance` describe the same
/// physical minimum (found from adjacent sample steps) and are collapsed,
/// keeping the smallest PCA.
std::vector<Conjunction> merge_conjunctions(std::vector<Conjunction> conjunctions,
                                            double time_tolerance);

/// Set comparison helpers for the accuracy experiment (Section V-D).
struct PairSetDiff {
  std::size_t common = 0;
  std::size_t only_in_first = 0;
  std::size_t only_in_second = 0;
};

PairSetDiff compare_pair_sets(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& first,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& second);

/// Tolerances for event-level conjunction-set matching: two events of the
/// same pair whose TCAs fall within `tca_window` describe the same physical
/// minimum (the paper's V-D accuracy study matches events, not just pairs).
struct ConjunctionMatchOptions {
  double tca_window = 5.0;     ///< [s] TCA distance treated as "same event"
  double pca_tolerance = 0.05; ///< [km] matched events must agree to this
};

/// Event-level diff of two conjunction sets. Each input is canonicalized
/// (sorted, duplicates within the window merged) before matching; matching
/// is greedy in TCA order within each pair.
struct ConjunctionSetDiff {
  std::size_t matched = 0;  ///< events paired up within the tolerances
  std::vector<Conjunction> only_in_first;
  std::vector<Conjunction> only_in_second;
  /// Events matched in (pair, TCA) whose PCAs disagree beyond
  /// pca_tolerance: (first's event, second's event).
  std::vector<std::pair<Conjunction, Conjunction>> pca_mismatches;

  bool identical() const {
    return only_in_first.empty() && only_in_second.empty() &&
           pca_mismatches.empty();
  }
};

ConjunctionSetDiff compare_conjunction_sets(std::vector<Conjunction> first,
                                            std::vector<Conjunction> second,
                                            const ConjunctionMatchOptions& options = {});

}  // namespace scod
