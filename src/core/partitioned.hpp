#pragma once

#include <cstddef>
#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screen.hpp"
#include "orbit/elements.hpp"

namespace scod {

/// Population-partitioned screening — the distribution strategy of the
/// related work (Coppola et al. 2010 [24]: "dividing the object
/// population" across processors/machines). The satellites are split into
/// `partitions` blocks; every unordered block pair (i, j), i <= j, is
/// screened independently on the union of the two blocks, and only
/// conjunctions crossing the (i, j) combination are kept, so the merged
/// result equals a direct screening of the whole population (verified by
/// test). Each block-pair job is an independent unit of work that could
/// run on a different machine; here they run sequentially, which makes
/// this a correctness harness for the strategy, not a speedup.
///
/// Reported satellite identifiers are indices into `satellites`, exactly
/// as with screen(). Timings/stats are summed over the block-pair jobs.
ScreeningReport partitioned_screen(std::span<const Satellite> satellites,
                                   const ScreeningConfig& config, Variant variant,
                                   std::size_t partitions);

}  // namespace scod
