#pragma once

#include <cstddef>
#include <span>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/screener.hpp"
#include "orbit/elements.hpp"

namespace scod {

class ScreeningContext;

/// Population-partitioned screening — the distribution strategy of the
/// related work (Coppola et al. 2010 [24]: "dividing the object
/// population" across processors/machines). The satellites are split into
/// `partitions` blocks; every unordered block pair (i, j), i <= j, is
/// screened independently on the union of the two blocks, and only
/// conjunctions crossing the (i, j) combination are kept, so the merged
/// result equals a direct screening of the whole population (verified by
/// test). Each block-pair job is an independent unit of work; jobs fan
/// out across the thread pool (the context's pool when one is bound,
/// else the config's), with each job's inner screen running inline on a
/// single-thread pool so nested parallelism cannot deadlock. Jobs are
/// merged in deterministic (bi, bj) order regardless of completion order.
///
/// Reported satellite identifiers are indices into `satellites`, exactly
/// as with screen(). Timings/stats are summed over the block-pair jobs.
ScreeningReport partitioned_screen(std::span<const Satellite> satellites,
                                   const ScreeningConfig& config, Variant variant,
                                   std::size_t partitions,
                                   ScreeningContext* context = nullptr);

}  // namespace scod
