#include "propagation/tle_secular.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "orbit/state.hpp"
#include "util/constants.hpp"

namespace scod {

TleSecularPropagator::TleSecularPropagator(std::span<const TleRecord> records,
                                           const KeplerSolver& solver)
    : solver_(&solver) {
  records_.reserve(records.size());
  for (const TleRecord& rec : records) {
    if (!is_valid_orbit(rec.elements)) {
      throw std::invalid_argument("TleSecularPropagator: invalid orbit in record " +
                                  std::to_string(rec.catalog_number));
    }
    Entry e;
    e.epoch = rec.elements;
    e.n0_rev_day = rec.mean_motion_rev_day;
    e.ndot_half = rec.mean_motion_dot;
    e.j2 = j2_secular_rates(rec.elements);
    records_.push_back(e);
  }
}

KeplerElements TleSecularPropagator::elements_at(std::size_t index, double time) const {
  const Entry& rec = records_[index];
  const double t_days = time / 86400.0;

  // Instantaneous mean motion with the drag derivative; clamp at the point
  // the linear model stops being physical.
  double n_rev_day = rec.n0_rev_day + 2.0 * rec.ndot_half * t_days;
  n_rev_day = std::max(n_rev_day, 0.1 * rec.n0_rev_day);
  const double n_rad_s = n_rev_day * kTwoPi / 86400.0;

  KeplerElements el = rec.epoch;
  el.semi_major_axis = std::cbrt(kMuEarth / (n_rad_s * n_rad_s));
  // J2 secular rates were computed for the epoch elements; the slow drag
  // shrinkage changes them only at second order.
  el.raan = wrap_two_pi(el.raan + rec.j2.raan_rate * time);
  el.arg_perigee = wrap_two_pi(el.arg_perigee + rec.j2.arg_perigee_rate * time);

  // Mean anomaly: epoch value + integral of the (drifting) mean motion,
  // plus the J2 correction to the mean rate.
  const double revs = rec.n0_rev_day * t_days + rec.ndot_half * t_days * t_days;
  const double j2_extra = (rec.j2.mean_anomaly_rate - mean_motion(rec.epoch)) * time;
  el.mean_anomaly = wrap_two_pi(rec.epoch.mean_anomaly + revs * kTwoPi + j2_extra);
  return el;
}

Vec3 TleSecularPropagator::position(std::size_t index, double time) const {
  const KeplerElements el = elements_at(index, time);
  const double big_e = solver_->eccentric_anomaly(el.mean_anomaly, el.eccentricity);
  return position_at_true_anomaly(el, eccentric_to_true(big_e, el.eccentricity));
}

StateVector TleSecularPropagator::state(std::size_t index, double time) const {
  const KeplerElements el = elements_at(index, time);
  const double big_e = solver_->eccentric_anomaly(el.mean_anomaly, el.eccentricity);
  return state_at_true_anomaly(el, eccentric_to_true(big_e, el.eccentricity));
}

const KeplerElements& TleSecularPropagator::elements(std::size_t index) const {
  return records_[index].epoch;
}

}  // namespace scod
