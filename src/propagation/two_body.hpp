#pragma once

#include <array>
#include <span>
#include <vector>

#include "orbit/frames.hpp"
#include "propagation/fast_trig.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Per-satellite data precomputed once at construction — the paper's
/// "Kepler solver data" a_k (Section V-B) that the GPU adaptation stores in
/// global memory so each (satellite, time) thread is independent: mean
/// motion, eccentricity terms, and the perifocal->ECI rotation.
struct TwoBodyCache {
  double mean_anomaly0 = 0.0;   ///< M at epoch [rad]
  double mean_motion = 0.0;     ///< n [rad/s]
  double eccentricity = 0.0;
  double semi_latus = 0.0;      ///< p = a(1-e^2) [km]
  double semi_major = 0.0;      ///< a [km]
  double semi_minor = 0.0;      ///< b = a sqrt(1-e^2) [km]
  double vis_viva_factor = 0.0; ///< sqrt(mu/p) [km/s]
  Mat3 rotation;                ///< perifocal -> ECI
};

/// Structure-of-arrays mirror of the TwoBodyCache table: one contiguous
/// array per field (rotation as nine cell arrays), so the batched
/// propagation kernels stream satellite-major with stride-1 loads and the
/// compiler vectorizes across satellites. This is also the layout a real
/// device backend would upload wholesale.
struct TwoBodySoA {
  std::vector<double> mean_anomaly0;
  std::vector<double> mean_motion;
  std::vector<double> eccentricity;
  std::vector<double> semi_major;
  std::vector<double> semi_minor;
  /// rotation[3*r + c] holds cell (r, c) of every satellite's
  /// perifocal->ECI matrix.
  std::array<std::vector<double>, 9> rotation;

  std::size_t size() const { return mean_anomaly0.size(); }
};

namespace detail {

/// Perifocal position from the solved eccentric anomaly, rotated to ECI:
/// x_pf = a (cos E - e), y_pf = b sin E. Shared (and inlined) by the
/// scalar path, the batched kernel and the devirtualized pair evaluator so
/// all three produce bit-identical coordinates. `Solver` is either the
/// abstract KeplerSolver (one virtual call) or a concrete solver type
/// (direct call).
template <typename Solver>
inline Vec3 cache_position(const TwoBodyCache& c, const Solver& solver, double time) {
  const double m = c.mean_anomaly0 + c.mean_motion * time;
  const double big_e = solver.eccentric_anomaly(m, c.eccentricity);
  double se, ce;
  sincos_bounded(big_e, se, ce);
  const double x = c.semi_major * (ce - c.eccentricity);
  const double y = c.semi_minor * se;
  return c.rotation * Vec3{x, y, 0.0};
}

/// Position and velocity from the eccentric anomaly. With w = 1 - e cos E:
/// v_pf = sqrt(mu/p)/(a w) * (-b sin E, p cos E), the E-form of the
/// classic (-sin f, e + cos f) expression.
template <typename Solver>
inline StateVector cache_state(const TwoBodyCache& c, const Solver& solver, double time) {
  const double m = c.mean_anomaly0 + c.mean_motion * time;
  const double big_e = solver.eccentric_anomaly(m, c.eccentricity);
  double se, ce;
  sincos_bounded(big_e, se, ce);
  const double x = c.semi_major * (ce - c.eccentricity);
  const double y = c.semi_minor * se;
  const double w = 1.0 - c.eccentricity * ce;
  const double u = c.vis_viva_factor / (w * c.semi_major);
  const Vec3 vel_pf{-u * c.semi_minor * se, u * c.semi_latus * ce, 0.0};
  return {c.rotation * Vec3{x, y, 0.0}, c.rotation * vel_pf};
}

}  // namespace detail

/// Unperturbed Keplerian (two-body) propagation, the paper's propagation
/// model. Advances the mean anomaly linearly, solves Kepler's equation
/// with the configured solver, and rotates the perifocal state into ECI.
class TwoBodyPropagator final : public Propagator {
 public:
  /// The solver must outlive the propagator. Satellites with invalid
  /// elements (hyperbolic, sub-surface perigee) are rejected with
  /// std::invalid_argument — the screening pipeline requires every index
  /// to be propagatable at any time.
  TwoBodyPropagator(std::span<const Satellite> satellites, const KeplerSolver& solver);

  std::size_t size() const override { return satellites_.size(); }
  Vec3 position(std::size_t index, double time) const override;
  StateVector state(std::size_t index, double time) const override;
  const KeplerElements& elements(std::size_t index) const override;

  /// Batched positions: out[i - begin] = position(i, time) for every i in
  /// [begin, end), bit-identical to the per-call path. Runs blocked over
  /// the SoA mirror — one virtual solver dispatch per block instead of two
  /// per satellite — and is the insertion-phase kernel of the grid
  /// pipeline. Safe to call concurrently for disjoint output ranges.
  void positions_at(double time, std::size_t begin, std::size_t end, Vec3* out) const;

  /// True anomaly at `time`; exposed for the filter chain's anomaly-window
  /// computations.
  double true_anomaly(std::size_t index, double time) const;

  const TwoBodyCache& cache(std::size_t index) const { return cache_[index]; }
  const TwoBodySoA& soa() const { return soa_; }
  const KeplerSolver& solver() const { return *solver_; }

 private:
  std::vector<Satellite> satellites_;
  std::vector<TwoBodyCache> cache_;
  TwoBodySoA soa_;
  const KeplerSolver* solver_;
};

}  // namespace scod
