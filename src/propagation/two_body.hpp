#pragma once

#include <span>
#include <vector>

#include "orbit/frames.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Per-satellite data precomputed once at construction — the paper's
/// "Kepler solver data" a_k (Section V-B) that the GPU adaptation stores in
/// global memory so each (satellite, time) thread is independent: mean
/// motion, eccentricity terms, and the perifocal->ECI rotation.
struct TwoBodyCache {
  double mean_anomaly0 = 0.0;   ///< M at epoch [rad]
  double mean_motion = 0.0;     ///< n [rad/s]
  double eccentricity = 0.0;
  double semi_latus = 0.0;      ///< p = a(1-e^2) [km]
  double vis_viva_factor = 0.0; ///< sqrt(mu/p) [km/s]
  Mat3 rotation;                ///< perifocal -> ECI
};

/// Unperturbed Keplerian (two-body) propagation, the paper's propagation
/// model. Advances the mean anomaly linearly, solves Kepler's equation
/// with the configured solver, and rotates the perifocal state into ECI.
class TwoBodyPropagator final : public Propagator {
 public:
  /// The solver must outlive the propagator. Satellites with invalid
  /// elements (hyperbolic, sub-surface perigee) are rejected with
  /// std::invalid_argument — the screening pipeline requires every index
  /// to be propagatable at any time.
  TwoBodyPropagator(std::span<const Satellite> satellites, const KeplerSolver& solver);

  std::size_t size() const override { return satellites_.size(); }
  Vec3 position(std::size_t index, double time) const override;
  StateVector state(std::size_t index, double time) const override;
  const KeplerElements& elements(std::size_t index) const override;

  /// True anomaly at `time`; exposed for the filter chain's anomaly-window
  /// computations.
  double true_anomaly(std::size_t index, double time) const;

  const TwoBodyCache& cache(std::size_t index) const { return cache_[index]; }

 private:
  std::vector<Satellite> satellites_;
  std::vector<TwoBodyCache> cache_;
  const KeplerSolver* solver_;
};

}  // namespace scod
