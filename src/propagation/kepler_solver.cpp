#include "propagation/kepler_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "util/constants.hpp"

namespace scod {

void KeplerSolver::eccentric_anomalies(std::span<const double> mean_anomalies,
                                       std::span<const double> eccentricities,
                                       std::span<double> out) const {
  if (mean_anomalies.size() != eccentricities.size() ||
      mean_anomalies.size() != out.size()) {
    throw std::invalid_argument("KeplerSolver::eccentric_anomalies: span size mismatch");
  }
  for (std::size_t i = 0; i < mean_anomalies.size(); ++i) {
    out[i] = eccentric_anomaly(mean_anomalies[i], eccentricities[i]);
  }
}

double kepler_residual(double eccentric_anomaly, double eccentricity, double mean_anomaly) {
  const double m = eccentric_anomaly - eccentricity * std::sin(eccentric_anomaly);
  return std::abs(wrap_pi(m - mean_anomaly));
}

double NewtonKeplerSolver::eccentric_anomaly(double mean_anomaly, double eccentricity) const {
  const double m = wrap_two_pi(mean_anomaly);
  const double e = eccentricity;
  if (e == 0.0) return m;

  // Solve on [0, pi] and mirror: E(2*pi - M) = 2*pi - E(M).
  const bool mirrored = m > kPi;
  const double mm = mirrored ? kTwoPi - m : m;

  // Third-order starter (Danby): E0 = M + e sin M / (1 - sin(M+e) + sin M).
  double big_e = mm + e * std::sin(mm) / (1.0 - std::sin(mm + e) + std::sin(mm));
  if (!(big_e >= 0.0 && big_e <= kPi + e)) big_e = mm + 0.85 * e;  // fallback start

  // Bisection bracket maintained alongside Newton so a wild step cannot
  // escape: f is strictly increasing on [0, pi + e].
  double lo = 0.0, hi = kPi;
  for (int it = 0; it < max_iterations_; ++it) {
    const double f = big_e - e * std::sin(big_e) - mm;
    if (std::abs(f) < tolerance_) break;
    if (f > 0.0) {
      hi = big_e;
    } else {
      lo = big_e;
    }
    const double fp = 1.0 - e * std::cos(big_e);
    double next = big_e - f / fp;
    if (next <= lo || next >= hi) next = 0.5 * (lo + hi);
    big_e = next;
  }

  return wrap_two_pi(mirrored ? kTwoPi - big_e : big_e);
}

double BisectionKeplerSolver::eccentric_anomaly(double mean_anomaly, double eccentricity) const {
  const double m = wrap_two_pi(mean_anomaly);
  const double e = eccentricity;
  double lo = 0.0, hi = kTwoPi;
  for (int it = 0; it < iterations_; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double f = mid - e * std::sin(mid) - m;
    if (f < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return wrap_two_pi(0.5 * (lo + hi));
}

}  // namespace scod
