#pragma once

#include <span>
#include <vector>

#include "orbit/frames.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Secular rates of the angular elements under the J2 zonal harmonic.
struct J2Rates {
  double raan_rate = 0.0;        ///< dOmega/dt [rad/s] (nodal regression)
  double arg_perigee_rate = 0.0; ///< domega/dt [rad/s] (apsidal rotation)
  double mean_anomaly_rate = 0.0;///< dM/dt [rad/s] including the two-body n
};

/// First-order secular J2 drift rates for the given elements.
J2Rates j2_secular_rates(const KeplerElements& el);

/// Propagator with first-order secular J2 perturbations — one of the
/// paper's suggested extensions ("exchanging ... other propagators"). The
/// orbital plane precesses (RAAN regression) and the perigee rotates at
/// their mean secular rates; the in-plane motion stays Keplerian with a
/// J2-corrected mean motion. Shape elements (a, e, i) are held constant,
/// which is exact at first order for secular J2.
class J2SecularPropagator final : public Propagator {
 public:
  J2SecularPropagator(std::span<const Satellite> satellites, const KeplerSolver& solver);

  std::size_t size() const override { return satellites_.size(); }
  Vec3 position(std::size_t index, double time) const override;
  StateVector state(std::size_t index, double time) const override;
  const KeplerElements& elements(std::size_t index) const override;

  const J2Rates& rates(std::size_t index) const { return rates_[index]; }

 private:
  /// Elements drifted to `time`.
  KeplerElements elements_at(std::size_t index, double time) const;

  std::vector<Satellite> satellites_;
  std::vector<J2Rates> rates_;
  const KeplerSolver* solver_;
};

}  // namespace scod
