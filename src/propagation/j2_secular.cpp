#include "propagation/j2_secular.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "orbit/state.hpp"
#include "util/constants.hpp"

namespace scod {

J2Rates j2_secular_rates(const KeplerElements& el) {
  const double n = mean_motion(el);
  const double p = semi_latus_rectum(el);
  const double k = 1.5 * kJ2 * (kEarthRadius / p) * (kEarthRadius / p) * n;
  const double ci = std::cos(el.inclination);
  const double sqrt_1me2 =
      std::sqrt(1.0 - el.eccentricity * el.eccentricity);

  J2Rates rates;
  rates.raan_rate = -k * ci;
  rates.arg_perigee_rate = 0.5 * k * (5.0 * ci * ci - 1.0);
  rates.mean_anomaly_rate = n + 0.5 * k * sqrt_1me2 * (3.0 * ci * ci - 1.0);
  return rates;
}

J2SecularPropagator::J2SecularPropagator(std::span<const Satellite> satellites,
                                         const KeplerSolver& solver)
    : satellites_(satellites.begin(), satellites.end()), solver_(&solver) {
  rates_.reserve(satellites_.size());
  for (const Satellite& sat : satellites_) {
    if (!is_valid_orbit(sat.elements)) {
      throw std::invalid_argument("J2SecularPropagator: satellite " +
                                  std::to_string(sat.id) + " has invalid elements");
    }
    rates_.push_back(j2_secular_rates(sat.elements));
  }
}

KeplerElements J2SecularPropagator::elements_at(std::size_t index, double time) const {
  KeplerElements el = satellites_[index].elements;
  const J2Rates& r = rates_[index];
  el.raan = wrap_two_pi(el.raan + r.raan_rate * time);
  el.arg_perigee = wrap_two_pi(el.arg_perigee + r.arg_perigee_rate * time);
  el.mean_anomaly = wrap_two_pi(el.mean_anomaly + r.mean_anomaly_rate * time);
  return el;
}

Vec3 J2SecularPropagator::position(std::size_t index, double time) const {
  const KeplerElements el = elements_at(index, time);
  const double big_e = solver_->eccentric_anomaly(el.mean_anomaly, el.eccentricity);
  return position_at_true_anomaly(el, eccentric_to_true(big_e, el.eccentricity));
}

StateVector J2SecularPropagator::state(std::size_t index, double time) const {
  const KeplerElements el = elements_at(index, time);
  const double big_e = solver_->eccentric_anomaly(el.mean_anomaly, el.eccentricity);
  return state_at_true_anomaly(el, eccentric_to_true(big_e, el.eccentricity));
}

const KeplerElements& J2SecularPropagator::elements(std::size_t index) const {
  return satellites_[index].elements;
}

}  // namespace scod
