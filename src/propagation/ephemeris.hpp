#pragma once

#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Force model of the numerical integrator.
struct ForceModel {
  bool include_j2 = true;   ///< oblateness (dominant LEO perturbation)
  bool include_j3 = false;  ///< pear-shape term (adds long-period e/i drift)
};

/// Acceleration [km/s^2] of the selected gravity model at ECI position r.
Vec3 gravity_acceleration(const Vec3& position, const ForceModel& model);

/// Scalar potential whose gradient is gravity_acceleration() (sign
/// convention a = grad U, so the point-mass part is +mu/r). Exposed so the
/// tests can verify the closed-form accelerations against a finite-
/// difference gradient.
double gravity_potential(const Vec3& position, const ForceModel& model);

/// One classical fourth-order Runge-Kutta step of the two-body(+J2/J3)
/// equations of motion.
StateVector rk4_step(const StateVector& state, double dt, const ForceModel& model);

/// Precomputed ephemeris served through cubic Hermite interpolation — how
/// operational conjunction screening consumes orbits (the related work the
/// paper cites screens "spatiotemporally indexed ephemeris data"), and one
/// of the paper's proposed extensions (exchanging the analytic Kepler
/// propagator for other propagators).
///
/// States are stored on a regular knot grid over [t_begin, t_end] (plus a
/// small margin so the Brent search may probe slightly past the span);
/// position/velocity between knots interpolate the cubic Hermite through
/// the bracketing knots, whose error is O(step^4) — centimetres at a 30 s
/// knot step in LEO. Queries outside the covered interval clamp to the
/// nearest knot segment.
///
/// Thread-safe: all queries are const reads of the precomputed table.
class EphemerisPropagator final : public Propagator {
 public:
  /// Samples an existing propagator onto the knot grid (e.g. to amortize
  /// an expensive source across the millions of distance evaluations of a
  /// screening run).
  static EphemerisPropagator sample(const Propagator& source, double t_begin,
                                    double t_end, double knot_step = 30.0,
                                    ThreadPool* pool = nullptr);

  /// Numerically integrates the satellites from their epoch elements with
  /// RK4 at `integrator_step`, recording knots every `knot_step` (which
  /// must be an integer multiple of the integrator step; it is rounded to
  /// one otherwise).
  static EphemerisPropagator integrate(std::span<const Satellite> satellites,
                                       double t_begin, double t_end,
                                       const ForceModel& model = {},
                                       double integrator_step = 10.0,
                                       double knot_step = 30.0,
                                       ThreadPool* pool = nullptr);

  std::size_t size() const override { return elements_.size(); }
  Vec3 position(std::size_t index, double time) const override;
  StateVector state(std::size_t index, double time) const override;
  const KeplerElements& elements(std::size_t index) const override;

  double knot_step() const { return knot_step_; }
  std::size_t knot_count() const { return knots_per_satellite_; }
  /// Table footprint in bytes.
  std::size_t memory_bytes() const { return states_.size() * sizeof(StateVector); }

 private:
  EphemerisPropagator(std::vector<KeplerElements> elements, double t_begin,
                      double knot_step, std::size_t knots_per_satellite);

  /// Knot index and normalized sub-step position for a query time.
  void locate(double time, std::size_t* knot, double* alpha) const;

  std::vector<KeplerElements> elements_;
  std::vector<StateVector> states_;  ///< [satellite * knots + knot]
  double t_begin_ = 0.0;
  double knot_step_ = 0.0;
  std::size_t knots_per_satellite_ = 0;
};

}  // namespace scod
