#pragma once

#include <span>
#include <vector>

#include "population/tle.hpp"
#include "propagation/j2_secular.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Secular propagation consistent with the GP (TLE) data the catalog
/// supplies: the mean anomaly integrates the published mean-motion
/// derivative (the line-1 n-dot/2 field, i.e. atmospheric drag to first
/// order), the semi-major axis follows the instantaneous mean motion
/// (energy decay), and the orbital plane precesses at the J2 secular
/// rates. This is the standard "coarse GP propagation" used when a full
/// SGP4 theory is not required — and another instance of the paper's
/// future-work item of exchanging the propagator.
///
///   M(t)    = M0 + n0 t + (ndot/2) t^2          [revolutions, t in days]
///   n(t)    = n0 + ndot t
///   a(t)    = (mu / n(t)^2)^(1/3)
///   raan(t), argp(t): epoch value + J2 secular rate * t
///
/// Records with a non-physical decayed state (n(t) <= 0) are clamped to
/// their last valid epoch; the screening spans this library targets are
/// far shorter than any such decay.
class TleSecularPropagator final : public Propagator {
 public:
  TleSecularPropagator(std::span<const TleRecord> records, const KeplerSolver& solver);

  std::size_t size() const override { return records_.size(); }
  Vec3 position(std::size_t index, double time) const override;
  StateVector state(std::size_t index, double time) const override;
  const KeplerElements& elements(std::size_t index) const override;

  /// Elements drifted to `time` (exposed for tests and diagnostics).
  KeplerElements elements_at(std::size_t index, double time) const;

 private:
  struct Entry {
    KeplerElements epoch;
    double n0_rev_day = 0.0;     ///< mean motion at epoch [rev/day]
    double ndot_half = 0.0;      ///< the TLE field: n-dot/2 [rev/day^2]
    J2Rates j2;
  };

  std::vector<Entry> records_;
  const KeplerSolver* solver_;
};

}  // namespace scod
