#pragma once

#include <cmath>

namespace scod::detail {

/// Vectorization-friendly trigonometric kernels shared by the scalar and
/// batched propagation paths.
///
/// The batched SoA kernels (ContourKeplerSolver::eccentric_anomalies,
/// TwoBodyPropagator::positions_at) must produce bit-identical results to
/// the per-call scalar path — the screeners treat the two as interchangeable
/// and the equivalence tests assert agreement to 1e-12 km, which at orbital
/// radii is below one ulp of the eccentric anomaly. libm's sin/cos cannot be
/// used inside an auto-vectorized lane loop (the call blocks vectorization,
/// and libmvec's vector variants round differently from the scalar ones), so
/// both paths route through these helpers: pure branch-free polynomial
/// arithmetic, identical operation order scalar or SIMD. The translation
/// units using them compile with -ffp-contract=off so the compiler cannot
/// contract a*b+c into fma in one path but not the other.
///
/// Domains are what the contour quadrature needs — NOT general-purpose:
/// the quadrature arguments satisfy |zx| < 4.2, |zy| <= 0.52, and the
/// Newton-polish/position arguments are eccentric anomalies in
/// [0, 2*pi) + epsilon.

/// Simultaneous sin/cos for |x| <= 8 (one Cody-Waite reduction step by
/// pi/2; with |k| <= 5 the dropped third reduction term contributes
/// ~1e-20). Polynomials are the fdlibm __kernel_sin/__kernel_cos minimax
/// fits on [-pi/4, pi/4], accurate to ~1 ulp.
inline void sincos_bounded(double x, double& sin_out, double& cos_out) {
  constexpr double kTwoOverPi = 6.36619772367581382433e-01;
  constexpr double kPiO2Hi = 1.57079632673412561417e+00;  // pi/2 head (33 bits)
  constexpr double kPiO2Lo = 6.07710050650619224932e-11;  // pi/2 tail

  constexpr double kS1 = -1.66666666666666324348e-01;
  constexpr double kS2 = 8.33333333332248946124e-03;
  constexpr double kS3 = -1.98412698298579493134e-04;
  constexpr double kS4 = 2.75573137070700676789e-06;
  constexpr double kS5 = -2.50507602534068634195e-08;
  constexpr double kS6 = 1.58969099521155010221e-10;

  constexpr double kC1 = 4.16666666666666019037e-02;
  constexpr double kC2 = -1.38888888888741095749e-03;
  constexpr double kC3 = 2.48015872894767294178e-05;
  constexpr double kC4 = -2.75573143513906633035e-07;
  constexpr double kC5 = 2.08757232129817482790e-09;
  constexpr double kC6 = -1.13596475577881948265e-11;

  const double k = std::nearbyint(x * kTwoOverPi);
  const double r = (x - k * kPiO2Hi) - k * kPiO2Lo;
  const double z = r * r;

  const double s_poly =
      r + (z * r) * (kS1 + z * (kS2 + z * (kS3 + z * (kS4 + z * (kS5 + z * kS6)))));
  const double c_tail = z * (kC1 + z * (kC2 + z * (kC3 + z * (kC4 + z * (kC5 + z * kC6)))));
  const double hz = 0.5 * z;
  const double w = 1.0 - hz;
  const double c_poly = w + (((1.0 - w) - hz) + z * c_tail);

  // Quadrant fix-up:
  //   sin(r + q*pi/2) = { S, C, -S, -C }[q],  cos = { C, -S, -C, S }[q].
  // Written as arithmetic 0/1-mask blends, not ternaries: GCC refuses to
  // if-convert the two-way selects and the branch kills vectorization of
  // every loop this inlines into. Blending with exact 0.0/1.0 factors is
  // value-preserving (x*1 + y*0 == x up to the sign of zero), so the
  // scalar and SIMD paths still agree bit for bit.
  const int q = static_cast<int>(k) & 3;
  const double swap_mask = static_cast<double>(q & 1);       // 1.0 when q is odd
  const double keep_mask = 1.0 - swap_mask;
  const double s_sign = 1.0 - static_cast<double>(q & 2);    // -1.0 for q = 2, 3
  const double c_sign = 1.0 - static_cast<double>((q + 1) & 2);
  sin_out = s_sign * (s_poly * keep_mask + c_poly * swap_mask);
  cos_out = c_sign * (c_poly * keep_mask + s_poly * swap_mask);
}

/// Simultaneous sinh/cosh for |x| <= 0.52 (the contour radius is at most
/// 0.5 * e * 1.02 < 0.51 for elliptic orbits). Plain Taylor series; the
/// first truncated terms (x^15/15!, x^16/16!) are below 1 ulp on the
/// domain.
inline void sinhcosh_small(double x, double& sinh_out, double& cosh_out) {
  const double z = x * x;
  cosh_out =
      1.0 + z * (1.0 / 2.0 +
                 z * (1.0 / 24.0 +
                      z * (1.0 / 720.0 +
                           z * (1.0 / 40320.0 +
                                z * (1.0 / 3628800.0 +
                                     z * (1.0 / 479001600.0 + z * (1.0 / 87178291200.0)))))));
  sinh_out =
      x * (1.0 + z * (1.0 / 6.0 +
                      z * (1.0 / 120.0 +
                           z * (1.0 / 5040.0 +
                                z * (1.0 / 362880.0 +
                                     z * (1.0 / 39916800.0 + z * (1.0 / 6227020800.0)))))));
}

}  // namespace scod::detail

/// Function multi-versioning for the batched lane kernels: the portable
/// x86-64 baseline (SSE2, 2 doubles/vector) plus an x86-64-v3 clone
/// (AVX2, 4 doubles/vector), selected once at load time via ifunc. The
/// clones run the same -ffp-contract=off arithmetic, only wider, so the
/// bit-identical guarantee holds on every dispatch target.
///
/// Disabled under ThreadSanitizer: GCC instruments the generated ifunc
/// resolvers, and the dynamic loader runs them during relocation —
/// before __tsan_init — so any binary linking a clone segfaults at load.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define SCOD_VEC_TARGETS __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define SCOD_VEC_TARGETS
#endif
