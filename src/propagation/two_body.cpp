#include "propagation/two_body.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "util/constants.hpp"

namespace scod {

TwoBodyPropagator::TwoBodyPropagator(std::span<const Satellite> satellites,
                                     const KeplerSolver& solver)
    : satellites_(satellites.begin(), satellites.end()), solver_(&solver) {
  cache_.reserve(satellites_.size());
  for (const Satellite& sat : satellites_) {
    const KeplerElements& el = sat.elements;
    if (!is_valid_orbit(el)) {
      throw std::invalid_argument("TwoBodyPropagator: satellite " +
                                  std::to_string(sat.id) + " has invalid elements");
    }
    TwoBodyCache c;
    c.mean_anomaly0 = el.mean_anomaly;
    c.mean_motion = mean_motion(el);
    c.eccentricity = el.eccentricity;
    c.semi_latus = semi_latus_rectum(el);
    c.vis_viva_factor = std::sqrt(kMuEarth / c.semi_latus);
    c.rotation = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
    cache_.push_back(c);
  }
}

double TwoBodyPropagator::true_anomaly(std::size_t index, double time) const {
  const TwoBodyCache& c = cache_[index];
  const double m = c.mean_anomaly0 + c.mean_motion * time;
  const double big_e = solver_->eccentric_anomaly(m, c.eccentricity);
  return eccentric_to_true(big_e, c.eccentricity);
}

Vec3 TwoBodyPropagator::position(std::size_t index, double time) const {
  const TwoBodyCache& c = cache_[index];
  const double f = true_anomaly(index, time);
  const double r = c.semi_latus / (1.0 + c.eccentricity * std::cos(f));
  const Vec3 pos_pf{r * std::cos(f), r * std::sin(f), 0.0};
  return c.rotation * pos_pf;
}

StateVector TwoBodyPropagator::state(std::size_t index, double time) const {
  const TwoBodyCache& c = cache_[index];
  const double f = true_anomaly(index, time);
  const double cf = std::cos(f), sf = std::sin(f);
  const double r = c.semi_latus / (1.0 + c.eccentricity * cf);
  const Vec3 pos_pf{r * cf, r * sf, 0.0};
  const Vec3 vel_pf{-c.vis_viva_factor * sf, c.vis_viva_factor * (c.eccentricity + cf), 0.0};
  return {c.rotation * pos_pf, c.rotation * vel_pf};
}

const KeplerElements& TwoBodyPropagator::elements(std::size_t index) const {
  return satellites_[index].elements;
}

}  // namespace scod
