#include "propagation/two_body.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "util/constants.hpp"

namespace scod {

namespace {

/// Satellites per batch block: bounds the stack scratch (three lane arrays)
/// and amortizes the one virtual solver dispatch per block.
constexpr std::size_t kBatchBlock = 256;

/// M_i = M0_i + n_i * t over one block — same expression as the scalar
/// path, lane arrays stride-1.
SCOD_VEC_TARGETS
void mean_anomaly_block(const TwoBodySoA& soa, double time, std::size_t begin,
                        std::size_t len, double* out) {
  const double* m0 = soa.mean_anomaly0.data() + begin;
  const double* n = soa.mean_motion.data() + begin;
  for (std::size_t l = 0; l < len; ++l) {
    out[l] = m0[l] + n[l] * time;
  }
}

/// Perifocal position from the solved eccentric anomaly, rotated to ECI —
/// the lane-loop twin of detail::cache_position (same expressions, same
/// order; this file compiles with -ffp-contract=off to keep the two
/// bit-identical).
SCOD_VEC_TARGETS
void position_block(const TwoBodySoA& soa, std::size_t begin, std::size_t len,
                    const double* big_e, Vec3* out) {
  const double* ecc = soa.eccentricity.data() + begin;
  const double* a = soa.semi_major.data() + begin;
  const double* b = soa.semi_minor.data() + begin;
  const double* r00 = soa.rotation[0].data() + begin;
  const double* r01 = soa.rotation[1].data() + begin;
  const double* r02 = soa.rotation[2].data() + begin;
  const double* r10 = soa.rotation[3].data() + begin;
  const double* r11 = soa.rotation[4].data() + begin;
  const double* r12 = soa.rotation[5].data() + begin;
  const double* r20 = soa.rotation[6].data() + begin;
  const double* r21 = soa.rotation[7].data() + begin;
  const double* r22 = soa.rotation[8].data() + begin;

  // Stride-1 lane results first — the interleaved (AoS) Vec3 stores would
  // otherwise keep the whole loop scalar — then one cheap transpose pass.
  double px[kBatchBlock], py[kBatchBlock], pz[kBatchBlock];
  for (std::size_t l = 0; l < len; ++l) {
    double se, ce;
    detail::sincos_bounded(big_e[l], se, ce);
    const double x = a[l] * (ce - ecc[l]);
    const double y = b[l] * se;
    const double z = 0.0;
    // Mirrors Mat3::operator* applied to {x, y, 0} term for term.
    px[l] = r00[l] * x + r01[l] * y + r02[l] * z;
    py[l] = r10[l] * x + r11[l] * y + r12[l] * z;
    pz[l] = r20[l] * x + r21[l] * y + r22[l] * z;
  }
  for (std::size_t l = 0; l < len; ++l) {
    out[l].x = px[l];
    out[l].y = py[l];
    out[l].z = pz[l];
  }
}

}  // namespace

TwoBodyPropagator::TwoBodyPropagator(std::span<const Satellite> satellites,
                                     const KeplerSolver& solver)
    : satellites_(satellites.begin(), satellites.end()), solver_(&solver) {
  cache_.reserve(satellites_.size());
  soa_.mean_anomaly0.reserve(satellites_.size());
  soa_.mean_motion.reserve(satellites_.size());
  soa_.eccentricity.reserve(satellites_.size());
  soa_.semi_major.reserve(satellites_.size());
  soa_.semi_minor.reserve(satellites_.size());
  for (auto& cells : soa_.rotation) cells.reserve(satellites_.size());

  for (const Satellite& sat : satellites_) {
    const KeplerElements& el = sat.elements;
    if (!is_valid_orbit(el)) {
      throw std::invalid_argument("TwoBodyPropagator: satellite " +
                                  std::to_string(sat.id) + " has invalid elements");
    }
    TwoBodyCache c;
    c.mean_anomaly0 = el.mean_anomaly;
    c.mean_motion = mean_motion(el);
    c.eccentricity = el.eccentricity;
    c.semi_latus = semi_latus_rectum(el);
    c.semi_major = el.semi_major_axis;
    c.semi_minor = el.semi_major_axis *
                   std::sqrt(1.0 - el.eccentricity * el.eccentricity);
    c.vis_viva_factor = std::sqrt(kMuEarth / c.semi_latus);
    c.rotation = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
    cache_.push_back(c);

    soa_.mean_anomaly0.push_back(c.mean_anomaly0);
    soa_.mean_motion.push_back(c.mean_motion);
    soa_.eccentricity.push_back(c.eccentricity);
    soa_.semi_major.push_back(c.semi_major);
    soa_.semi_minor.push_back(c.semi_minor);
    for (int r = 0; r < 3; ++r) {
      for (int col = 0; col < 3; ++col) {
        soa_.rotation[3 * r + col].push_back(c.rotation.m[r][col]);
      }
    }
  }
}

double TwoBodyPropagator::true_anomaly(std::size_t index, double time) const {
  const TwoBodyCache& c = cache_[index];
  const double m = c.mean_anomaly0 + c.mean_motion * time;
  const double big_e = solver_->eccentric_anomaly(m, c.eccentricity);
  return eccentric_to_true(big_e, c.eccentricity);
}

Vec3 TwoBodyPropagator::position(std::size_t index, double time) const {
  return detail::cache_position(cache_[index], *solver_, time);
}

StateVector TwoBodyPropagator::state(std::size_t index, double time) const {
  return detail::cache_state(cache_[index], *solver_, time);
}

void TwoBodyPropagator::positions_at(double time, std::size_t begin, std::size_t end,
                                     Vec3* out) const {
  double m_buf[kBatchBlock];
  double e_buf[kBatchBlock];
  for (std::size_t base = begin; base < end; base += kBatchBlock) {
    const std::size_t len = std::min(kBatchBlock, end - base);
    mean_anomaly_block(soa_, time, base, len, m_buf);
    solver_->eccentric_anomalies({m_buf, len},
                                 {soa_.eccentricity.data() + base, len}, {e_buf, len});
    position_block(soa_, base, len, e_buf, out + (base - begin));
  }
}

const KeplerElements& TwoBodyPropagator::elements(std::size_t index) const {
  return satellites_[index].elements;
}

}  // namespace scod
