#pragma once

#include <vector>

#include "propagation/kepler_solver.hpp"

namespace scod {

/// Contour-integration Kepler solver ("Kepler's Goat Herd", Philcox,
/// Goodman & Slepian 2021) — the solver the paper adapts for its GPU
/// propagation step.
///
/// Kepler's equation f(E) = E - e sin E - M has exactly one (simple) real
/// root E*, and f is entire, so by the residue theorem the root inside a
/// contour C enclosing only E* satisfies
///
///     E* = [ (1/2*pi*i) \oint_C z / f(z) dz ] / [ (1/2*pi*i) \oint_C 1 / f(z) dz ].
///
/// For M in [0, pi] the root lies in [M, M + e]; we take C as a circle of
/// center M + e/2 and a slightly inflated radius, discretize with the
/// trapezoid rule (geometric convergence on periodic integrands) and
/// obtain E* non-iteratively:
///
///     E* ~ c + rho * sum_j exp(2*i*theta_j)/f(z_j) / sum_j exp(i*theta_j)/f(z_j).
///
/// Unlike Newton's method, the cost is a fixed number of function
/// evaluations with no data-dependent branching — which is what makes the
/// solver attractive for one-thread-per-tuple execution (Section IV-B of
/// the paper). The quadrature nodes are precomputed once in the
/// constructor; this is the reusable "Kepler solver data" the paper stores
/// per solver instance.
class ContourKeplerSolver final : public KeplerSolver {
 public:
  /// `points` is the number of quadrature nodes N (Philcox et al. report
  /// double precision from N ~ 10-16). `polish` applies two terminal
  /// Newton corrections, bringing the residual to machine precision.
  explicit ContourKeplerSolver(int points = 16, bool polish = true);

  double eccentric_anomaly(double mean_anomaly, double eccentricity) const override;

  /// Batched SoA solve, bit-identical to per-call eccentric_anomaly(). The
  /// trapezoid loop is blocked satellite-major: lanes are satellites, the
  /// quadrature node of the current iteration is a broadcast scalar, so the
  /// compiler auto-vectorizes across satellites (stride-1 lane arrays)
  /// instead of across the 16 nodes (which would need a horizontal
  /// reduction per satellite). Degenerate inputs (near-circular, root
  /// pinned to the contour) take the same scalar Newton fallback as the
  /// per-call path.
  void eccentric_anomalies(std::span<const double> mean_anomalies,
                           std::span<const double> eccentricities,
                           std::span<double> out) const override;

  int points() const { return points_; }

 private:
  double solve_half_range(double mean_anomaly, double eccentricity) const;

  int points_;
  bool polish_;
  // exp(i*theta_j) and exp(2*i*theta_j), stored as separate re/im arrays so
  // the hot loop vectorizes.
  std::vector<double> cos1_, sin1_, cos2_, sin2_;
};

}  // namespace scod
