#include "propagation/contour_solver.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "propagation/fast_trig.hpp"
#include "util/constants.hpp"

namespace scod {

namespace {

/// Lanes per block of the batched kernel. 64 doubles per lane array keeps
/// the whole working set (13 lane arrays, ~6.5 KiB) in L1 while giving the
/// vectorizer long trip counts.
constexpr std::size_t kLanes = 64;

/// Lane state of one batch block. All arrays are SoA so the per-node inner
/// loop reads and writes stride-1.
struct SolveBlock {
  double m[kLanes];       ///< wrapped mean anomaly (full range)
  double mh[kLanes];      ///< half-range mean anomaly fed to the quadrature
  double e[kLanes];       ///< eccentricity
  double center[kLanes];  ///< contour center mh + e/2
  double radius[kLanes];  ///< contour radius
  double big_e[kLanes];   ///< result (unwrapped)
  unsigned char mirrored[kLanes];
  unsigned char fallback[kLanes];
};

/// The batched trapezoid quadrature + Newton polish. Per lane this performs
/// exactly the operation sequence of ContourKeplerSolver::solve_half_range
/// and the polish loop in eccentric_anomaly — the same expressions, the
/// same node order, the same shared sincos/sinhcosh kernels — so the
/// results are bit-identical to the scalar path (this file compiles with
/// -ffp-contract=off to keep contraction from breaking that, see
/// src/propagation/CMakeLists.txt).
SCOD_VEC_TARGETS
void contour_solve_block(const double* cos1, const double* sin1, const double* cos2,
                         const double* sin2, int points, bool polish, SolveBlock& blk,
                         std::size_t lanes) {
  double s1_re[kLanes], s1_im[kLanes], s2_re[kLanes], s2_im[kLanes];
  for (std::size_t l = 0; l < lanes; ++l) {
    s1_re[l] = 0.0;
    s1_im[l] = 0.0;
    s2_re[l] = 0.0;
    s2_im[l] = 0.0;
  }

  for (int j = 0; j < points; ++j) {
    const double c1 = cos1[j];
    const double s1 = sin1[j];
    const double c2 = cos2[j];
    const double s2 = sin2[j];
    for (std::size_t l = 0; l < lanes; ++l) {
      const double zx = blk.center[l] + blk.radius[l] * c1;
      const double zy = blk.radius[l] * s1;
      // sin(zx + i zy) = sin(zx) cosh(zy) + i cos(zx) sinh(zy)
      double sx, cx, sh, ch;
      detail::sincos_bounded(zx, sx, cx);
      detail::sinhcosh_small(zy, sh, ch);
      const double f_re = zx - blk.e[l] * sx * ch - blk.mh[l];
      const double f_im = zy - blk.e[l] * cx * sh;

      const double inv = 1.0 / (f_re * f_re + f_im * f_im);
      const double inv_re = f_re * inv;
      const double inv_im = -f_im * inv;

      s1_re[l] += c1 * inv_re - s1 * inv_im;
      s1_im[l] += c1 * inv_im + s1 * inv_re;
      s2_re[l] += c2 * inv_re - s2 * inv_im;
      s2_im[l] += c2 * inv_im + s2 * inv_re;
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    const double denom = s1_re[l] * s1_re[l] + s1_im[l] * s1_im[l];
    const double ratio_re = (s2_re[l] * s1_re[l] + s2_im[l] * s1_im[l]) / denom;
    const double half_e = blk.center[l] + blk.radius[l] * ratio_re;
    blk.big_e[l] = blk.mirrored[l] != 0 ? kTwoPi - half_e : half_e;
  }

  if (polish) {
    for (int it = 0; it < 2; ++it) {
      for (std::size_t l = 0; l < lanes; ++l) {
        double sx, cx;
        detail::sincos_bounded(blk.big_e[l], sx, cx);
        const double f = blk.big_e[l] - blk.e[l] * sx - blk.m[l];
        blk.big_e[l] -= f / (1.0 - blk.e[l] * cx);
      }
    }
  }
}

/// Degenerate inputs the quadrature cannot handle (same predicate as the
/// per-call path): circular orbits and roots pinned to the contour.
inline bool needs_newton_fallback(double m, double e) {
  return e < 1e-10 || m < 1e-8 || std::abs(m - kPi) < 1e-8 || std::abs(m - kTwoPi) < 1e-8;
}

}  // namespace

ContourKeplerSolver::ContourKeplerSolver(int points, bool polish)
    : points_(points), polish_(polish) {
  if (points < 4) throw std::invalid_argument("ContourKeplerSolver: need >= 4 points");
  cos1_.resize(points_);
  sin1_.resize(points_);
  cos2_.resize(points_);
  sin2_.resize(points_);
  for (int j = 0; j < points_; ++j) {
    const double theta = kTwoPi * static_cast<double>(j) / static_cast<double>(points_);
    cos1_[j] = std::cos(theta);
    sin1_[j] = std::sin(theta);
    cos2_[j] = std::cos(2.0 * theta);
    sin2_[j] = std::sin(2.0 * theta);
  }
}

double ContourKeplerSolver::eccentric_anomaly(double mean_anomaly,
                                              double eccentricity) const {
  const double m = wrap_two_pi(mean_anomaly);
  const double e = eccentricity;
  // Circular orbits and roots pinned to the contour (M ~ 0 or pi) are not
  // suitable for the contour quadrature; they are trivial/cheap for the
  // safeguarded Newton iteration instead.
  if (needs_newton_fallback(m, e)) {
    return NewtonKeplerSolver{}.eccentric_anomaly(m, e);
  }
  const bool mirrored = m > kPi;
  double big_e = solve_half_range(mirrored ? kTwoPi - m : m, e);
  if (mirrored) big_e = kTwoPi - big_e;

  if (polish_) {
    for (int it = 0; it < 2; ++it) {
      double sx, cx;
      detail::sincos_bounded(big_e, sx, cx);
      const double f = big_e - e * sx - m;
      big_e -= f / (1.0 - e * cx);
    }
  }
  return wrap_two_pi(big_e);
}

void ContourKeplerSolver::eccentric_anomalies(std::span<const double> mean_anomalies,
                                              std::span<const double> eccentricities,
                                              std::span<double> out) const {
  const std::size_t n = mean_anomalies.size();
  if (eccentricities.size() != n || out.size() != n) {
    throw std::invalid_argument(
        "ContourKeplerSolver::eccentric_anomalies: span size mismatch");
  }

  SolveBlock blk;
  for (std::size_t base = 0; base < n; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, n - base);

    double wrapped_m[kLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      const double m = wrap_two_pi(mean_anomalies[base + l]);
      const double e = eccentricities[base + l];
      wrapped_m[l] = m;
      if (needs_newton_fallback(m, e)) {
        // Keep the quadrature lanes branch-free: degenerate lanes run the
        // kernel on harmless stand-in values and are overwritten below.
        blk.fallback[l] = 1;
        blk.mirrored[l] = 0;
        blk.m[l] = 1.0;
        blk.mh[l] = 1.0;
        blk.e[l] = 0.5;
        blk.center[l] = 1.0 + 0.25;
        blk.radius[l] = 0.25 * 1.02 + 1e-12;
        continue;
      }
      const bool mirrored = m > kPi;
      const double mh = mirrored ? kTwoPi - m : m;
      blk.fallback[l] = 0;
      blk.mirrored[l] = mirrored ? 1 : 0;
      blk.m[l] = m;
      blk.mh[l] = mh;
      blk.e[l] = e;
      // Same contour as solve_half_range: centered on the [mh, mh + e]
      // interval, radius inflated by 1% + epsilon.
      blk.center[l] = mh + 0.5 * e;
      blk.radius[l] = 0.5 * e * 1.02 + 1e-12;
    }

    contour_solve_block(cos1_.data(), sin1_.data(), cos2_.data(), sin2_.data(), points_,
                        polish_, blk, lanes);

    for (std::size_t l = 0; l < lanes; ++l) {
      out[base + l] = blk.fallback[l] != 0
                          ? NewtonKeplerSolver{}.eccentric_anomaly(wrapped_m[l],
                                                                   eccentricities[base + l])
                          : wrap_two_pi(blk.big_e[l]);
    }
  }
}

double ContourKeplerSolver::solve_half_range(double m, double e) const {
  // Root lies in [m, m + e]; center the contour there and inflate the
  // radius by 1% + epsilon so a root exactly at an interval end (sin E = 0
  // or 1) stays strictly inside.
  //
  // NOTE: this loop and contour_solve_block above must stay in operation-
  // for-operation lockstep — the batched path is documented (and tested)
  // to be bit-identical to this one.
  const double center = m + 0.5 * e;
  const double radius = 0.5 * e * 1.02 + 1e-12;

  // Accumulate S1 = sum exp(i theta_j) / f(z_j) and
  //            S2 = sum exp(2 i theta_j) / f(z_j) with
  // z_j = center + radius exp(i theta_j).
  double s1_re = 0.0, s1_im = 0.0, s2_re = 0.0, s2_im = 0.0;
  for (int j = 0; j < points_; ++j) {
    const double zx = center + radius * cos1_[j];
    const double zy = radius * sin1_[j];
    // sin(zx + i zy) = sin(zx) cosh(zy) + i cos(zx) sinh(zy)
    double sx, cx, sh, ch;
    detail::sincos_bounded(zx, sx, cx);
    detail::sinhcosh_small(zy, sh, ch);
    const double f_re = zx - e * sx * ch - m;
    const double f_im = zy - e * cx * sh;

    const double inv = 1.0 / (f_re * f_re + f_im * f_im);
    const double inv_re = f_re * inv;
    const double inv_im = -f_im * inv;

    s1_re += cos1_[j] * inv_re - sin1_[j] * inv_im;
    s1_im += cos1_[j] * inv_im + sin1_[j] * inv_re;
    s2_re += cos2_[j] * inv_re - sin2_[j] * inv_im;
    s2_im += cos2_[j] * inv_im + sin2_[j] * inv_re;
  }

  // E* = center + radius * S2 / S1 (real part).
  const double denom = s1_re * s1_re + s1_im * s1_im;
  const double ratio_re = (s2_re * s1_re + s2_im * s1_im) / denom;
  return center + radius * ratio_re;
}

}  // namespace scod
