#include "propagation/contour_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "util/constants.hpp"

namespace scod {

ContourKeplerSolver::ContourKeplerSolver(int points, bool polish)
    : points_(points), polish_(polish) {
  if (points < 4) throw std::invalid_argument("ContourKeplerSolver: need >= 4 points");
  cos1_.resize(points_);
  sin1_.resize(points_);
  cos2_.resize(points_);
  sin2_.resize(points_);
  for (int j = 0; j < points_; ++j) {
    const double theta = kTwoPi * static_cast<double>(j) / static_cast<double>(points_);
    cos1_[j] = std::cos(theta);
    sin1_[j] = std::sin(theta);
    cos2_[j] = std::cos(2.0 * theta);
    sin2_[j] = std::sin(2.0 * theta);
  }
}

double ContourKeplerSolver::eccentric_anomaly(double mean_anomaly,
                                              double eccentricity) const {
  const double m = wrap_two_pi(mean_anomaly);
  const double e = eccentricity;
  // Circular orbits and roots pinned to the contour (M ~ 0 or pi) are not
  // suitable for the contour quadrature; they are trivial/cheap for the
  // safeguarded Newton iteration instead.
  if (e < 1e-10 || m < 1e-8 || std::abs(m - kPi) < 1e-8 || std::abs(m - kTwoPi) < 1e-8) {
    return NewtonKeplerSolver{}.eccentric_anomaly(m, e);
  }
  const bool mirrored = m > kPi;
  double big_e = solve_half_range(mirrored ? kTwoPi - m : m, e);
  if (mirrored) big_e = kTwoPi - big_e;

  if (polish_) {
    for (int it = 0; it < 2; ++it) {
      const double f = big_e - e * std::sin(big_e) - m;
      big_e -= f / (1.0 - e * std::cos(big_e));
    }
  }
  return wrap_two_pi(big_e);
}

double ContourKeplerSolver::solve_half_range(double m, double e) const {
  // Root lies in [m, m + e]; center the contour there and inflate the
  // radius by 1% + epsilon so a root exactly at an interval end (sin E = 0
  // or 1) stays strictly inside.
  const double center = m + 0.5 * e;
  const double radius = 0.5 * e * 1.02 + 1e-12;

  // Accumulate S1 = sum exp(i theta_j) / f(z_j) and
  //            S2 = sum exp(2 i theta_j) / f(z_j) with
  // z_j = center + radius exp(i theta_j).
  double s1_re = 0.0, s1_im = 0.0, s2_re = 0.0, s2_im = 0.0;
  for (int j = 0; j < points_; ++j) {
    const double zx = center + radius * cos1_[j];
    const double zy = radius * sin1_[j];
    // sin(zx + i zy) = sin(zx) cosh(zy) + i cos(zx) sinh(zy)
    const double sx = std::sin(zx), cx = std::cos(zx);
    const double ch = std::cosh(zy), sh = std::sinh(zy);
    const double f_re = zx - e * sx * ch - m;
    const double f_im = zy - e * cx * sh;

    const double denom = f_re * f_re + f_im * f_im;
    const double inv_re = f_re / denom;
    const double inv_im = -f_im / denom;

    s1_re += cos1_[j] * inv_re - sin1_[j] * inv_im;
    s1_im += cos1_[j] * inv_im + sin1_[j] * inv_re;
    s2_re += cos2_[j] * inv_re - sin2_[j] * inv_im;
    s2_im += cos2_[j] * inv_im + sin2_[j] * inv_re;
  }

  // E* = center + radius * S2 / S1 (real part).
  const double denom = s1_re * s1_re + s1_im * s1_im;
  const double ratio_re = (s2_re * s1_re + s2_im * s1_im) / denom;
  return center + radius * ratio_re;
}

}  // namespace scod
