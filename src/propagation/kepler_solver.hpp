#pragma once

#include <span>

namespace scod {

/// Solves Kepler's equation E - e sin(E) = M for the eccentric anomaly E.
///
/// The paper's propagation step is dominated by this solve; it adapts the
/// high-performance Contour ("Kepler's Goat Herd") solver of Philcox et al.
/// so every (satellite, time) evaluation is independent. We provide three
/// implementations: a bisection reference (slow, guaranteed), the classic
/// Newton-Raphson iteration (the baseline the Contour method is compared
/// against), and the Contour solver itself (contour_solver.hpp).
class KeplerSolver {
 public:
  virtual ~KeplerSolver() = default;

  /// Returns E in [0, 2*pi) for mean anomaly M (any value, wrapped
  /// internally) and eccentricity e in [0, 1).
  virtual double eccentric_anomaly(double mean_anomaly, double eccentricity) const = 0;

  /// Batched solve: out[i] = eccentric_anomaly(mean_anomalies[i],
  /// eccentricities[i]) for every i. All three spans must have equal
  /// length. The base implementation loops over the scalar virtual call;
  /// solvers whose inner loop is data-independent (the contour solver)
  /// override it with a blocked SoA kernel that produces bit-identical
  /// results. One virtual dispatch per batch instead of one per element.
  virtual void eccentric_anomalies(std::span<const double> mean_anomalies,
                                   std::span<const double> eccentricities,
                                   std::span<double> out) const;
};

/// Newton-Raphson with a third-order-accurate starter and a bisection
/// safeguard; converges to ~1e-14 residual for all e < 1.
class NewtonKeplerSolver final : public KeplerSolver {
 public:
  explicit NewtonKeplerSolver(double tolerance = 1e-14, int max_iterations = 50)
      : tolerance_(tolerance), max_iterations_(max_iterations) {}

  double eccentric_anomaly(double mean_anomaly, double eccentricity) const override;

 private:
  double tolerance_;
  int max_iterations_;
};

/// Plain bisection on [0, 2*pi]; used as the ground-truth oracle in tests
/// because its convergence does not depend on any starting heuristic.
class BisectionKeplerSolver final : public KeplerSolver {
 public:
  explicit BisectionKeplerSolver(int iterations = 64) : iterations_(iterations) {}

  double eccentric_anomaly(double mean_anomaly, double eccentricity) const override;

 private:
  int iterations_;
};

/// Kepler-equation residual |E - e sin E - M| (with wrap-around handling);
/// handy for accuracy assertions.
double kepler_residual(double eccentric_anomaly, double eccentricity, double mean_anomaly);

}  // namespace scod
