#pragma once

#include <cstddef>

#include "orbit/elements.hpp"
#include "orbit/state.hpp"

namespace scod {

/// Position source for a fixed set of satellites over time.
///
/// All conjunction-screening variants consume this interface: the grid
/// front-end asks for positions at the sample times, the PCA/TCA
/// refinement evaluates the pairwise distance at arbitrary times inside
/// the Brent search interval. Implementations must be safe to call
/// concurrently from many threads (they are pure functions of (index, t)).
class Propagator {
 public:
  virtual ~Propagator() = default;

  /// Number of satellites this propagator serves.
  virtual std::size_t size() const = 0;

  /// ECI position [km] of satellite `index` at `time` seconds past epoch.
  virtual Vec3 position(std::size_t index, double time) const = 0;

  /// ECI position and velocity of satellite `index` at `time`.
  virtual StateVector state(std::size_t index, double time) const = 0;

  /// Epoch elements of satellite `index`.
  virtual const KeplerElements& elements(std::size_t index) const = 0;

  /// Distance between two satellites at `time` [km]; the objective function
  /// the Brent search minimizes.
  double distance(std::size_t a, std::size_t b, double time) const {
    return position(a, time).distance(position(b, time));
  }
};

}  // namespace scod
