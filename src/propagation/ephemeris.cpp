#include "propagation/ephemeris.hpp"

#include <cmath>
#include <stdexcept>

#include "orbit/geometry.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"
#include "util/constants.hpp"

namespace scod {

Vec3 gravity_acceleration(const Vec3& position, const ForceModel& model) {
  const double r2 = position.norm2();
  const double r = std::sqrt(r2);
  const double r3 = r2 * r;
  Vec3 acc = position * (-kMuEarth / r3);

  if (model.include_j2) {
    // a_J2 = -(3/2) J2 mu Re^2 / r^5 * [x (1 - 5 z^2/r^2),
    //                                   y (1 - 5 z^2/r^2),
    //                                   z (3 - 5 z^2/r^2)]
    const double z2_over_r2 = position.z * position.z / r2;
    const double k = -1.5 * kJ2 * kMuEarth * kEarthRadius * kEarthRadius / (r3 * r2);
    acc.x += k * position.x * (1.0 - 5.0 * z2_over_r2);
    acc.y += k * position.y * (1.0 - 5.0 * z2_over_r2);
    acc.z += k * position.z * (3.0 - 5.0 * z2_over_r2);
  }

  if (model.include_j3) {
    // J3 zonal term, the gradient of R = -(mu/r) J3 (Re/r)^3 P3(z/r):
    //   a_x = C x z (3 - 7 z^2/r^2)
    //   a_y = C y z (3 - 7 z^2/r^2)
    //   a_z = C (6 z^2 - 7 z^4/r^2 - 3/5 r^2)
    // with C = -(5/2) J3 mu Re^3 / r^7.
    const double z = position.z;
    const double z2 = z * z;
    const double c = -2.5 * kJ3Earth * kMuEarth * kEarthRadius * kEarthRadius *
                     kEarthRadius / (r3 * r2 * r2);
    const double xy_factor = z * (3.0 - 7.0 * z2 / r2);
    acc.x += c * position.x * xy_factor;
    acc.y += c * position.y * xy_factor;
    acc.z += c * (6.0 * z2 - 7.0 * z2 * z2 / r2 - 0.6 * r2);
  }
  return acc;
}

double gravity_potential(const Vec3& position, const ForceModel& model) {
  const double r = position.norm();
  const double s = position.z / r;  // sin(latitude)
  double potential = kMuEarth / r;  // sign convention: a = grad(potential)
  if (model.include_j2) {
    const double p2 = 0.5 * (3.0 * s * s - 1.0);
    potential += -(kMuEarth / r) * kJ2 * std::pow(kEarthRadius / r, 2) * p2;
  }
  if (model.include_j3) {
    const double p3 = 0.5 * (5.0 * s * s * s - 3.0 * s);
    potential += -(kMuEarth / r) * kJ3Earth * std::pow(kEarthRadius / r, 3) * p3;
  }
  return potential;
}

StateVector rk4_step(const StateVector& state, double dt, const ForceModel& model) {
  const auto deriv = [&](const StateVector& s) {
    return StateVector{s.velocity, gravity_acceleration(s.position, model)};
  };
  const StateVector k1 = deriv(state);
  const StateVector k2 = deriv({state.position + k1.position * (dt / 2.0),
                                state.velocity + k1.velocity * (dt / 2.0)});
  const StateVector k3 = deriv({state.position + k2.position * (dt / 2.0),
                                state.velocity + k2.velocity * (dt / 2.0)});
  const StateVector k4 =
      deriv({state.position + k3.position * dt, state.velocity + k3.velocity * dt});

  return {state.position + (k1.position + (k2.position + k3.position) * 2.0 +
                            k4.position) * (dt / 6.0),
          state.velocity + (k1.velocity + (k2.velocity + k3.velocity) * 2.0 +
                            k4.velocity) * (dt / 6.0)};
}

namespace {

/// Margin past both span ends so edge probes of the Brent search stay on
/// interpolated (not clamped) data.
double grid_margin(double knot_step) { return 2.0 * knot_step + 60.0; }

std::size_t knots_for(double t_begin, double t_end, double knot_step) {
  const double covered = (t_end - t_begin) + 2.0 * grid_margin(knot_step);
  return static_cast<std::size_t>(std::ceil(covered / knot_step)) + 2;
}

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

}  // namespace

EphemerisPropagator::EphemerisPropagator(std::vector<KeplerElements> elements,
                                         double t_begin, double knot_step,
                                         std::size_t knots_per_satellite)
    : elements_(std::move(elements)),
      t_begin_(t_begin),
      knot_step_(knot_step),
      knots_per_satellite_(knots_per_satellite) {
  if (!(knot_step > 0.0)) {
    throw std::invalid_argument("EphemerisPropagator: knot step must be > 0");
  }
  states_.resize(elements_.size() * knots_per_satellite_);
}

EphemerisPropagator EphemerisPropagator::sample(const Propagator& source,
                                                double t_begin, double t_end,
                                                double knot_step, ThreadPool* pool) {
  if (!(t_begin < t_end)) {
    throw std::invalid_argument("EphemerisPropagator::sample: empty span");
  }
  std::vector<KeplerElements> elements;
  elements.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) elements.push_back(source.elements(i));

  const std::size_t knots = knots_for(t_begin, t_end, knot_step);
  EphemerisPropagator ephemeris(std::move(elements),
                                t_begin - grid_margin(knot_step), knot_step, knots);

  const std::size_t n = ephemeris.size();
  pool_or_global(pool).parallel_for(n * knots, [&](std::size_t idx) {
    const std::size_t sat = idx / knots;
    const std::size_t knot = idx % knots;
    const double t = ephemeris.t_begin_ + static_cast<double>(knot) * knot_step;
    ephemeris.states_[idx] = source.state(sat, t);
  });
  return ephemeris;
}

EphemerisPropagator EphemerisPropagator::integrate(
    std::span<const Satellite> satellites, double t_begin, double t_end,
    const ForceModel& model, double integrator_step, double knot_step,
    ThreadPool* pool) {
  if (!(t_begin < t_end)) {
    throw std::invalid_argument("EphemerisPropagator::integrate: empty span");
  }
  if (!(integrator_step > 0.0) || knot_step < integrator_step) {
    throw std::invalid_argument("EphemerisPropagator::integrate: bad step sizes");
  }
  const auto substeps = static_cast<std::size_t>(std::round(knot_step / integrator_step));
  const double dt = knot_step / static_cast<double>(substeps);

  std::vector<KeplerElements> elements;
  elements.reserve(satellites.size());
  for (const Satellite& sat : satellites) elements.push_back(sat.elements);

  const std::size_t knots = knots_for(t_begin, t_end, knot_step);
  EphemerisPropagator ephemeris(std::move(elements),
                                t_begin - grid_margin(knot_step), knot_step, knots);

  // Initial conditions at the (margin-shifted) grid start come from the
  // analytic two-body solution run backwards from the element epoch t = 0.
  const ContourKeplerSolver solver;
  const TwoBodyPropagator initial(satellites, solver);

  pool_or_global(pool).parallel_for(satellites.size(), [&](std::size_t sat) {
    StateVector state = initial.state(sat, ephemeris.t_begin_);
    ephemeris.states_[sat * knots] = state;
    for (std::size_t knot = 1; knot < knots; ++knot) {
      for (std::size_t s = 0; s < substeps; ++s) state = rk4_step(state, dt, model);
      ephemeris.states_[sat * knots + knot] = state;
    }
  });
  return ephemeris;
}

void EphemerisPropagator::locate(double time, std::size_t* knot, double* alpha) const {
  const double u = (time - t_begin_) / knot_step_;
  double floor_u = std::floor(u);
  // Clamp to the covered grid; callers straying past the margin get the
  // nearest segment's extrapolation rather than UB.
  floor_u = std::max(0.0, std::min(floor_u, static_cast<double>(knots_per_satellite_ - 2)));
  *knot = static_cast<std::size_t>(floor_u);
  *alpha = u - floor_u;
}

Vec3 EphemerisPropagator::position(std::size_t index, double time) const {
  return state(index, time).position;
}

StateVector EphemerisPropagator::state(std::size_t index, double time) const {
  std::size_t knot;
  double a;
  locate(time, &knot, &a);
  const StateVector& s0 = states_[index * knots_per_satellite_ + knot];
  const StateVector& s1 = states_[index * knots_per_satellite_ + knot + 1];
  const double h = knot_step_;

  // Cubic Hermite basis on [0, 1].
  const double a2 = a * a;
  const double a3 = a2 * a;
  const double h00 = 2.0 * a3 - 3.0 * a2 + 1.0;
  const double h10 = a3 - 2.0 * a2 + a;
  const double h01 = -2.0 * a3 + 3.0 * a2;
  const double h11 = a3 - a2;

  StateVector out;
  out.position = s0.position * h00 + s0.velocity * (h10 * h) +
                 s1.position * h01 + s1.velocity * (h11 * h);

  // Derivative of the Hermite polynomial gives the velocity.
  const double d00 = (6.0 * a2 - 6.0 * a) / h;
  const double d10 = 3.0 * a2 - 4.0 * a + 1.0;
  const double d01 = (-6.0 * a2 + 6.0 * a) / h;
  const double d11 = 3.0 * a2 - 2.0 * a;
  out.velocity = s0.position * d00 + s0.velocity * d10 + s1.position * d01 +
                 s1.velocity * d11;
  return out;
}

const KeplerElements& EphemerisPropagator::elements(std::size_t index) const {
  return elements_[index];
}

}  // namespace scod
