#include "verify/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace scod::verify {

namespace {

/// Copy of `c` without satellites [begin, end); the service delta is
/// pruned of entries referencing dropped ids.
FuzzCase without_range(const FuzzCase& c, std::size_t begin, std::size_t end) {
  FuzzCase reduced = c;
  reduced.satellites.erase(reduced.satellites.begin() + begin,
                           reduced.satellites.begin() + end);
  reduced.regimes.erase(reduced.regimes.begin() + begin,
                        reduced.regimes.begin() + end);

  std::unordered_set<std::uint32_t> kept;
  for (const Satellite& sat : reduced.satellites) kept.insert(sat.id);
  std::erase_if(reduced.delta_updates,
                [&](const Satellite& s) { return kept.count(s.id) == 0; });
  std::erase_if(reduced.delta_removals,
                [&](std::uint32_t id) { return kept.count(id) == 0; });
  return reduced;
}

}  // namespace

ShrinkResult shrink_case(FuzzCase failing, const DivergencePredicate& still_fails,
                         const ShrinkOptions& options) {
  ShrinkResult result;
  result.initial_objects = failing.size();

  const auto check = [&](const FuzzCase& candidate) {
    if (result.checks >= options.max_checks) return false;
    ++result.checks;
    return still_fails(candidate);
  };

  // Phase 1 — object reduction (ddmin): drop chunks of satellites,
  // halving the chunk size until single-object removals stop sticking.
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  for (;;) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < failing.size() && failing.size() > 2) {
      const std::size_t end = std::min(start + chunk, failing.size());
      // Never drop below two objects — a conjunction needs a pair.
      if (failing.size() - (end - start) < 2) {
        ++start;
        continue;
      }
      const FuzzCase candidate = without_range(failing, start, end);
      if (check(candidate)) {
        failing = candidate;
        removed_any = true;  // the next chunk slid into `start`
      } else {
        start = end;
      }
    }
    if (removed_any) continue;   // rescan at the same granularity
    if (chunk == 1) break;       // 1-minimal (or out of budget)
    chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // Phase 2 — narrow the time window around the surviving activity.
  if (options.narrow_window) {
    const double min_span = 4.0 * std::max(failing.config.seconds_per_sample, 1.0);
    for (double fraction : {0.5, 0.25, 0.125}) {
      for (bool from_end : {true, false}) {
        for (;;) {
          const double span = failing.config.t_end - failing.config.t_begin;
          const double cut = span * fraction;
          if (span - cut < min_span) break;
          FuzzCase candidate = failing;
          if (from_end) {
            candidate.config.t_end -= cut;
          } else {
            candidate.config.t_begin += cut;
          }
          if (!check(candidate)) break;
          failing = candidate;
        }
      }
    }
  }

  // Phase 3 — canonicalize the surviving elements: each simplification is
  // kept only if the divergence survives it.
  if (options.simplify_elements) {
    for (std::size_t i = 0; i < failing.size(); ++i) {
      const auto try_tweak = [&](auto&& tweak) {
        FuzzCase candidate = failing;
        tweak(candidate.satellites[i].elements);
        if (candidate.satellites[i].elements == failing.satellites[i].elements) {
          return;  // no-op, don't burn a check
        }
        if (check(candidate)) failing = candidate;
      };
      try_tweak([](KeplerElements& el) { el.eccentricity = 0.0; });
      try_tweak([](KeplerElements& el) { el.raan = 0.0; });
      try_tweak([](KeplerElements& el) { el.arg_perigee = 0.0; });
      try_tweak([](KeplerElements& el) {
        el.mean_anomaly = std::round(el.mean_anomaly * 1e3) / 1e3;
      });
      try_tweak([](KeplerElements& el) {
        el.semi_major_axis = std::round(el.semi_major_axis * 10.0) / 10.0;
      });
    }
  }

  result.minimized = std::move(failing);
  return result;
}

}  // namespace scod::verify
