#include "verify/case_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace scod::verify {

namespace {

constexpr const char* kMagic = "scod-fuzz-case v1";

std::string format_elements(const KeplerElements& el) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.17g %.17g %.17g %.17g %.17g %.17g",
                el.semi_major_axis, el.eccentricity, el.inclination, el.raan,
                el.arg_perigee, el.mean_anomaly);
  return buf;
}

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error("load_case: " + path + ":" + std::to_string(line) +
                           ": " + what);
}

Satellite parse_satellite(std::istringstream& in, const std::string& path,
                          std::size_t line) {
  Satellite sat;
  KeplerElements& el = sat.elements;
  if (!(in >> sat.id >> el.semi_major_axis >> el.eccentricity >> el.inclination >>
        el.raan >> el.arg_perigee >> el.mean_anomaly)) {
    fail(path, line, "malformed satellite record");
  }
  return sat;
}

}  // namespace

void save_case(const std::string& path, const FuzzCase& fuzz_case) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_case: cannot open " + path);

  char buf[256];
  out << kMagic << '\n';
  out << "seed " << fuzz_case.seed << '\n';
  std::snprintf(buf, sizeof(buf),
                "config %.17g %.17g %.17g %.17g", fuzz_case.config.threshold_km,
                fuzz_case.config.t_begin, fuzz_case.config.t_end,
                fuzz_case.config.seconds_per_sample);
  out << buf << '\n';
  for (std::size_t i = 0; i < fuzz_case.satellites.size(); ++i) {
    const Satellite& sat = fuzz_case.satellites[i];
    const OrbitRegime regime = i < fuzz_case.regimes.size()
                                   ? fuzz_case.regimes[i]
                                   : OrbitRegime::kBackgroundShell;
    out << "sat " << sat.id << ' ' << format_elements(sat.elements) << ' '
        << regime_name(regime) << '\n';
  }
  for (const Satellite& sat : fuzz_case.delta_updates) {
    out << "update " << sat.id << ' ' << format_elements(sat.elements) << '\n';
  }
  for (const std::uint32_t id : fuzz_case.delta_removals) {
    out << "remove " << id << '\n';
  }
  for (const Satellite& sat : fuzz_case.delta_adds) {
    out << "add " << sat.id << ' ' << format_elements(sat.elements) << '\n';
  }
  if (!out) throw std::runtime_error("save_case: write failed for " + path);
}

FuzzCase load_case(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_case: cannot open " + path);

  FuzzCase out;
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line) || line != kMagic) {
    fail(path, 1, "missing '" + std::string(kMagic) + "' header");
  }
  ++line_no;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "seed") {
      if (!(fields >> out.seed)) fail(path, line_no, "malformed seed");
    } else if (tag == "config") {
      if (!(fields >> out.config.threshold_km >> out.config.t_begin >>
            out.config.t_end >> out.config.seconds_per_sample)) {
        fail(path, line_no, "malformed config");
      }
    } else if (tag == "sat") {
      out.satellites.push_back(parse_satellite(fields, path, line_no));
      std::string regime;
      if (!(fields >> regime)) fail(path, line_no, "satellite missing regime");
      out.regimes.push_back(regime_from_name(regime));
    } else if (tag == "update") {
      out.delta_updates.push_back(parse_satellite(fields, path, line_no));
    } else if (tag == "remove") {
      std::uint32_t id = 0;
      if (!(fields >> id)) fail(path, line_no, "malformed remove");
      out.delta_removals.push_back(id);
    } else if (tag == "add") {
      out.delta_adds.push_back(parse_satellite(fields, path, line_no));
    } else {
      fail(path, line_no, "unknown record '" + tag + "'");
    }
  }
  if (out.satellites.size() < 2) {
    fail(path, line_no, "a case needs at least two satellites");
  }
  if (!(out.config.t_begin < out.config.t_end)) {
    fail(path, line_no, "empty time span");
  }
  return out;
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace scod::verify
