#include "verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "core/context.hpp"
#include "obs/telemetry.hpp"
#include "service/screening_service.hpp"

namespace scod::verify {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::string event_detail(const char* what, const Conjunction& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %u-%u tca=%.3f pca=%.6f", what, c.sat_a,
                c.sat_b, c.tca, c.pca);
  return buf;
}

/// Diffs one screener's report against the oracle record (which extends to
/// slack * threshold so soundness can be checked above the threshold too).
void diff_against_oracle(const std::string& name,
                         const std::vector<Conjunction>& report,
                         const std::vector<Conjunction>& oracle,
                         double threshold, const DiffTolerances& tol,
                         std::vector<Divergence>& out) {
  std::unordered_map<std::uint64_t, std::vector<const Conjunction*>> by_pair;
  for (const Conjunction& c : oracle) {
    by_pair[pair_key(c.sat_a, c.sat_b)].push_back(&c);
  }

  const double band_lo = threshold * (1.0 - tol.threshold_band);

  // Completeness: every oracle event comfortably below the threshold must
  // appear in the report (the grid guarantee of Fig. 4 admits no skips).
  std::unordered_map<std::uint64_t, std::vector<const Conjunction*>> report_by_pair;
  for (const Conjunction& c : report) {
    report_by_pair[pair_key(c.sat_a, c.sat_b)].push_back(&c);
  }
  for (const Conjunction& c : oracle) {
    if (c.pca > band_lo) continue;
    bool found = false;
    const auto it = report_by_pair.find(pair_key(c.sat_a, c.sat_b));
    if (it != report_by_pair.end()) {
      for (const Conjunction* r : it->second) {
        if (std::abs(r->tca - c.tca) <= tol.tca_window) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      out.push_back({name, Divergence::Kind::kMissed, c,
                     event_detail("missed oracle event", c)});
    }
  }

  // Soundness: everything reported must be sub-threshold and correspond to
  // an oracle event with an agreeing PCA.
  for (const Conjunction& c : report) {
    if (c.pca > threshold * (1.0 + 1e-9)) {
      out.push_back({name, Divergence::Kind::kSpurious, c,
                     event_detail("above-threshold report", c)});
      continue;
    }
    const Conjunction* best = nullptr;
    const auto it = by_pair.find(pair_key(c.sat_a, c.sat_b));
    if (it != by_pair.end()) {
      for (const Conjunction* o : it->second) {
        if (std::abs(o->tca - c.tca) > tol.tca_window) continue;
        if (best == nullptr ||
            std::abs(o->tca - c.tca) < std::abs(best->tca - c.tca)) {
          best = o;
        }
      }
    }
    if (best == nullptr) {
      out.push_back({name, Divergence::Kind::kSpurious, c,
                     event_detail("invented event", c)});
    } else if (std::abs(best->pca - c.pca) > tol.pca_tolerance) {
      out.push_back({name, Divergence::Kind::kPcaMismatch, c,
                     event_detail("pca mismatch vs oracle", c) +
                         " oracle_pca=" + std::to_string(best->pca)});
    }
  }
}

/// Runs the case's randomized delta through the incremental service and
/// requires the merged report to equal the from-scratch reference (the
/// service's documented exactness contract, far inside Brent tolerance).
void diff_service(const FuzzCase& fuzz_case, std::vector<Divergence>& out) {
  ServiceOptions service_options;
  service_options.config = fuzz_case.config;
  ScreeningService service(service_options);

  service.upsert(fuzz_case.satellites);
  service.screen();  // warm baseline

  if (!fuzz_case.delta_updates.empty()) service.upsert(fuzz_case.delta_updates);
  for (const std::uint32_t id : fuzz_case.delta_removals) service.remove(id);
  if (!fuzz_case.delta_adds.empty()) service.upsert(fuzz_case.delta_adds);

  const ServiceReport incremental = service.screen(ScreenMode::kIncremental);
  const std::vector<IdConjunction> reference = service.reference_conjunctions();

  const auto mismatch = [&](const char* what, const IdConjunction& c) {
    Conjunction event{c.id_a, c.id_b, c.tca, c.pca};
    out.push_back({"service", Divergence::Kind::kServiceMismatch, event,
                   event_detail(what, event)});
  };

  if (incremental.conjunctions.size() != reference.size()) {
    // Report the first few set-difference entries for diagnosis.
    std::size_t reported = 0;
    for (const IdConjunction& want : reference) {
      const bool present = std::any_of(
          incremental.conjunctions.begin(), incremental.conjunctions.end(),
          [&](const IdConjunction& got) {
            return got.id_a == want.id_a && got.id_b == want.id_b &&
                   std::abs(got.tca - want.tca) <= 1e-6;
          });
      if (!present && reported++ < 4) mismatch("incremental missing", want);
    }
    for (const IdConjunction& got : incremental.conjunctions) {
      const bool expected = std::any_of(
          reference.begin(), reference.end(), [&](const IdConjunction& want) {
            return got.id_a == want.id_a && got.id_b == want.id_b &&
                   std::abs(got.tca - want.tca) <= 1e-6;
          });
      if (!expected && reported++ < 8) mismatch("incremental extra", got);
    }
    if (reported == 0) {
      mismatch("incremental size mismatch",
               IdConjunction{0, 0, 0.0,
                             static_cast<double>(incremental.conjunctions.size()) -
                                 static_cast<double>(reference.size())});
    }
    return;
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const IdConjunction& got = incremental.conjunctions[i];
    const IdConjunction& want = reference[i];
    if (got.id_a != want.id_a || got.id_b != want.id_b ||
        std::abs(got.tca - want.tca) > 1e-6 ||
        std::abs(got.pca - want.pca) > 1e-9) {
      mismatch("incremental entry differs from reference", got);
    }
  }
}

/// Validates the telemetry funnel of one variant screen against the
/// invariants the counters are designed around. `snap` must cover exactly
/// this screen (reset before, snapshot after).
void check_counter_invariants(const std::string& name, Variant variant,
                              const ScreeningReport& report,
                              const obs::TelemetrySnapshot& snap,
                              std::vector<Divergence>& out) {
  using C = obs::Counter;
  const auto v = [&](C c) { return snap.value(c); };
  const auto expect = [&](bool ok, const char* what, std::uint64_t lhs,
                          std::uint64_t rhs) {
    if (ok) return;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "counter invariant '%s' violated: %llu vs %llu",
                  what, static_cast<unsigned long long>(lhs),
                  static_cast<unsigned long long>(rhs));
    out.push_back({name, Divergence::Kind::kCounterViolation, Conjunction{}, buf});
  };

  // Refinement monotonicity holds for every variant: each raw conjunction
  // came out of one minimization, and merging only removes events.
  const std::uint64_t raw = v(C::kConjunctionsRaw);
  const std::uint64_t reported = v(C::kConjunctionsReported);
  expect(reported == report.conjunctions.size(), "reported == |conjunctions|",
         reported, report.conjunctions.size());
  expect(raw >= reported, "raw >= reported", raw, reported);
  expect(v(C::kRefinements) >= raw, "refinements >= raw", v(C::kRefinements), raw);

  if (variant == Variant::kGrid || variant == Variant::kHybrid) {
    // Detection funnel conservation: every tested pair lands in exactly one
    // bucket (clean-masked, prefiltered, emitted, deduplicated).
    const std::uint64_t classified =
        v(C::kPairsMaskedClean) + v(C::kPairsPrefiltered) +
        v(C::kCandidatesEmitted) + v(C::kCandidatesDeduplicated);
    expect(v(C::kPairsTested) == classified, "pairs_tested conservation",
           v(C::kPairsTested), classified);
    expect(v(C::kCandidatesEmitted) == report.stats.candidates,
           "emitted == stats.candidates", v(C::kCandidatesEmitted),
           report.stats.candidates);
    expect(v(C::kCellsOccupied) <= v(C::kCellsScanned),
           "occupied <= scanned", v(C::kCellsOccupied), v(C::kCellsScanned));
    const std::uint64_t samples = static_cast<std::uint64_t>(
        report.stats.total_samples * report.stats.satellites);
    expect(v(C::kSamplesPropagated) == samples,
           "samples_propagated == total_samples * n", v(C::kSamplesPropagated),
           samples);
    expect(v(C::kGridInserts) == v(C::kSamplesPropagated),
           "grid_inserts == samples_propagated", v(C::kGridInserts),
           v(C::kSamplesPropagated));
    const std::uint64_t hist_total =
        std::accumulate(snap.probe_histogram.begin(), snap.probe_histogram.end(),
                        std::uint64_t{0});
    expect(hist_total == v(C::kGridInserts), "probe histogram sums to inserts",
           hist_total, v(C::kGridInserts));
  }

  if (variant == Variant::kHybrid || variant == Variant::kLegacy) {
    // Filter-chain conservation and monotonicity.
    const std::uint64_t buckets =
        v(C::kFilterApogeePerigeeRejects) + v(C::kFilterPathRejects) +
        v(C::kFilterWindowRejects) + v(C::kFilterSurvivors);
    expect(v(C::kFilterPairsIn) == buckets, "filter_pairs_in conservation",
           v(C::kFilterPairsIn), buckets);
    expect(v(C::kFilterPathChecks) ==
               v(C::kFilterPairsIn) - v(C::kFilterApogeePerigeeRejects),
           "path_checks == in - ap_rejects", v(C::kFilterPathChecks),
           v(C::kFilterPairsIn) - v(C::kFilterApogeePerigeeRejects));
    expect(v(C::kFilterWindowChecks) <= v(C::kFilterPathChecks),
           "window_checks <= path_checks", v(C::kFilterWindowChecks),
           v(C::kFilterPathChecks));
    expect(v(C::kFilterWindowRejects) <= v(C::kFilterWindowChecks),
           "window_rejects <= window_checks", v(C::kFilterWindowRejects),
           v(C::kFilterWindowChecks));
  }

  if (variant == Variant::kSieve) {
    const std::uint64_t buckets =
        v(C::kFilterApogeePerigeeRejects) + v(C::kFilterSurvivors);
    expect(v(C::kFilterPairsIn) == buckets, "sieve filter conservation",
           v(C::kFilterPairsIn), buckets);
    expect(v(C::kRefinements) == report.stats.refinements,
           "sieve refinements == stats.refinements", v(C::kRefinements),
           report.stats.refinements);
  }
}

/// Bit-exact comparison of a warm-context rerun against the cold report.
/// Exact equality (not tolerance matching) is the contract: the arena must
/// hand back buffers in precisely the state a fresh allocation would have,
/// so every arithmetic operation replays identically. Timings are excluded
/// (wall clock), as are the memory gauges (an arena may retain capacity for
/// a larger past case; the computed results must not notice).
void diff_context_reuse(const std::string& name, const ScreeningReport& cold,
                        const ScreeningReport& warm,
                        std::vector<Divergence>& out) {
  const auto emit = [&](const std::string& what, const Conjunction& event) {
    out.push_back({name, Divergence::Kind::kContextMismatch, event,
                   "context reuse: " + what});
  };

  if (warm.conjunctions.size() != cold.conjunctions.size()) {
    emit("warm reports " + std::to_string(warm.conjunctions.size()) +
             " conjunctions, cold " + std::to_string(cold.conjunctions.size()),
         Conjunction{});
  } else {
    for (std::size_t i = 0; i < cold.conjunctions.size(); ++i) {
      const Conjunction& c = cold.conjunctions[i];
      const Conjunction& w = warm.conjunctions[i];
      if (w.sat_a != c.sat_a || w.sat_b != c.sat_b || w.tca != c.tca ||
          w.pca != c.pca) {
        emit(event_detail("warm conjunction differs from cold", w), w);
      }
    }
  }

  const auto stat = [&](const char* field, auto cold_value, auto warm_value) {
    if (warm_value == cold_value) return;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "stats.%s differs: warm %.17g vs cold %.17g",
                  field, static_cast<double>(warm_value),
                  static_cast<double>(cold_value));
    emit(buf, Conjunction{});
  };
  stat("candidates", cold.stats.candidates, warm.stats.candidates);
  stat("refinements", cold.stats.refinements, warm.stats.refinements);
  stat("pairs_examined", cold.stats.pairs_examined, warm.stats.pairs_examined);
  stat("candidate_set_growths", cold.stats.candidate_set_growths,
       warm.stats.candidate_set_growths);
  stat("total_samples", cold.stats.total_samples, warm.stats.total_samples);
  stat("rounds", cold.stats.rounds, warm.stats.rounds);
  stat("seconds_per_sample", cold.stats.seconds_per_sample,
       warm.stats.seconds_per_sample);
  stat("cell_size_km", cold.stats.cell_size_km, warm.stats.cell_size_km);
}

}  // namespace

const char* divergence_kind_name(Divergence::Kind kind) {
  switch (kind) {
    case Divergence::Kind::kMissed: return "missed";
    case Divergence::Kind::kSpurious: return "spurious";
    case Divergence::Kind::kPcaMismatch: return "pca-mismatch";
    case Divergence::Kind::kServiceMismatch: return "service-mismatch";
    case Divergence::Kind::kCounterViolation: return "counter-violation";
    case Divergence::Kind::kContextMismatch: return "context-mismatch";
  }
  return "unknown";
}

void RunStats::add(const CaseResult& result) {
  ++cases;
  if (!result.ok()) ++divergent_cases;
  divergences += result.divergences.size();
  oracle_events += result.oracle_events;
  must_find += result.must_find;
  near_misses += result.near_misses;
  for (const Divergence& d : result.divergences) {
    ++divergences_by_screener[d.screener];
  }
}

std::string RunStats::to_json() const {
  std::string json = "{";
  const auto field = [&](const char* key, std::size_t value, bool comma = true) {
    json += '"';
    json += key;
    json += "\":";
    json += std::to_string(value);
    if (comma) json += ',';
  };
  field("cases", cases);
  field("divergent_cases", divergent_cases);
  field("divergences", divergences);
  field("oracle_events", oracle_events);
  field("must_find", must_find);
  field("near_misses", near_misses);
  json += "\"by_screener\":{";
  bool first = true;
  for (const auto& [name, count] : divergences_by_screener) {
    if (!first) json += ',';
    first = false;
    json += '"' + name + "\":" + std::to_string(count);
  }
  json += "}}";
  return json;
}

CaseResult run_differential(const FuzzCase& fuzz_case,
                            const DifferentialOptions& options) {
  CaseResult result;
  const double threshold = fuzz_case.config.threshold_km;
  const DiffTolerances& tol = options.tolerances;

  const std::vector<Conjunction> oracle =
      oracle_conjunctions(fuzz_case.satellites, fuzz_case.config, options.oracle);
  for (const Conjunction& c : oracle) {
    if (c.pca <= threshold) ++result.oracle_events;
    if (c.pca <= threshold * (1.0 - tol.threshold_band)) {
      ++result.must_find;
    } else if (c.pca <= threshold * (1.0 + tol.threshold_band)) {
      ++result.near_misses;
    }
  }

  const bool counters = options.check_counters && obs::compiled();
  const bool was_enabled = obs::enabled();
  for (const Variant variant : options.variants) {
    if (counters) {
      obs::reset();
      obs::set_enabled(true);
    }
    const ScreeningReport report =
        screen(fuzz_case.satellites, fuzz_case.config, variant);
    if (counters) {
      obs::set_enabled(was_enabled);
      check_counter_invariants(variant_name(variant), variant, report,
                               obs::snapshot(), result.divergences);
    }
    diff_against_oracle(variant_name(variant), report.conjunctions, oracle,
                        threshold, tol, result.divergences);

    if (options.shared_context != nullptr) {
      // Warm rerun through the long-lived context: same inputs, arena
      // buffers carried over from every earlier screen of the run.
      const ScreeningReport warm =
          make_screener(variant, options.shared_context)
              ->screen(fuzz_case.satellites, fuzz_case.config);
      diff_context_reuse(variant_name(variant), report, warm,
                         result.divergences);
    }
  }

  if (options.check_service) {
    diff_service(fuzz_case, result.divergences);
  }
  return result;
}

}  // namespace scod::verify
