#include "verify/oracle.hpp"

#include <algorithm>
#include <mutex>

#include "filters/dense_scan.hpp"
#include "propagation/contour_solver.hpp"
#include "propagation/two_body.hpp"

namespace scod::verify {

std::vector<Conjunction> oracle_conjunctions(std::span<const Satellite> satellites,
                                             const ScreeningConfig& config,
                                             const OracleOptions& options) {
  const std::size_t n = satellites.size();
  std::vector<Conjunction> out;
  if (n < 2) return out;

  const ContourKeplerSolver solver;
  const TwoBodyPropagator propagator(
      std::vector<Satellite>(satellites.begin(), satellites.end()), solver);

  DenseScanOptions scan;
  scan.step = options.step;
  scan.refine = config.refine;
  const double record_below = config.threshold_km * options.slack;

  // Flatten the strict upper triangle so the pair loop parallelizes as one
  // dense index space: pair p -> (i, j), i < j.
  const std::size_t pairs = n * (n - 1) / 2;
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_thread_pool();

  std::mutex sink_mutex;
  pool.parallel_for_ranges(pairs, [&](std::size_t begin, std::size_t end) {
    std::vector<Conjunction> local;
    for (std::size_t p = begin; p < end; ++p) {
      // Invert p = i*n - i*(i+1)/2 + (j - i - 1) by walking rows; rows are
      // short (< n) and the propagation dominates, so the scan is cheap.
      std::size_t i = 0, row_start = 0;
      while (row_start + (n - 1 - i) <= p) {
        row_start += n - 1 - i;
        ++i;
      }
      const std::size_t j = i + 1 + (p - row_start);

      const auto encounters =
          scan_encounters(propagator, static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), config.t_begin,
                          config.t_end, scan);
      for (const Encounter& e : encounters) {
        if (e.pca <= record_below) {
          local.push_back({static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j), e.tca, e.pca});
        }
      }
    }
    if (!local.empty()) {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      out.insert(out.end(), local.begin(), local.end());
    }
  });

  // Same canonicalization the screeners apply: adjacent-bracket duplicates
  // of one physical minimum are merged, then sorted by (pair, tca).
  return merge_conjunctions(std::move(out), config.effective_merge_tolerance());
}

}  // namespace scod::verify
