#include "verify/adversarial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "orbit/anomaly.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "propagation/kepler_solver.hpp"
#include "propagation/two_body.hpp"
#include "spatial/cell.hpp"
#include "util/constants.hpp"

namespace scod::verify {

namespace {

/// Critical inclination: the J2 argument-of-perigee drift vanishes at
/// i = 63.43 deg; real constellations (Molniya, Tundra) cluster there.
constexpr double kCriticalInclination = 1.1071487177940904;  // atan(2) rad

KeplerElements shell_orbit(Rng& rng, double r0, double band) {
  KeplerElements el;
  el.semi_major_axis = r0 + rng.uniform(-band / 2.0, band / 2.0);
  el.eccentricity = rng.uniform(0.0, 2e-4);
  el.inclination = rng.uniform(0.2, kPi - 0.2);
  el.raan = rng.uniform(0.0, kTwoPi);
  el.arg_perigee = rng.uniform(0.0, kTwoPi);
  el.mean_anomaly = rng.uniform(0.0, kTwoPi);
  return el;
}

}  // namespace

const char* regime_name(OrbitRegime regime) {
  switch (regime) {
    case OrbitRegime::kBackgroundShell: return "background";
    case OrbitRegime::kNearCircular: return "near-circular";
    case OrbitRegime::kCriticallyInclined: return "critically-inclined";
    case OrbitRegime::kCoplanarPair: return "coplanar-pair";
    case OrbitRegime::kGrazingInterceptor: return "grazing-interceptor";
    case OrbitRegime::kCellBoundaryStraddler: return "cell-straddler";
    case OrbitRegime::kEpochEdgeInterceptor: return "epoch-edge";
  }
  return "unknown";
}

OrbitRegime regime_from_name(const std::string& name) {
  for (const OrbitRegime regime : kAllRegimes) {
    if (name == regime_name(regime)) return regime;
  }
  throw std::invalid_argument("verify: unknown orbit regime '" + name + "'");
}

Satellite make_interceptor(const KeplerElements& target, double t_star,
                           double offset_km, Rng& rng, std::uint32_t id) {
  const NewtonKeplerSolver solver;
  const std::vector<Satellite> one{{0, target}};
  const TwoBodyPropagator prop(one, solver);
  const Vec3 p = prop.position(0, t_star);
  const Vec3 p_hat = p.normalized();

  // Random plane containing the encounter point, rejected until it is
  // clearly non-coplanar with the target's plane.
  KeplerElements el;
  for (;;) {
    const Vec3 u{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 normal = p_hat.cross(u).normalized();
    if (normal.norm() < 0.5) continue;  // u parallel to p: retry

    el.semi_major_axis = p.norm() + offset_km;
    el.eccentricity = 1e-6;
    el.inclination = std::acos(std::clamp(normal.z, -1.0, 1.0));
    // orbit_normal() = (sin(raan) sin(i), -cos(raan) sin(i), cos(i)).
    el.raan = wrap_two_pi(std::atan2(normal.x, -normal.y));
    el.arg_perigee = 0.0;
    el.mean_anomaly = 0.0;
    if (plane_angle(el, target) < 0.1) continue;

    // True anomaly of the encounter direction within the new plane, then
    // back out the epoch mean anomaly that puts the object there at t_star.
    const Mat3 rot = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
    const Vec3 in_plane = rot.transposed() * p_hat;
    const double f = wrap_two_pi(std::atan2(in_plane.y, in_plane.x));
    const double m_at_t = true_to_mean(f, el.eccentricity);
    el.mean_anomaly = wrap_two_pi(m_at_t - mean_motion(el) * t_star);
    break;
  }
  return {id, el};
}

FuzzCase generate_case(const AdversarialConfig& config) {
  if (!(config.t_begin < config.t_end)) {
    throw std::invalid_argument("generate_case: empty time span");
  }
  Rng rng(config.seed);
  FuzzCase out;
  out.seed = config.seed;
  out.config.threshold_km = config.threshold_km;
  out.config.t_begin = config.t_begin;
  out.config.t_end = config.t_end;
  out.config.seconds_per_sample = config.seconds_per_sample;

  const double r0 = 7000.0;
  const double band = 12.0;
  std::uint32_t next_id = 0;
  const auto push = [&](const KeplerElements& el, OrbitRegime regime) {
    out.satellites.push_back({next_id++, el});
    out.regimes.push_back(regime);
  };

  // Background: dense near-circular shell so narrow that random node
  // misses land near the threshold on their own.
  for (std::size_t i = 0; i < config.background; ++i) {
    push(shell_orbit(rng, r0, band), OrbitRegime::kBackgroundShell);
  }

  const double span = config.t_end - config.t_begin;
  for (std::size_t k = 0; k < config.per_regime; ++k) {
    // Near-circular: eccentricity at the representable floor, where true,
    // eccentric and mean anomaly coincide and conversions can lose track.
    {
      KeplerElements el = shell_orbit(rng, r0, band);
      el.eccentricity = rng.uniform(0.0, 1e-5);
      push(el, OrbitRegime::kNearCircular);
    }

    // Critically inclined, in a narrow inclination band so several of them
    // share nearly-parallel planes.
    {
      KeplerElements el = shell_orbit(rng, r0, band);
      el.inclination = kCriticalInclination + rng.uniform(-1e-4, 1e-4);
      push(el, OrbitRegime::kCriticallyInclined);
    }

    // Coplanar pair: identical plane, radial separation below the
    // threshold, phase offset small enough that they shadow each other —
    // the coplanarity filter's special path must agree with the oracle.
    {
      KeplerElements lead = shell_orbit(rng, r0, band);
      lead.eccentricity = rng.uniform(0.0, 5e-5);
      KeplerElements trail = lead;
      trail.semi_major_axis += rng.uniform(-0.6, 0.6) * config.threshold_km;
      trail.mean_anomaly =
          wrap_two_pi(trail.mean_anomaly + rng.uniform(-3e-4, 3e-4));
      push(lead, OrbitRegime::kCoplanarPair);
      push(trail, OrbitRegime::kCoplanarPair);
    }

    // Grazing interceptor: PCA engineered into [0.9, 1.1] * threshold, the
    // band where tolerance handling decides found vs missed.
    {
      const std::size_t target = rng.uniform_index(out.satellites.size());
      const double t_star =
          config.t_begin + span * rng.uniform(0.15, 0.85);
      const double offset =
          config.threshold_km * rng.uniform(0.9, 1.1) *
          (rng.uniform() < 0.5 ? 1.0 : -1.0);
      const Satellite sat = make_interceptor(out.satellites[target].elements,
                                             t_star, offset, rng, next_id);
      push(sat.elements, OrbitRegime::kGrazingInterceptor);
    }

    // Cell-boundary straddler: a circular equatorial orbit whose position
    // at a sample instant sits within metres of a grid-cell face, plus a
    // coplanar grazer whose perigee is parked a few km outside the same
    // face at the same instant. Around t_s the pair is radially separated
    // straight across the face — same y/z cells, adjacent x cells — so the
    // grid only sees it through the {1, 0, 0} neighbour offset, making any
    // defect in the neighbour-cell scan visible as a missed event.
    {
      const double cell =
          grid_cell_size(config.threshold_km, config.seconds_per_sample);
      // A cell face near the shell radius: x* = j * cell - half_extent.
      const double j = std::ceil((kSimulationHalfExtent + r0) / cell);
      const double face = j * cell - kSimulationHalfExtent;
      KeplerElements el;
      el.semi_major_axis = face + rng.uniform(-5e-3, 5e-3);
      el.eccentricity = 0.0;
      el.inclination = rng.uniform(0.0, 1e-4);
      el.raan = 0.0;
      el.arg_perigee = 0.0;
      // Puts the object on the +x axis (the cell face) exactly at the
      // sample instant t_s.
      const double t_s =
          config.t_begin +
          config.seconds_per_sample *
              std::floor(span / config.seconds_per_sample *
                         rng.uniform(0.2, 0.8));
      el.mean_anomaly = wrap_two_pi(-mean_motion(el) * t_s);
      push(el, OrbitRegime::kCellBoundaryStraddler);

      KeplerElements grazer;
      grazer.eccentricity = 0.01;
      grazer.semi_major_axis =
          (face + config.threshold_km * rng.uniform(0.3, 0.7)) /
          (1.0 - grazer.eccentricity);
      grazer.inclination = rng.uniform(0.0, 1e-4);
      grazer.raan = 0.0;
      grazer.arg_perigee = 0.0;  // perigee on the +x axis, just outside
      grazer.mean_anomaly = wrap_two_pi(-mean_motion(grazer) * t_s);
      push(grazer, OrbitRegime::kCellBoundaryStraddler);
    }

    // Epoch-edge interceptors: TCAs within seconds of the span boundaries,
    // where refinement intervals are clamped and minima may be half-cut.
    {
      const std::size_t target = rng.uniform_index(out.satellites.size());
      const bool at_start = rng.uniform() < 0.5;
      const double t_star = at_start
                                ? config.t_begin + rng.uniform(1.0, 30.0)
                                : config.t_end - rng.uniform(1.0, 30.0);
      const Satellite sat = make_interceptor(
          out.satellites[target].elements, t_star,
          config.threshold_km * rng.uniform(0.3, 0.8), rng, next_id);
      push(sat.elements, OrbitRegime::kEpochEdgeInterceptor);
    }
  }

  // Randomized service delta: small maneuvers on a fraction of the
  // catalog, a removal, and an add on a fresh id — the incremental path
  // must reproduce a from-scratch screen after applying it.
  const std::size_t updates = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.delta_fraction *
                                  static_cast<double>(out.satellites.size())));
  std::vector<std::uint8_t> touched(out.satellites.size(), 0);
  for (std::size_t k = 0; k < updates; ++k) {
    const std::size_t idx = rng.uniform_index(out.satellites.size());
    if (touched[idx]) continue;
    touched[idx] = 1;
    Satellite sat = out.satellites[idx];
    sat.elements.mean_anomaly =
        wrap_two_pi(sat.elements.mean_anomaly + rng.uniform(-0.05, 0.05));
    sat.elements.raan = wrap_two_pi(sat.elements.raan + rng.uniform(-0.02, 0.02));
    out.delta_updates.push_back(sat);
  }
  {
    const std::size_t idx = rng.uniform_index(out.satellites.size());
    if (!touched[idx]) out.delta_removals.push_back(out.satellites[idx].id);
  }
  {
    Satellite sat = out.satellites[rng.uniform_index(out.satellites.size())];
    sat.id = 1000000 + static_cast<std::uint32_t>(rng.uniform_index(1000));
    sat.elements.raan = rng.uniform(0.0, kTwoPi);
    sat.elements.mean_anomaly = rng.uniform(0.0, kTwoPi);
    out.delta_adds.push_back(sat);
  }
  return out;
}

}  // namespace scod::verify
