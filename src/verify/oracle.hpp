#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "parallel/thread_pool.hpp"

namespace scod::verify {

/// Options of the reference oracle.
struct OracleOptions {
  /// Dense sampling step [s]. Must be well below half the shortest
  /// encounter-signal variation; 2 s resolves LEO flybys comfortably.
  double step = 2.0;
  /// Events are recorded up to slack * threshold so the differential
  /// runner can classify near-misses and check soundness of everything a
  /// screener reports, not only sub-threshold hits.
  double slack = 1.3;
  ThreadPool* pool = nullptr;  ///< nullptr: process-global pool
};

/// Dense-time-scan reference oracle: exhaustively scans every satellite
/// pair with filters/dense_scan (sampling + Brent bracketing) and reports
/// all encounters with PCA <= slack * threshold, canonically sorted.
///
/// Deliberately independent of the structures under test: no grids, no
/// hash sets, no orbital filters, no candidate machinery — just the
/// propagator and a 1-D minimum search per pair, the same construction the
/// paper's Section V-D accuracy study (and the reference oracles of Bak &
/// Hobbs and Visser) trusts as ground truth.
std::vector<Conjunction> oracle_conjunctions(std::span<const Satellite> satellites,
                                             const ScreeningConfig& config,
                                             const OracleOptions& options = {});

}  // namespace scod::verify
