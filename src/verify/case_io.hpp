#pragma once

#include <string>
#include <vector>

#include "verify/adversarial.hpp"

namespace scod::verify {

/// Saves a case as a replayable text file (`scod_fuzz --case FILE`). The
/// format is line-based and hand-editable; doubles are printed with 17
/// significant digits so a replay reproduces the run bit-exactly.
void save_case(const std::string& path, const FuzzCase& fuzz_case);

/// Loads a case saved by save_case(). Throws std::runtime_error with the
/// offending path:line on malformed input.
FuzzCase load_case(const std::string& path);

/// All `*.case` files directly under `dir`, sorted by filename — the
/// regression-corpus listing (`scod_fuzz --corpus DIR`).
std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace scod::verify
