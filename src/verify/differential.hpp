#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/screen.hpp"
#include "verify/adversarial.hpp"
#include "verify/oracle.hpp"

namespace scod::verify {

/// Paper-consistent matching tolerances of the differential runner.
struct DiffTolerances {
  /// TCA matching window [s]: events of one pair within this window are
  /// the same physical minimum (candidates from adjacent samples).
  double tca_window = 5.0;
  /// Matched events must agree in PCA to this [km]; both sides refine the
  /// same smooth objective with the same Brent tolerance, so genuine
  /// agreement is far tighter.
  double pca_tolerance = 0.05;
  /// Band around the threshold, as a fraction of it, where an event is a
  /// "near-miss": oracle events inside the band are not required of the
  /// screeners (refinement jitter legitimately flips them across the
  /// threshold) but are counted for trending.
  double threshold_band = 0.01;
};

/// One confirmed disagreement between a screener and the reference.
struct Divergence {
  std::string screener;  ///< "grid", "hybrid", "legacy", "sieve", "service"
  enum class Kind : std::uint8_t {
    kMissed,            ///< oracle event below the band, screener silent
    kSpurious,          ///< screener event with no oracle counterpart
    kPcaMismatch,       ///< matched event, PCA disagreement beyond tolerance
    kServiceMismatch,   ///< incremental report != from-scratch reference
    kCounterViolation,  ///< telemetry funnel invariant broken (src/obs)
    kContextMismatch,   ///< warm-context rerun != cold report (state leak)
  } kind = Kind::kMissed;
  /// The event at issue (oracle's for kMissed, screener's otherwise), in
  /// dense-index space; for kServiceMismatch the indices are catalog ids.
  Conjunction event;
  std::string detail;  ///< human-readable one-liner for reports
};

const char* divergence_kind_name(Divergence::Kind kind);

/// Outcome of screening one case through every variant.
struct CaseResult {
  std::size_t oracle_events = 0;  ///< oracle events with PCA <= threshold
  std::size_t must_find = 0;      ///< oracle events below the near-miss band
  std::size_t near_misses = 0;    ///< oracle events within the band
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Aggregate counters across a fuzz run, printed as JSON for CI trending.
struct RunStats {
  std::size_t cases = 0;
  std::size_t divergent_cases = 0;
  std::size_t divergences = 0;
  std::size_t oracle_events = 0;
  std::size_t must_find = 0;
  std::size_t near_misses = 0;
  std::map<std::string, std::size_t> divergences_by_screener;

  void add(const CaseResult& result);
  std::string to_json() const;
};

/// Configuration of the differential runner.
struct DifferentialOptions {
  DiffTolerances tolerances;
  OracleOptions oracle;
  /// Variants screened against the oracle; all four by default.
  std::vector<Variant> variants = {Variant::kGrid, Variant::kHybrid,
                                   Variant::kLegacy, Variant::kSieve};
  /// Also run the case's randomized delta through the incremental service
  /// and require exact agreement with the from-scratch reference.
  bool check_service = true;
  /// Validate the src/obs telemetry funnel invariants (counter
  /// conservation, filter monotonicity) around every variant screen.
  /// Silently skipped in builds with SCOD_TELEMETRY=OFF.
  bool check_counters = true;
  /// Context-reuse mode: when set, every variant is screened a second time
  /// through this long-lived context (whose arena accumulates state across
  /// cases) and the warm report must be bit-identical to the cold one —
  /// any divergence is a state leak between screens (kContextMismatch).
  ScreeningContext* shared_context = nullptr;
};

/// Screens `fuzz_case` through every configured variant and the incremental
/// service, diffs each conjunction set against the dense-scan oracle (the
/// service against its own from-scratch reference), and reports every
/// divergence. A passing case returns ok() == true.
CaseResult run_differential(const FuzzCase& fuzz_case,
                            const DifferentialOptions& options = {});

}  // namespace scod::verify
