#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "orbit/elements.hpp"
#include "util/rng.hpp"

namespace scod::verify {

/// Orbit regimes the adversarial generator samples. Each one targets a
/// known soft spot of the screening pipeline: angle-convention degeneracies
/// (near-circular, critically inclined), filter-chain special cases
/// (coplanar pairs), tolerance boundaries (grazing-threshold PCAs), grid
/// geometry (cell-boundary straddlers at sample instants) and span
/// boundaries (TCAs at the epoch edges).
enum class OrbitRegime : std::uint8_t {
  kBackgroundShell,       ///< dense near-circular shell traffic
  kNearCircular,          ///< e below 1e-5: anomaly conventions degenerate
  kCriticallyInclined,    ///< i = 63.43 deg (frozen argument of perigee)
  kCoplanarPair,          ///< same plane, small radial separation
  kGrazingInterceptor,    ///< engineered PCA straddling the threshold
  kCellBoundaryStraddler, ///< sits on a grid-cell face at a sample instant
  kEpochEdgeInterceptor,  ///< engineered TCA near t_begin / t_end
};

inline constexpr std::array<OrbitRegime, 7> kAllRegimes = {
    OrbitRegime::kBackgroundShell,       OrbitRegime::kNearCircular,
    OrbitRegime::kCriticallyInclined,    OrbitRegime::kCoplanarPair,
    OrbitRegime::kGrazingInterceptor,    OrbitRegime::kCellBoundaryStraddler,
    OrbitRegime::kEpochEdgeInterceptor,
};

const char* regime_name(OrbitRegime regime);

/// Parses a name produced by regime_name(); throws std::invalid_argument
/// on an unknown name (case files are hand-editable, fail loudly).
OrbitRegime regime_from_name(const std::string& name);

/// One self-contained differential-testing case: a catalog, the screening
/// configuration, and a randomized catalog delta for the incremental
/// service check. Fully deterministic in the generator seed, and exactly
/// reproducible from a saved case file (verify/case_io.hpp).
struct FuzzCase {
  std::uint64_t seed = 0;           ///< generator seed (0 for loaded cases)
  ScreeningConfig config;           ///< threshold / span / sample period
  std::vector<Satellite> satellites;
  /// Parallel to `satellites`: which regime produced each object.
  std::vector<OrbitRegime> regimes;

  /// Randomized service delta, applied after the baseline pass: element
  /// updates of existing ids, removals, and adds with fresh ids.
  std::vector<Satellite> delta_updates;
  std::vector<std::uint32_t> delta_removals;
  std::vector<Satellite> delta_adds;

  std::size_t size() const { return satellites.size(); }
};

/// Knobs of the adversarial case generator.
struct AdversarialConfig {
  std::uint64_t seed = 1;
  /// Background shell objects (realistic traffic the regimes hide in).
  std::size_t background = 24;
  /// Engineered objects (or pairs) per adversarial regime.
  std::size_t per_regime = 2;
  double threshold_km = 5.0;
  double t_begin = 0.0;
  double t_end = 3600.0;
  /// Sample period the cell-boundary straddlers aim their geometry at;
  /// also pinned into the case config so the grid geometry is identical
  /// across the service's baseline and incremental passes.
  double seconds_per_sample = 4.0;
  /// Fraction of the catalog touched by the randomized service delta.
  double delta_fraction = 0.1;
};

/// Generates one adversarial case: a shell of background traffic plus
/// `per_regime` engineered objects for every adversarial regime, and a
/// randomized delta. Deterministic in `config.seed`.
FuzzCase generate_case(const AdversarialConfig& config);

/// Builds a near-circular satellite whose orbit passes within ~|offset_km|
/// of `target`'s position at time `t_star`, in a plane that is NOT
/// coplanar with the target's — the deterministic way to place a true
/// conjunction at a known time and depth.
Satellite make_interceptor(const KeplerElements& target, double t_star,
                           double offset_km, Rng& rng, std::uint32_t id);

}  // namespace scod::verify
