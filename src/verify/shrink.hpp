#pragma once

#include <cstddef>
#include <functional>

#include "verify/adversarial.hpp"

namespace scod::verify {

/// Returns true when the (reduced) case still exhibits the failure being
/// minimized — typically `!run_differential(c).ok()`.
using DivergencePredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  /// Budget on predicate evaluations; each one re-screens the case, so the
  /// shrink cost is bounded and predictable.
  std::size_t max_checks = 500;
  /// Try canonicalizing elements (zero eccentricity, snap inclinations,
  /// zero node/perigee angles) once the population is minimal.
  bool simplify_elements = true;
  /// Try narrowing [t_begin, t_end] around the surviving activity.
  bool narrow_window = true;
};

struct ShrinkResult {
  FuzzCase minimized;
  std::size_t initial_objects = 0;
  std::size_t checks = 0;  ///< predicate evaluations spent
};

/// Greedy delta-debugging minimizer: repeatedly drops object chunks
/// (halving the chunk size down to single objects), narrows the time
/// window, and simplifies the surviving elements — accepting every
/// reduction for which `still_fails` holds. The returned case is 1-minimal
/// in objects (no single removal keeps the failure) unless the check
/// budget runs out first.
///
/// The case's service delta shrinks with the population: updates and
/// removals referencing dropped objects are discarded.
ShrinkResult shrink_case(FuzzCase failing, const DivergencePredicate& still_fails,
                         const ShrinkOptions& options = {});

}  // namespace scod::verify
