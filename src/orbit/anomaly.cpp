#include "orbit/anomaly.hpp"

#include <cmath>

#include "util/constants.hpp"

namespace scod {

double wrap_two_pi(double angle) {
  angle = std::fmod(angle, kTwoPi);
  if (angle < 0.0) angle += kTwoPi;
  return angle;
}

double wrap_pi(double angle) {
  angle = wrap_two_pi(angle);
  if (angle > kPi) angle -= kTwoPi;
  return angle;
}

double eccentric_to_true(double eccentric_anomaly, double eccentricity) {
  // tan(f/2) = sqrt((1+e)/(1-e)) * tan(E/2); the atan2 form below is
  // quadrant-safe for all E.
  const double e = eccentricity;
  const double cos_e = std::cos(eccentric_anomaly);
  const double sin_e = std::sin(eccentric_anomaly);
  const double f = std::atan2(std::sqrt(1.0 - e * e) * sin_e, cos_e - e);
  return wrap_two_pi(f);
}

double true_to_eccentric(double true_anomaly, double eccentricity) {
  const double e = eccentricity;
  const double cos_f = std::cos(true_anomaly);
  const double sin_f = std::sin(true_anomaly);
  const double big_e = std::atan2(std::sqrt(1.0 - e * e) * sin_f, cos_f + e);
  return wrap_two_pi(big_e);
}

double eccentric_to_mean(double eccentric_anomaly, double eccentricity) {
  return wrap_two_pi(eccentric_anomaly - eccentricity * std::sin(eccentric_anomaly));
}

double true_to_mean(double true_anomaly, double eccentricity) {
  return eccentric_to_mean(true_to_eccentric(true_anomaly, eccentricity), eccentricity);
}

}  // namespace scod
