#include "orbit/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/frames.hpp"
#include "util/constants.hpp"

namespace scod {

double apogee_radius(const KeplerElements& el) {
  return el.semi_major_axis * (1.0 + el.eccentricity);
}

double perigee_radius(const KeplerElements& el) {
  return el.semi_major_axis * (1.0 - el.eccentricity);
}

double orbital_period(const KeplerElements& el) {
  const double a = el.semi_major_axis;
  return kTwoPi * std::sqrt(a * a * a / kMuEarth);
}

double mean_motion(const KeplerElements& el) {
  const double a = el.semi_major_axis;
  return std::sqrt(kMuEarth / (a * a * a));
}

double semi_latus_rectum(const KeplerElements& el) {
  return el.semi_major_axis * (1.0 - el.eccentricity * el.eccentricity);
}

double radius_at_true_anomaly(const KeplerElements& el, double true_anomaly) {
  return semi_latus_rectum(el) / (1.0 + el.eccentricity * std::cos(true_anomaly));
}

double speed_at_radius(const KeplerElements& el, double radius) {
  return std::sqrt(kMuEarth * (2.0 / radius - 1.0 / el.semi_major_axis));
}

double max_speed(const KeplerElements& el) {
  return speed_at_radius(el, perigee_radius(el));
}

double min_speed(const KeplerElements& el) {
  return speed_at_radius(el, apogee_radius(el));
}

Vec3 normal_of(const KeplerElements& el) {
  return orbit_normal(el.inclination, el.raan);
}

double plane_angle(const KeplerElements& a, const KeplerElements& b) {
  const double c = std::clamp(normal_of(a).dot(normal_of(b)), -1.0, 1.0);
  // Opposite normals describe the same geometric plane, so fold into
  // [0, pi/2].
  return std::acos(std::abs(c));
}

bool is_valid_orbit(const KeplerElements& el) {
  return el.semi_major_axis > 0.0 && el.eccentricity >= 0.0 && el.eccentricity < 1.0 &&
         perigee_radius(el) > kEarthRadius;
}

}  // namespace scod
