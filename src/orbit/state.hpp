#pragma once

#include "orbit/elements.hpp"
#include "util/vec3.hpp"

namespace scod {

/// Cartesian state in the Earth-centered inertial frame.
struct StateVector {
  Vec3 position;  ///< [km]
  Vec3 velocity;  ///< [km/s]
};

/// Position and velocity at a given true anomaly. This is the closed-form
/// part of propagation; solving Kepler's equation for the anomaly is the
/// propagator's job (src/propagation/).
StateVector state_at_true_anomaly(const KeplerElements& el, double true_anomaly);

/// Position only (saves the velocity work in the insertion hot loop).
Vec3 position_at_true_anomaly(const KeplerElements& el, double true_anomaly);

/// Recovers Keplerian elements from a Cartesian state (RV -> COE). Used for
/// round-trip validation and for ingesting externally supplied states.
/// For near-circular or near-equatorial orbits the angle decomposition is
/// degenerate; this implementation follows the usual convention of
/// measuring the undefined angles from the reference directions.
KeplerElements elements_from_state(const StateVector& state);

}  // namespace scod
