#pragma once

#include "orbit/elements.hpp"
#include "util/vec3.hpp"

namespace scod {

/// Scalar orbit geometry derived from Keplerian elements. These quantities
/// feed the classical filter chain (apogee/perigee bands), the cell-size
/// and interval logic of the grid variants, and the population generator.

/// Apogee radius r_a = a (1 + e) [km].
double apogee_radius(const KeplerElements& el);

/// Perigee radius r_p = a (1 - e) [km].
double perigee_radius(const KeplerElements& el);

/// Orbital period T = 2 pi sqrt(a^3 / mu) [s].
double orbital_period(const KeplerElements& el);

/// Mean motion n = sqrt(mu / a^3) [rad/s].
double mean_motion(const KeplerElements& el);

/// Semi-latus rectum p = a (1 - e^2) [km].
double semi_latus_rectum(const KeplerElements& el);

/// Radius at a given true anomaly, r = p / (1 + e cos f) [km].
double radius_at_true_anomaly(const KeplerElements& el, double true_anomaly);

/// Orbital speed at a given radius from the vis-viva equation [km/s].
double speed_at_radius(const KeplerElements& el, double radius);

/// Maximum orbital speed (at perigee) [km/s]; bounds how far the object can
/// travel between two samples, which the PCA search-interval logic uses.
double max_speed(const KeplerElements& el);

/// Minimum orbital speed (at apogee) [km/s].
double min_speed(const KeplerElements& el);

/// Unit normal of the orbital plane in ECI coordinates.
Vec3 normal_of(const KeplerElements& el);

/// Angle between the orbital planes of two orbits, in [0, pi/2]; two orbits
/// are treated as coplanar when this angle (or its complement through
/// opposite normals) is below a tolerance.
double plane_angle(const KeplerElements& a, const KeplerElements& b);

/// True whether the elements describe a bound, elliptic, physically valid
/// orbit with perigee above the Earth's surface.
bool is_valid_orbit(const KeplerElements& el);

}  // namespace scod
