#pragma once

#include "orbit/elements.hpp"
#include "util/vec3.hpp"

namespace scod {

/// Row-major 3x3 rotation matrix.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  Vec3 operator*(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  Mat3 transposed() const {
    Mat3 t;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) t.m[r][c] = m[c][r];
    return t;
  }
};

/// Rotation from the perifocal frame (x toward perigee, z along the orbit
/// normal) to the Earth-centered inertial frame, i.e. the composition
/// R3(-raan) * R1(-i) * R3(-argp). Fig. 8 of the paper shows the angles.
Mat3 perifocal_to_eci(double inclination, double raan, double arg_perigee);

/// Unit normal of the orbital plane in ECI coordinates.
Vec3 orbit_normal(double inclination, double raan);

}  // namespace scod
