#pragma once

namespace scod {

/// Conversions between the three anomalies of an elliptic orbit.
/// The iterative direction (mean -> eccentric, Kepler's equation) lives in
/// src/propagation/ where the paper's Contour solver and the Newton
/// baseline are implemented; this header holds the closed-form directions.

/// Wraps an angle into [0, 2*pi).
double wrap_two_pi(double angle);

/// Wraps an angle into (-pi, pi].
double wrap_pi(double angle);

/// Eccentric -> true anomaly.
double eccentric_to_true(double eccentric_anomaly, double eccentricity);

/// True -> eccentric anomaly.
double true_to_eccentric(double true_anomaly, double eccentricity);

/// Eccentric -> mean anomaly (Kepler's equation, forward direction).
double eccentric_to_mean(double eccentric_anomaly, double eccentricity);

/// True -> mean anomaly (composition of the two above).
double true_to_mean(double true_anomaly, double eccentricity);

}  // namespace scod
