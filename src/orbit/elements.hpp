#pragma once

#include <cstdint>

namespace scod {

/// Classical Keplerian orbital elements (Table II of the paper).
///
/// Angles in radians, lengths in km. `mean_anomaly` is the mean anomaly at
/// the simulation epoch t = 0; the propagator advances it with the mean
/// motion and solves Kepler's equation to recover the position.
struct KeplerElements {
  double semi_major_axis = 0.0;  ///< a [km]
  double eccentricity = 0.0;     ///< e, in [0, 1) (elliptic orbits only)
  double inclination = 0.0;      ///< i [rad], in [0, pi]
  double raan = 0.0;             ///< right ascension of ascending node [rad]
  double arg_perigee = 0.0;      ///< argument of perigee omega [rad]
  double mean_anomaly = 0.0;     ///< M at epoch [rad]

  constexpr bool operator==(const KeplerElements&) const = default;
};

/// One tracked object: an id plus its osculating elements at epoch.
/// "Satellite" follows the paper's terminology; debris objects use the same
/// representation.
struct Satellite {
  std::uint32_t id = 0;
  KeplerElements elements;
};

}  // namespace scod
