#include "orbit/frames.hpp"

#include <cmath>

namespace scod {

Mat3 perifocal_to_eci(double inclination, double raan, double arg_perigee) {
  const double ci = std::cos(inclination), si = std::sin(inclination);
  const double co = std::cos(raan), so = std::sin(raan);
  const double cw = std::cos(arg_perigee), sw = std::sin(arg_perigee);

  Mat3 r;
  r.m[0][0] = co * cw - so * sw * ci;
  r.m[0][1] = -co * sw - so * cw * ci;
  r.m[0][2] = so * si;
  r.m[1][0] = so * cw + co * sw * ci;
  r.m[1][1] = -so * sw + co * cw * ci;
  r.m[1][2] = -co * si;
  r.m[2][0] = sw * si;
  r.m[2][1] = cw * si;
  r.m[2][2] = ci;
  return r;
}

Vec3 orbit_normal(double inclination, double raan) {
  const double si = std::sin(inclination);
  return {std::sin(raan) * si, -std::cos(raan) * si, std::cos(inclination)};
}

}  // namespace scod
