#include "orbit/state.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/anomaly.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "util/constants.hpp"

namespace scod {

StateVector state_at_true_anomaly(const KeplerElements& el, double true_anomaly) {
  const double p = semi_latus_rectum(el);
  const double r = p / (1.0 + el.eccentricity * std::cos(true_anomaly));
  const double cf = std::cos(true_anomaly);
  const double sf = std::sin(true_anomaly);

  const Vec3 pos_pf{r * cf, r * sf, 0.0};
  const double vf = std::sqrt(kMuEarth / p);
  const Vec3 vel_pf{-vf * sf, vf * (el.eccentricity + cf), 0.0};

  const Mat3 rot = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
  return {rot * pos_pf, rot * vel_pf};
}

Vec3 position_at_true_anomaly(const KeplerElements& el, double true_anomaly) {
  const double p = semi_latus_rectum(el);
  const double r = p / (1.0 + el.eccentricity * std::cos(true_anomaly));
  const Vec3 pos_pf{r * std::cos(true_anomaly), r * std::sin(true_anomaly), 0.0};
  return perifocal_to_eci(el.inclination, el.raan, el.arg_perigee) * pos_pf;
}

KeplerElements elements_from_state(const StateVector& state) {
  const Vec3& r_vec = state.position;
  const Vec3& v_vec = state.velocity;
  const double r = r_vec.norm();
  const double v2 = v_vec.norm2();

  const Vec3 h_vec = r_vec.cross(v_vec);
  const double h = h_vec.norm();
  const Vec3 n_vec = Vec3{0, 0, 1}.cross(h_vec);  // node line
  const double n = n_vec.norm();

  const Vec3 e_vec = (r_vec * (v2 - kMuEarth / r) - v_vec * r_vec.dot(v_vec)) / kMuEarth;
  const double e = e_vec.norm();

  const double energy = v2 / 2.0 - kMuEarth / r;
  KeplerElements el;
  el.semi_major_axis = -kMuEarth / (2.0 * energy);
  el.eccentricity = e;
  el.inclination = std::acos(std::clamp(h_vec.z / h, -1.0, 1.0));

  constexpr double kTiny = 1e-11;

  if (n > kTiny) {
    el.raan = std::acos(std::clamp(n_vec.x / n, -1.0, 1.0));
    if (n_vec.y < 0.0) el.raan = kTwoPi - el.raan;
  } else {
    el.raan = 0.0;  // equatorial orbit: node undefined, use vernal equinox
  }

  if (e > kTiny && n > kTiny) {
    el.arg_perigee = std::acos(std::clamp(n_vec.dot(e_vec) / (n * e), -1.0, 1.0));
    if (e_vec.z < 0.0) el.arg_perigee = kTwoPi - el.arg_perigee;
  } else if (e > kTiny) {
    // Equatorial elliptic: measure perigee from the x axis.
    el.arg_perigee = std::acos(std::clamp(e_vec.x / e, -1.0, 1.0));
    if (e_vec.y < 0.0) el.arg_perigee = kTwoPi - el.arg_perigee;
  } else {
    el.arg_perigee = 0.0;  // circular: perigee undefined
  }

  double true_anomaly;
  if (e > kTiny) {
    true_anomaly = std::acos(std::clamp(e_vec.dot(r_vec) / (e * r), -1.0, 1.0));
    if (r_vec.dot(v_vec) < 0.0) true_anomaly = kTwoPi - true_anomaly;
  } else if (n > kTiny) {
    // Circular inclined: argument of latitude from the ascending node.
    true_anomaly = std::acos(std::clamp(n_vec.dot(r_vec) / (n * r), -1.0, 1.0));
    if (r_vec.z < 0.0) true_anomaly = kTwoPi - true_anomaly;
  } else {
    // Circular equatorial: true longitude from the x axis.
    true_anomaly = std::acos(std::clamp(r_vec.x / r, -1.0, 1.0));
    if (r_vec.y < 0.0) true_anomaly = kTwoPi - true_anomaly;
  }

  el.mean_anomaly = true_to_mean(true_anomaly, e);
  return el;
}

}  // namespace scod
