#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/stopwatch.hpp"

namespace scod {

/// devicesim: a CPU-hosted simulation of the GPU execution model.
///
/// The paper's fastest variants run as CUDA kernels on an RTX 3090 with one
/// GPU thread per (satellite, sample-time) tuple. This environment has no
/// GPU, so — per the substitution policy in DESIGN.md — we reproduce the
/// *execution model* instead: explicit device memory with a capacity limit,
/// host<->device transfers with byte/bandwidth accounting, and kernel
/// launches over a (blocks x threads-per-block) index space executed by a
/// thread pool. The kernels themselves are ordinary C++ functors shared
/// with the CPU path, so the data-parallel decomposition, the CAS traffic
/// on the shared hash map, and the memory-capacity-driven parameter
/// adjustments (Section V-B) are all exercised exactly as on a real device.

/// Thrown when an allocation exceeds the simulated device memory capacity.
/// The screener catches this condition indirectly by consulting
/// `Device::memory_free()` when sizing grids, mirroring the paper's
/// automatic seconds-per-sample reduction when the conjunction hash map
/// does not fit into the 24 GB of the RTX 3090.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(const std::string& what) : std::runtime_error(what) {}
};

/// Static description of the simulated device.
struct DeviceProperties {
  std::string name = "scod devicesim";
  /// Simulated device memory capacity in bytes (default 4 GiB so the
  /// capacity-driven behaviour of Fig. 10c is reachable at laptop scale).
  std::uint64_t memory_bytes = 4ull << 30;
  std::uint32_t max_threads_per_block = 1024;
  /// Modelled PCIe transfer bandwidth [bytes/s] used for the accounted
  /// (not wall-clock) transfer cost; ~16 GB/s matches PCIe 4.0 x16.
  double transfer_bandwidth = 16e9;
  /// Fixed modelled overhead per kernel launch [s].
  double launch_overhead = 5e-6;
};

/// Cumulative accounting of device activity; reset with Device::reset_stats().
struct DeviceStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes_in_use = 0;
  std::uint64_t bytes_peak = 0;
  std::uint64_t h2d_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernels_launched = 0;
  double kernel_seconds = 0.0;

  /// Transfer time implied by the modelled bandwidth; the paper reports
  /// allocation+transfer as ~3% of total GPU time on average.
  double modelled_transfer_seconds(const DeviceProperties& props) const {
    return static_cast<double>(h2d_bytes + d2h_bytes) / props.transfer_bandwidth;
  }
};

template <typename T>
class DeviceBuffer;

class Device {
 public:
  explicit Device(DeviceProperties props = {}, ThreadPool* pool = nullptr);

  const DeviceProperties& properties() const { return props_; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats();

  std::uint64_t memory_used() const { return stats_.bytes_in_use; }
  std::uint64_t memory_free() const { return props_.memory_bytes - stats_.bytes_in_use; }

  /// Allocates an uninitialized device buffer of `count` elements.
  /// Throws DeviceOutOfMemory when the simulated capacity is exceeded.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count);

  template <typename T>
  void copy_to_device(DeviceBuffer<T>& dst, const T* src, std::size_t count);

  template <typename T>
  void copy_to_host(T* dst, const DeviceBuffer<T>& src, std::size_t count);

  /// Launches `kernel(global_index)` for every global index in
  /// [0, total_threads). Blocks of `block_size` consecutive indices are the
  /// unit of scheduling, matching the CUDA grid/block decomposition; blocks
  /// run concurrently and in unspecified order, so kernels must use the
  /// same synchronization (atomics) they would need on a real device.
  template <typename Kernel>
  void launch(std::size_t total_threads, std::size_t block_size, Kernel&& kernel);

 private:
  template <typename T>
  friend class DeviceBuffer;

  void account_alloc(std::uint64_t bytes);
  void account_free(std::uint64_t bytes);

  DeviceProperties props_;
  ThreadPool* pool_;
  DeviceStats stats_;
};

/// Owning handle to simulated device memory. Host code must not touch the
/// contents directly — use Device::copy_to_device / copy_to_host, exactly
/// as with cudaMemcpy. Kernels receive raw pointers via device_ptr().
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Device-side pointer for kernel arguments.
  T* device_ptr() { return data_.data(); }
  const T* device_ptr() const { return data_.data(); }

 private:
  friend class Device;

  DeviceBuffer(Device* device, std::size_t count) : device_(device), data_(count) {}

  void swap(DeviceBuffer& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(data_, other.data_);
  }

  void release() {
    if (device_ != nullptr && !data_.empty()) {
      device_->account_free(data_.size() * sizeof(T));
    }
    device_ = nullptr;
    data_.clear();
    data_.shrink_to_fit();
  }

  Device* device_ = nullptr;
  std::vector<T> data_;
};

template <typename T>
DeviceBuffer<T> Device::alloc(std::size_t count) {
  account_alloc(static_cast<std::uint64_t>(count) * sizeof(T));
  return DeviceBuffer<T>(this, count);
}

template <typename T>
void Device::copy_to_device(DeviceBuffer<T>& dst, const T* src, std::size_t count) {
  if (count > dst.size()) throw std::out_of_range("copy_to_device: buffer too small");
  std::copy(src, src + count, dst.data_.begin());
  stats_.h2d_transfers += 1;
  stats_.h2d_bytes += static_cast<std::uint64_t>(count) * sizeof(T);
}

template <typename T>
void Device::copy_to_host(T* dst, const DeviceBuffer<T>& src, std::size_t count) {
  if (count > src.size()) throw std::out_of_range("copy_to_host: buffer too small");
  std::copy(src.data_.begin(), src.data_.begin() + static_cast<std::ptrdiff_t>(count), dst);
  stats_.d2h_transfers += 1;
  stats_.d2h_bytes += static_cast<std::uint64_t>(count) * sizeof(T);
}

template <typename Kernel>
void Device::launch(std::size_t total_threads, std::size_t block_size, Kernel&& kernel) {
  if (block_size == 0 || block_size > props_.max_threads_per_block)
    throw std::invalid_argument("Device::launch: invalid block size");
  stats_.kernels_launched += 1;
  if (total_threads == 0) return;
  const std::size_t blocks = (total_threads + block_size - 1) / block_size;
  Stopwatch watch;
  pool_->parallel_for(
      blocks,
      [&](std::size_t block) {
        const std::size_t begin = block * block_size;
        const std::size_t end = std::min(begin + block_size, total_threads);
        for (std::size_t i = begin; i < end; ++i) kernel(i);
      },
      /*grain=*/1);
  stats_.kernel_seconds += watch.seconds() + props_.launch_overhead;
}

}  // namespace scod
