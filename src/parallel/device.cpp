#include "parallel/device.hpp"

#include "util/stopwatch.hpp"

namespace scod {

Device::Device(DeviceProperties props, ThreadPool* pool)
    : props_(std::move(props)), pool_(pool != nullptr ? pool : &global_thread_pool()) {}

void Device::reset_stats() {
  const auto in_use = stats_.bytes_in_use;
  stats_ = DeviceStats{};
  stats_.bytes_in_use = in_use;
  stats_.bytes_peak = in_use;
}

void Device::account_alloc(std::uint64_t bytes) {
  if (bytes > memory_free()) {
    throw DeviceOutOfMemory("devicesim: allocation of " + std::to_string(bytes) +
                            " B exceeds free device memory (" +
                            std::to_string(memory_free()) + " B of " +
                            std::to_string(props_.memory_bytes) + " B)");
  }
  stats_.allocations += 1;
  stats_.bytes_in_use += bytes;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_in_use);
}

void Device::account_free(std::uint64_t bytes) {
  stats_.frees += 1;
  stats_.bytes_in_use -= std::min(stats_.bytes_in_use, bytes);
}

}  // namespace scod
