#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scod {

/// Fork-join thread pool with persistent workers.
///
/// The paper parallelizes three stages (propagation+insertion, per-cell
/// conjunction detection, PCA/TCA refinement) with OpenMP; this pool plays
/// the same role with explicit control over the thread count, which the
/// thread-scaling experiment of Section V-C2 sweeps from 1 to the hardware
/// maximum.
///
/// The calling thread always participates in the work, so a pool created
/// with `threads == 1` runs everything inline with zero synchronization
/// overhead — that configuration is the single-thread baseline of the
/// speedup measurements.
class ThreadPool {
 public:
  /// `threads` is the total number of worker contexts including the caller;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `fn(worker_id)` once on every worker context (ids in
  /// [0, thread_count()), the caller gets id thread_count()-1) and returns
  /// when all invocations finished. Exceptions thrown by any invocation are
  /// rethrown on the caller (first one wins).
  void run_on_all(const std::function<void(std::size_t)>& fn);

  /// Dynamic-chunked parallel loop over [0, n). `body(i)` must be safe to
  /// call concurrently for distinct i. `grain` is the chunk size handed to
  /// a worker at a time; 0 picks a heuristic.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body, std::size_t grain = 0) {
    if (n == 0) return;
    if (thread_count() == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    if (grain == 0) grain = heuristic_grain(n);
    std::atomic<std::size_t> next{0};
    run_on_all([&](std::size_t) {
      for (;;) {
        const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        const std::size_t end = std::min(begin + grain, n);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    });
  }

  /// Like parallel_for but hands whole ranges to the body:
  /// `body(begin, end)`. Useful when the body amortizes per-chunk setup.
  template <typename Body>
  void parallel_for_ranges(std::size_t n, Body&& body, std::size_t grain = 0) {
    if (n == 0) return;
    if (thread_count() == 1) {
      body(std::size_t{0}, n);
      return;
    }
    if (grain == 0) grain = heuristic_grain(n);
    std::atomic<std::size_t> next{0};
    run_on_all([&](std::size_t) {
      for (;;) {
        const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        body(begin, std::min(begin + grain, n));
      }
    });
  }

 private:
  std::size_t heuristic_grain(std::size_t n) const {
    const std::size_t chunks = 8 * thread_count();
    return std::max<std::size_t>(1, n / chunks);
  }

  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide default pool sized to the hardware; library entry points use
/// it when the caller does not supply a pool explicitly.
ThreadPool& global_thread_pool();

}  // namespace scod
