#include "parallel/thread_pool.hpp"

namespace scod {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads - 1);
  for (std::size_t id = 0; id + 1 < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_start_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
    if (stopping_) return;
    seen_generation = generation_;
    const auto* job = job_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*job)(id);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) first_error_ = error;
    if (--active_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    active_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    fn(workers_.size());  // The caller participates with the highest id.
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  job_ = nullptr;
  std::exception_ptr error = caller_error ? caller_error : first_error_;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace scod
