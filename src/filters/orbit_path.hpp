#pragma once

#include "orbit/elements.hpp"
#include "orbit/frames.hpp"
#include "util/vec3.hpp"

namespace scod {

/// Geometric view of one orbit as a closed space curve parameterized by
/// true anomaly; precomputes the rotation and conic parameters so repeated
/// evaluations inside the path-filter minimization are cheap.
class OrbitCurve {
 public:
  explicit OrbitCurve(const KeplerElements& el);

  /// ECI position at true anomaly f [km].
  Vec3 position(double true_anomaly) const;

  double eccentricity() const { return e_; }
  double semi_latus() const { return p_; }

 private:
  double p_;
  double e_;
  Mat3 rotation_;
};

/// Minimum distance between the two orbit curves (a time-free MOID-style
/// bound): the orbit path filter "further reduces the number of object
/// pairs by calculating the minimal distance between the two orbits. The
/// pairs are excluded if this distance is larger than a predefined
/// threshold" (Hoots et al. 1984).
///
/// Found by a coarse anomaly-grid scan (`coarse_samples` per orbit)
/// followed by coordinate-descent Brent refinement. The result is an upper
/// bound on the true MOID that converges quickly with the grid resolution;
/// filters use it with a pad, never as an exact quantity.
double min_orbit_distance(const KeplerElements& a, const KeplerElements& b,
                          int coarse_samples = 24);

/// Returns true when the pair SURVIVES the orbit path filter, i.e. the
/// minimum orbit-to-orbit distance is within threshold + pad.
bool orbit_path_overlap(const KeplerElements& a, const KeplerElements& b,
                        double threshold_km, double pad_km = 0.5,
                        int coarse_samples = 24);

}  // namespace scod
