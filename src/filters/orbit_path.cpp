#include "filters/orbit_path.hpp"

#include <cmath>
#include <limits>

#include "orbit/geometry.hpp"
#include "pca/brent.hpp"
#include "util/constants.hpp"

namespace scod {

OrbitCurve::OrbitCurve(const KeplerElements& el)
    : p_(semi_latus_rectum(el)),
      e_(el.eccentricity),
      rotation_(perifocal_to_eci(el.inclination, el.raan, el.arg_perigee)) {}

Vec3 OrbitCurve::position(double true_anomaly) const {
  const double cf = std::cos(true_anomaly);
  const double sf = std::sin(true_anomaly);
  const double r = p_ / (1.0 + e_ * cf);
  return rotation_ * Vec3{r * cf, r * sf, 0.0};
}

double min_orbit_distance(const KeplerElements& a, const KeplerElements& b,
                          int coarse_samples) {
  const OrbitCurve curve_a(a);
  const OrbitCurve curve_b(b);

  const double step = kTwoPi / static_cast<double>(coarse_samples);

  // Coarse scan over the (f_a, f_b) torus.
  double best_fa = 0.0, best_fb = 0.0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (int i = 0; i < coarse_samples; ++i) {
    const double fa = static_cast<double>(i) * step;
    const Vec3 pa = curve_a.position(fa);
    for (int j = 0; j < coarse_samples; ++j) {
      const double fb = static_cast<double>(j) * step;
      const double d2 = (pa - curve_b.position(fb)).norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best_fa = fa;
        best_fb = fb;
      }
    }
  }

  // Coordinate-descent polish: alternately minimize over each anomaly with
  // Brent on a window of +- one coarse step around the incumbent.
  double fa = best_fa, fb = best_fb;
  for (int round = 0; round < 4; ++round) {
    const auto over_fa = [&](double f) {
      return (curve_a.position(f) - curve_b.position(fb)).norm2();
    };
    fa = brent_minimize(over_fa, fa - step, fa + step, 1e-10).x;
    const auto over_fb = [&](double f) {
      return (curve_a.position(fa) - curve_b.position(f)).norm2();
    };
    fb = brent_minimize(over_fb, fb - step, fb + step, 1e-10).x;
  }

  return (curve_a.position(fa) - curve_b.position(fb)).norm();
}

bool orbit_path_overlap(const KeplerElements& a, const KeplerElements& b,
                        double threshold_km, double pad_km, int coarse_samples) {
  return min_orbit_distance(a, b, coarse_samples) <= threshold_km + pad_km;
}

}  // namespace scod
