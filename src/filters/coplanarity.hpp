#pragma once

#include "orbit/elements.hpp"

namespace scod {

/// Default angular tolerance below which two orbital planes are treated as
/// coplanar. The node-crossing time filter degenerates for small plane
/// angles (the intersection line is ill-conditioned and encounter minima
/// become broad), so nearly-coplanar pairs are routed to the sampling-based
/// search instead — the same split the paper's hybrid variant makes in
/// Section IV-C.
inline constexpr double kDefaultCoplanarTolerance = 0.02;  // rad, ~1.15 deg

/// True when the planes of the two orbits are within `tolerance` of each
/// other (normals parallel or anti-parallel).
bool are_coplanar(const KeplerElements& a, const KeplerElements& b,
                  double tolerance = kDefaultCoplanarTolerance);

}  // namespace scod
