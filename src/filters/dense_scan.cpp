#include "filters/dense_scan.hpp"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.hpp"
#include "pca/brent.hpp"

namespace scod {

namespace {

// Keeps the dense scan's minimizations in the same telemetry bucket as the
// interval refiners, so "refinements >= raw conjunctions" holds for every
// screener including the legacy coplanar path.
template <typename DistanceFn>
MinimizeResult counted_minimize(const DistanceFn& distance, double lo, double hi,
                                const RefineOptions& refine) {
  const MinimizeResult m =
      brent_minimize(distance, lo, hi, refine.time_tolerance, refine.max_iterations);
  obs::count(obs::Counter::kRefinements);
  obs::count(obs::Counter::kBrentIterations,
             static_cast<std::uint64_t>(m.iterations));
  return m;
}

}  // namespace

std::vector<Encounter> scan_encounters(const Propagator& propagator,
                                       std::uint32_t sat_a, std::uint32_t sat_b,
                                       double t_begin, double t_end,
                                       const DenseScanOptions& options) {
  std::vector<Encounter> encounters;
  if (!(t_begin < t_end)) return encounters;

  const auto distance = [&](double t) { return propagator.distance(sat_a, sat_b, t); };

  const auto samples =
      static_cast<std::size_t>(std::ceil((t_end - t_begin) / options.step)) + 1;
  const double step = (t_end - t_begin) / static_cast<double>(samples - 1);

  double d_prev2 = 0.0;
  double d_prev = distance(t_begin);
  double d_curr = samples > 1 ? distance(t_begin + step) : d_prev;

  // Leading edge: if the signal rises from the very first sample, the span
  // start is a running minimum.
  if (d_prev <= d_curr && d_prev < options.refine_below) {
    const MinimizeResult m =
        counted_minimize(distance, t_begin, t_begin + step, options.refine);
    encounters.push_back({m.x, m.value});
  }

  for (std::size_t k = 2; k < samples; ++k) {
    d_prev2 = d_prev;
    d_prev = d_curr;
    const double t_curr = t_begin + static_cast<double>(k) * step;
    d_curr = distance(t_curr);
    if (d_prev <= d_prev2 && d_prev <= d_curr && d_prev < options.refine_below) {
      const MinimizeResult m =
          counted_minimize(distance, t_curr - 2.0 * step, t_curr, options.refine);
      encounters.push_back({m.x, m.value});
    }
  }

  // Trailing edge: signal still falling at the end of the span.
  if (samples > 1 && d_curr < d_prev && d_curr < options.refine_below) {
    const MinimizeResult m =
        counted_minimize(distance, t_end - step, t_end, options.refine);
    encounters.push_back({m.x, m.value});
  }

  return encounters;
}

}  // namespace scod
