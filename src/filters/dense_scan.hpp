#pragma once

#include <cstdint>
#include <vector>

#include "pca/refine.hpp"
#include "propagation/propagator.hpp"

namespace scod {

/// Options for the sampling-based encounter search.
struct DenseScanOptions {
  /// Sampling step [s]. Minima narrower than one step are caught by the
  /// Brent refinement of the surrounding bracket as long as the distance
  /// signal is unimodal inside it; orbital encounter geometry satisfies
  /// this for steps well below half the synodic variation.
  double step = 2.0;
  /// Only minima whose *sampled* value is below this are refined;
  /// infinity refines every local minimum.
  double refine_below = 1e300;
  RefineOptions refine;
};

/// Exhaustively finds the local minima of the pairwise distance of
/// (sat_a, sat_b) over [t_begin, t_end] by dense sampling plus Brent
/// refinement of each bracketed minimum. Span endpoints that are running
/// minima are reported as (clamped) encounters.
///
/// This is the per-pair workhorse of the legacy variant for coplanar pairs
/// and the ground-truth oracle the tests compare every other search
/// strategy against.
std::vector<Encounter> scan_encounters(const Propagator& propagator,
                                       std::uint32_t sat_a, std::uint32_t sat_b,
                                       double t_begin, double t_end,
                                       const DenseScanOptions& options = {});

}  // namespace scod
