#include "filters/apogee_perigee.hpp"

#include <algorithm>

#include "orbit/geometry.hpp"

namespace scod {

double radial_band_gap(const KeplerElements& a, const KeplerElements& b) {
  const double highest_perigee = std::max(perigee_radius(a), perigee_radius(b));
  const double lowest_apogee = std::min(apogee_radius(a), apogee_radius(b));
  return highest_perigee - lowest_apogee;
}

bool apogee_perigee_overlap(const KeplerElements& a, const KeplerElements& b,
                            double threshold_km) {
  return radial_band_gap(a, b) <= threshold_km;
}

}  // namespace scod
