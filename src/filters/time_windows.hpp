#pragma once

#include <array>
#include <vector>

#include "orbit/elements.hpp"

namespace scod {

/// Half-open time interval [lo, hi] in seconds past epoch.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return hi - lo; }
  bool contains(double t) const { return t >= lo && t <= hi; }
};

/// Sorts intervals and merges overlapping/adjacent ones.
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/// Geometry of one relative node: the direction where the two (non-
/// coplanar) orbital planes intersect. Each orbit crosses the intersection
/// line at two opposite true anomalies; this struct holds the crossing for
/// one of the two directions (+k or -k of the plane-normal cross product).
struct NodeCrossing {
  double true_anomaly_a = 0.0;  ///< anomaly where orbit A points along the node
  double true_anomaly_b = 0.0;  ///< same for orbit B
  double radius_a = 0.0;        ///< geocentric radius of A at its crossing [km]
  double radius_b = 0.0;        ///< geocentric radius of B at its crossing [km]
  /// Both crossing points lie on the node line through the geocenter, so
  /// the orbit-to-orbit distance at this node is simply |radius_a-radius_b|.
  double miss_distance = 0.0;   ///< [km]
};

/// The two relative nodes of a non-coplanar orbit pair. Callers must
/// ensure the pair is not coplanar (are_coplanar() == false); for
/// degenerate geometry the crossing anomalies are meaningless.
std::array<NodeCrossing, 2> node_crossings(const KeplerElements& a,
                                           const KeplerElements& b);

/// Options for the node-window time filter.
struct TimeWindowOptions {
  /// Distance pad added to the screening threshold to absorb the
  /// first-order approximations in the window construction [km].
  double pad_km = 0.5;
  /// The spatial corridor around a node is corridor_scale * (threshold +
  /// pad); larger values widen the windows (more Brent work, fewer missed
  /// encounters). The effective corridor additionally grows as
  /// 1/sin(plane angle) because shallow crossings produce broad minima.
  double corridor_scale = 8.0;
};

/// Time filter (Woodburn & Dichmann 1998 / Hoots et al. 1984, simplified):
/// computes the windows inside [t_begin, t_end] during which BOTH objects
/// are near a relative node with sub-threshold node miss distance — the
/// only times a non-coplanar pair can produce a conjunction. "It excludes
/// all object pairs that are not in these windows simultaneously and can,
/// therefore, not generate a conjunction."
///
/// The returned intervals are merged and sorted; an empty result means the
/// time filter excludes the pair for the whole span. Minima of the
/// pairwise distance below `threshold` are guaranteed (up to the stated
/// first-order window construction) to lie inside the returned intervals;
/// the screener verifies this against a dense-scan oracle in the tests.
std::vector<Interval> conjunction_time_windows(const KeplerElements& a,
                                               const KeplerElements& b,
                                               double t_begin, double t_end,
                                               double threshold_km,
                                               const TimeWindowOptions& options = {});

}  // namespace scod
