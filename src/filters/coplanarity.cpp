#include "filters/coplanarity.hpp"

#include "orbit/geometry.hpp"

namespace scod {

bool are_coplanar(const KeplerElements& a, const KeplerElements& b, double tolerance) {
  return plane_angle(a, b) < tolerance;
}

}  // namespace scod
