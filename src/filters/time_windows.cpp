#include "filters/time_windows.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/anomaly.hpp"
#include "orbit/frames.hpp"
#include "orbit/geometry.hpp"
#include "util/constants.hpp"

namespace scod {

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  if (intervals.empty()) return intervals;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& x, const Interval& y) { return x.lo < y.lo; });
  std::vector<Interval> merged;
  merged.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, intervals[i].hi);
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

namespace {

/// True anomaly at which the orbit's position vector points along the
/// (unit) direction `k`, which must lie in the orbital plane.
double anomaly_toward(const KeplerElements& el, const Vec3& k) {
  const Mat3 rot = perifocal_to_eci(el.inclination, el.raan, el.arg_perigee);
  const Vec3 u = rot.transposed() * k;  // node direction in the perifocal frame
  return wrap_two_pi(std::atan2(u.y, u.x));
}

NodeCrossing crossing_at(const KeplerElements& a, const KeplerElements& b,
                         const Vec3& k) {
  NodeCrossing c;
  c.true_anomaly_a = anomaly_toward(a, k);
  c.true_anomaly_b = anomaly_toward(b, k);
  c.radius_a = radius_at_true_anomaly(a, c.true_anomaly_a);
  c.radius_b = radius_at_true_anomaly(b, c.true_anomaly_b);
  c.miss_distance = std::abs(c.radius_a - c.radius_b);
  return c;
}

/// Appends the windows [t_cross - w, t_cross + w] for every time the
/// object passes true anomaly `f_node` within [t_begin - w, t_end + w].
void append_crossing_windows(const KeplerElements& el, double f_node, double w,
                             double t_begin, double t_end,
                             std::vector<Interval>& out) {
  const double n = mean_motion(el);
  const double period = kTwoPi / n;
  const double m_node = true_to_mean(f_node, el.eccentricity);
  // Crossings happen at t0 + j * period; start with the first window that
  // can still reach into [t_begin, t_end].
  const double t0 = wrap_two_pi(m_node - el.mean_anomaly) / n;
  const double j_start = std::ceil((t_begin - w - t0) / period);
  for (double t = t0 + j_start * period; t - w <= t_end; t += period) {
    out.push_back({t - w, t + w});
  }
}

/// Two-pointer intersection of two merged interval lists.
void intersect_into(const std::vector<Interval>& xs, const std::vector<Interval>& ys,
                    std::vector<Interval>& out) {
  std::size_t i = 0, j = 0;
  while (i < xs.size() && j < ys.size()) {
    const double lo = std::max(xs[i].lo, ys[j].lo);
    const double hi = std::min(xs[i].hi, ys[j].hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (xs[i].hi < ys[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace

std::array<NodeCrossing, 2> node_crossings(const KeplerElements& a,
                                           const KeplerElements& b) {
  const Vec3 k = normal_of(a).cross(normal_of(b)).normalized();
  return {crossing_at(a, b, k), crossing_at(a, b, -k)};
}

std::vector<Interval> conjunction_time_windows(const KeplerElements& a,
                                               const KeplerElements& b,
                                               double t_begin, double t_end,
                                               double threshold_km,
                                               const TimeWindowOptions& options) {
  const Vec3 cross = normal_of(a).cross(normal_of(b));
  const double sin_angle = std::max(cross.norm(), 0.05);
  const Vec3 k = cross / cross.norm();

  const double reach = threshold_km + options.pad_km;
  // Shallow plane crossings produce broad distance minima; widen the
  // corridor accordingly (1/sin of the plane angle, floored).
  const double corridor = options.corridor_scale * reach / sin_angle;

  std::vector<Interval> result;
  for (const Vec3& direction : {k, -k}) {
    const NodeCrossing c = crossing_at(a, b, direction);
    if (c.miss_distance > reach) continue;

    // Along-track corridor -> time window: arc speed at the node is
    // r * df/dt = h / r, so w = corridor * r / h.
    const double h_a = std::sqrt(kMuEarth * semi_latus_rectum(a));
    const double h_b = std::sqrt(kMuEarth * semi_latus_rectum(b));
    const double w_a = corridor * c.radius_a / h_a;
    const double w_b = corridor * c.radius_b / h_b;

    std::vector<Interval> windows_a, windows_b;
    append_crossing_windows(a, c.true_anomaly_a, w_a, t_begin, t_end, windows_a);
    append_crossing_windows(b, c.true_anomaly_b, w_b, t_begin, t_end, windows_b);
    intersect_into(merge_intervals(std::move(windows_a)),
                   merge_intervals(std::move(windows_b)), result);
  }

  // Clamp to the simulation span and merge the two node directions.
  for (Interval& iv : result) {
    iv.lo = std::max(iv.lo, t_begin);
    iv.hi = std::min(iv.hi, t_end);
  }
  std::erase_if(result, [](const Interval& iv) { return !(iv.lo < iv.hi); });
  return merge_intervals(std::move(result));
}

}  // namespace scod
