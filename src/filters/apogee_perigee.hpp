#pragma once

#include "orbit/elements.hpp"

namespace scod {

/// Apogee/perigee filter (Hoots, Crawford & Roehrich 1984): two orbits can
/// only come within `threshold` of each other if their radial bands
/// [perigee, apogee], padded by the threshold, overlap. "The apogee/perigee
/// filter takes the farthest (apogee) and nearest point (perigee) of an
/// orbit and compares the range between with the respective range of all
/// other objects, excluding those as potential collision pairs that do not
/// overlap."
///
/// Returns true when the pair SURVIVES the filter (bands overlap), i.e.
/// max(perigee_a, perigee_b) - min(apogee_a, apogee_b) <= threshold.
bool apogee_perigee_overlap(const KeplerElements& a, const KeplerElements& b,
                            double threshold_km);

/// The radial gap the filter compares against the threshold; negative when
/// the bands already overlap without padding. Exposed for tests and for
/// diagnostics in the filter chain statistics.
double radial_band_gap(const KeplerElements& a, const KeplerElements& b);

}  // namespace scod
