#include "spatial/cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scod {

namespace {
constexpr std::uint64_t kAxisBits = 21;
constexpr std::uint64_t kAxisMask = (1ull << kAxisBits) - 1;
constexpr std::int64_t kAxisOffset = 1ull << (kAxisBits - 1);
}  // namespace

CellIndexer::CellIndexer(double cell_size, double half_extent)
    : cell_size_(cell_size), half_extent_(half_extent), inv_cell_size_(1.0 / cell_size) {
  if (!(cell_size > 0.0)) throw std::invalid_argument("CellIndexer: cell size must be > 0");
  if (!(half_extent > 0.0)) throw std::invalid_argument("CellIndexer: extent must be > 0");
  const double cells = std::ceil(2.0 * half_extent / cell_size);
  if (cells >= static_cast<double>(kAxisOffset)) {
    throw std::invalid_argument("CellIndexer: cell size too small for 21-bit axis keys");
  }
  cells_per_axis_ = static_cast<std::int32_t>(cells);
}

CellCoord CellIndexer::cell_of(const Vec3& position) const {
  auto axis = [&](double v) {
    const double idx = std::floor((v + half_extent_) * inv_cell_size_);
    const double clamped = std::clamp(idx, 0.0, static_cast<double>(cells_per_axis_ - 1));
    return static_cast<std::int32_t>(clamped);
  };
  return {axis(position.x), axis(position.y), axis(position.z)};
}

std::uint64_t CellIndexer::pack(const CellCoord& c) const {
  const auto ux = static_cast<std::uint64_t>(static_cast<std::int64_t>(c.x) + kAxisOffset);
  const auto uy = static_cast<std::uint64_t>(static_cast<std::int64_t>(c.y) + kAxisOffset);
  const auto uz = static_cast<std::uint64_t>(static_cast<std::int64_t>(c.z) + kAxisOffset);
  return (ux & kAxisMask) | ((uy & kAxisMask) << kAxisBits) |
         ((uz & kAxisMask) << (2 * kAxisBits));
}

CellCoord CellIndexer::unpack(std::uint64_t key) const {
  auto axis = [](std::uint64_t bits) {
    return static_cast<std::int32_t>(static_cast<std::int64_t>(bits) - kAxisOffset);
  };
  return {axis(key & kAxisMask), axis((key >> kAxisBits) & kAxisMask),
          axis((key >> (2 * kAxisBits)) & kAxisMask)};
}

const std::array<CellCoord, 27>& cell_neighborhood() {
  static const std::array<CellCoord, 27> offsets = [] {
    std::array<CellCoord, 27> o{};
    std::size_t i = 0;
    o[i++] = {0, 0, 0};  // self first, so scans can skip it easily
    for (std::int32_t dz = -1; dz <= 1; ++dz)
      for (std::int32_t dy = -1; dy <= 1; ++dy)
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          o[i++] = {dx, dy, dz};
        }
    return o;
  }();
  return offsets;
}

const std::array<CellCoord, 14>& cell_half_neighborhood() {
  static const std::array<CellCoord, 14> offsets = [] {
    std::array<CellCoord, 14> o{};
    std::size_t i = 0;
    o[i++] = {0, 0, 0};
    for (std::int32_t dz = -1; dz <= 1; ++dz)
      for (std::int32_t dy = -1; dy <= 1; ++dy)
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          // Keep offsets that are lexicographically positive in (z, y, x);
          // the mirrored half is covered from the neighbouring cell's scan.
          if (dz > 0 || (dz == 0 && (dy > 0 || (dy == 0 && dx > 0)))) {
            o[i++] = {dx, dy, dz};
          }
        }
    return o;
  }();
  return offsets;
}

}  // namespace scod
