#pragma once

#include <cstddef>
#include <cstdint>

namespace scod {

/// MurmurHash3 (Austin Appleby, public domain) — the hash the paper uses to
/// map grid-cell keys to hash-map slots. We provide the 64-bit finalizer
/// (the slot-index path used in the hot loop, where the key is already a
/// packed 64-bit cell coordinate) and the full x64 128-bit variant for
/// arbitrary byte strings.

/// The fmix64 finalizer: a full-avalanche mix of a 64-bit value.
constexpr std::uint64_t murmur3_fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// MurmurHash3_x64_128 over an arbitrary byte buffer; returns the low and
/// high 64 bits through the out parameters.
void murmur3_x64_128(const void* data, std::size_t len, std::uint64_t seed,
                     std::uint64_t* out_low, std::uint64_t* out_high);

/// Convenience: 64-bit hash of a byte buffer (low half of the 128-bit hash).
std::uint64_t murmur3_x64_64(const void* data, std::size_t len, std::uint64_t seed = 0);

}  // namespace scod
