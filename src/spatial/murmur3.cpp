#include "spatial/murmur3.hpp"

#include <cstring>

namespace scod {

namespace {
inline std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t load64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
}  // namespace

void murmur3_x64_128(const void* data, std::size_t len, std::uint64_t seed,
                     std::uint64_t* out_low, std::uint64_t* out_high) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;

  const std::uint64_t c1 = 0x87C37B91114253D5ull;
  const std::uint64_t c2 = 0x4CF5AD432745937Full;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(bytes + i * 16);
    std::uint64_t k2 = load64(bytes + i * 16 + 8);

    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;

    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const unsigned char* tail = bytes + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<std::uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<std::uint64_t>(tail[8]);
      k2 *= c2;
      k2 = rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<std::uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint64_t>(tail[0]);
      k1 *= c1;
      k1 = rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    default: break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = murmur3_fmix64(h1);
  h2 = murmur3_fmix64(h2);
  h1 += h2;
  h2 += h1;

  *out_low = h1;
  *out_high = h2;
}

std::uint64_t murmur3_x64_64(const void* data, std::size_t len, std::uint64_t seed) {
  std::uint64_t lo, hi;
  murmur3_x64_128(data, len, seed, &lo, &hi);
  return lo;
}

}  // namespace scod
