#pragma once

#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace scod {

/// Static 3-d tree over a point set with fixed-radius neighbour queries.
///
/// This is the comparison structure from the related work the paper
/// discusses (Budianto-Ho et al. 2014 build Kd-trees over satellite
/// extents): correct, but the tree must be rebuilt every sample step,
/// which is what makes the hash-grid the better fit for the screening
/// problem. We keep it for the ablation benchmark (bench_micro_spatial)
/// and as an independent oracle in the spatial tests.
class KdTree {
 public:
  struct Point {
    Vec3 position;
    std::uint32_t id = 0;
  };

  /// Builds a balanced tree in O(n log n) by median splitting.
  explicit KdTree(std::vector<Point> points);

  std::size_t size() const { return points_.size(); }

  /// Calls `visit(point)` for every stored point within `radius` of
  /// `query` (inclusive).
  template <typename Visitor>
  void for_each_within(const Vec3& query, double radius, Visitor&& visit) const {
    if (!points_.empty()) {
      search(0, points_.size(), 0, query, radius * radius, visit);
    }
  }

  /// Ids of all points within `radius` of `query`.
  std::vector<std::uint32_t> within(const Vec3& query, double radius) const;

 private:
  void build(std::size_t lo, std::size_t hi, int axis);

  static double axis_value(const Vec3& v, int axis) {
    return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
  }

  template <typename Visitor>
  void search(std::size_t lo, std::size_t hi, int axis, const Vec3& query,
              double radius2, Visitor&& visit) const {
    if (lo >= hi) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    const Point& node = points_[mid];

    const Vec3 diff = node.position - query;
    if (diff.norm2() <= radius2) visit(node);

    const double plane_dist = axis_value(query, axis) - axis_value(node.position, axis);
    const int next_axis = (axis + 1) % 3;
    // Descend the near side first, then the far side only if the splitting
    // plane is within the query radius.
    if (plane_dist <= 0.0) {
      search(lo, mid, next_axis, query, radius2, visit);
      if (plane_dist * plane_dist <= radius2)
        search(mid + 1, hi, next_axis, query, radius2, visit);
    } else {
      search(mid + 1, hi, next_axis, query, radius2, visit);
      if (plane_dist * plane_dist <= radius2)
        search(lo, mid, next_axis, query, radius2, visit);
    }
  }

  std::vector<Point> points_;
};

}  // namespace scod
