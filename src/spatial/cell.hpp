#pragma once

#include <array>
#include <cstdint>

#include "util/constants.hpp"
#include "util/vec3.hpp"

namespace scod {

/// Integer grid-cell coordinate.
struct CellCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  constexpr bool operator==(const CellCoord&) const = default;
};

/// Cell size from the paper's Eq. (1): g_c = d + 7.8 * s_ps.
///
/// The worst case (Fig. 4) has two objects just over the threshold apart at
/// the outer edges of non-neighbouring cells at consecutive samples; making
/// the cell this large guarantees any sub-threshold approach between two
/// samples keeps the objects within neighbouring cells at one of the two
/// samples, so the pair is never skipped.
constexpr double grid_cell_size(double threshold_km, double seconds_per_sample) {
  return threshold_km + kLeoSpeed * seconds_per_sample;
}

/// Maps ECI positions to grid cells and packs cell coordinates into 64-bit
/// keys for the hash map. The cube [-half_extent, +half_extent]^3 covers
/// the space up to GEO (the paper's (85,000 km)^3 volume); each packed axis
/// gets 21 bits, enough for cells well below 0.1 km at that extent.
class CellIndexer {
 public:
  explicit CellIndexer(double cell_size, double half_extent = kSimulationHalfExtent);

  double cell_size() const { return cell_size_; }
  double half_extent() const { return half_extent_; }

  /// Number of cells along one axis.
  std::int32_t cells_per_axis() const { return cells_per_axis_; }

  /// Cell containing `position`; positions outside the cube are clamped to
  /// the boundary cells (the population generator never produces them, but
  /// propagation of an HEO apogee might graze the boundary).
  CellCoord cell_of(const Vec3& position) const;

  /// Packs a coordinate into a key: 21 bits per axis, offset to unsigned.
  std::uint64_t pack(const CellCoord& c) const;

  /// Inverse of pack().
  CellCoord unpack(std::uint64_t key) const;

  std::uint64_t key_of(const Vec3& position) const { return pack(cell_of(position)); }

 private:
  double cell_size_;
  double half_extent_;
  double inv_cell_size_;
  std::int32_t cells_per_axis_;
};

/// Offsets of the 3^3 - 1 = 26 neighbouring cells plus the cell itself
/// (first entry); the conjunction detection scans all 27.
const std::array<CellCoord, 27>& cell_neighborhood();

/// The 13 "forward" offsets (plus self as first entry, 14 total) forming a
/// half stencil: every unordered pair of neighbouring cells is covered
/// exactly once. Used by the half-stencil ablation.
const std::array<CellCoord, 14>& cell_half_neighborhood();

}  // namespace scod
