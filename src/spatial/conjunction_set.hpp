#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace scod {

/// A screening candidate: an unordered satellite pair plus the sample step
/// at which the grid saw them in neighbouring cells.
struct Candidate {
  std::uint32_t sat_a = 0;  ///< smaller index
  std::uint32_t sat_b = 0;  ///< larger index
  std::uint32_t step = 0;   ///< global sample-step number
};

/// Packs a candidate into a 64-bit set key: 20 bits per satellite index
/// (up to 1,048,575 — covering the paper's largest population of
/// 1,024,000) and 24 bits for the sample step. The pair is normalized to
/// (min, max) so both viewpoints of a conjunction map to the same key —
/// "this helps to prevent considering possible conjunctions twice ...
/// however, it allows multiple conjunctions at different sampling steps"
/// (Section IV-A3).
std::uint64_t pack_candidate(std::uint32_t sat_a, std::uint32_t sat_b, std::uint32_t step);

Candidate unpack_candidate(std::uint64_t key);

/// Lock-free fixed-size hash set of candidates — the paper's "conjunction
/// hash map". Sized up-front from the Extra-P model (Eqs. 3-4); the
/// screener grows it and retries the affected step if the population
/// produces more candidates than the model predicted.
class CandidateSet {
 public:
  enum class Insert { kInserted, kDuplicate, kFull };

  explicit CandidateSet(std::size_t capacity);

  CandidateSet(CandidateSet&& other) noexcept;
  CandidateSet& operator=(CandidateSet&& other) noexcept;
  CandidateSet(const CandidateSet&) = delete;
  CandidateSet& operator=(const CandidateSet&) = delete;

  /// Thread-safe, lock-free insert with duplicate elimination.
  Insert insert(std::uint64_t candidate_key);

  Insert insert(std::uint32_t sat_a, std::uint32_t sat_b, std::uint32_t step) {
    return insert(pack_candidate(sat_a, sat_b, step));
  }

  /// Number of distinct candidates stored.
  std::size_t size() const { return count_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }
  std::size_t slot_count() const { return slots_.size(); }

  /// Collects all stored candidates (post-barrier only). Order is
  /// slot-table order, i.e. deterministic for a fixed content set.
  std::vector<Candidate> drain() const;

  /// Doubles the slot table, re-inserting existing keys. Single-threaded.
  void grow();

  void clear();

  std::size_t memory_bytes() const { return slots_.size() * sizeof(std::uint64_t); }

 private:
  static std::size_t round_up_pow2(std::size_t v);

  std::vector<std::atomic<std::uint64_t>> slots_;
  std::atomic<std::size_t> count_{0};
  std::size_t capacity_ = 0;  // max stored keys before reporting kFull
  std::uint64_t slot_mask_ = 0;
};

}  // namespace scod
