#include "spatial/grid_hash_set.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "spatial/murmur3.hpp"

namespace scod {

std::size_t GridHashSet::round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

GridHashSet::GridHashSet(std::size_t max_entries, double slot_factor) {
  if (max_entries == 0) throw std::invalid_argument("GridHashSet: zero capacity");
  if (slot_factor < 1.0) throw std::invalid_argument("GridHashSet: slot factor < 1");
  const auto min_slots =
      static_cast<std::size_t>(slot_factor * static_cast<double>(max_entries)) + 1;
  slots_ = std::vector<Slot>(round_up_pow2(min_slots));
  entries_.resize(max_entries);
  slot_mask_ = slots_.size() - 1;
}

GridHashSet::GridHashSet(GridHashSet&& other) noexcept
    : slots_(std::move(other.slots_)),
      entries_(std::move(other.entries_)),
      entry_count_(other.entry_count_.load(std::memory_order_relaxed)),
      probe_steps_(other.probe_steps_.load(std::memory_order_relaxed)),
      slot_mask_(other.slot_mask_) {}

GridHashSet& GridHashSet::operator=(GridHashSet&& other) noexcept {
  if (this != &other) {
    slots_ = std::move(other.slots_);
    entries_ = std::move(other.entries_);
    entry_count_.store(other.entry_count_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    probe_steps_.store(other.probe_steps_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    slot_mask_ = other.slot_mask_;
  }
  return *this;
}

bool GridHashSet::insert(std::uint64_t cell_key, std::uint32_t satellite,
                         const Vec3& position) {
  std::uint64_t slot = murmur3_fmix64(cell_key) & slot_mask_;
  std::uint64_t probes = 0;
  std::uint64_t cas_retries = 0;

  for (; probes <= slot_mask_; ++probes) {
    std::uint64_t current = slots_[slot].key.load(std::memory_order_acquire);
    if (current == kEmptySlotKey) {
      // Claim the empty slot with CAS; on failure `current` holds whatever
      // key the winning thread stored, which may be ours (another satellite
      // of the same cell racing us) or a hash collision.
      if (slots_[slot].key.compare_exchange_strong(current, cell_key,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
        current = cell_key;
      } else {
        ++cas_retries;
      }
    }
    if (current == cell_key) break;
    slot = (slot + 1) & slot_mask_;  // linear probing, Eq. (2)
  }
  probe_steps_.fetch_add(probes, std::memory_order_relaxed);
  if (probes > slot_mask_) {
    obs::count(obs::Counter::kGridPoolRejects);
    return false;  // slot table full
  }

  const std::uint32_t index = entry_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= entries_.size()) {
    // Give the ticket back so size() stays the number of stored entries
    // even after rejected inserts.
    entry_count_.fetch_sub(1, std::memory_order_acq_rel);
    obs::count(obs::Counter::kGridPoolRejects);
    return false;  // entry pool exhausted
  }

  GridEntry& e = entries_[index];
  e.position = position;
  e.satellite = satellite;

  // Push-front onto the cell's singly-linked list. The release order on
  // the successful CAS publishes the entry fields to post-barrier readers.
  std::uint32_t old_head = slots_[slot].head.load(std::memory_order_relaxed);
  std::uint32_t first_seen = old_head;
  do {
    e.next = old_head;
  } while (!slots_[slot].head.compare_exchange_weak(
      old_head, index, std::memory_order_release, std::memory_order_relaxed));
  if (old_head != first_seen) ++cas_retries;
  obs::count_grid_insert(probes, cas_retries);
  return true;
}

std::uint32_t GridHashSet::find(std::uint64_t cell_key) const {
  std::uint64_t slot = murmur3_fmix64(cell_key) & slot_mask_;
  for (std::uint64_t probes = 0; probes <= slot_mask_; ++probes) {
    const std::uint64_t current = slots_[slot].key.load(std::memory_order_acquire);
    if (current == cell_key) return slots_[slot].head.load(std::memory_order_acquire);
    if (current == kEmptySlotKey) return kNoEntry;
    slot = (slot + 1) & slot_mask_;
  }
  return kNoEntry;
}

void GridHashSet::clear() {
  for (auto& s : slots_) {
    s.key.store(kEmptySlotKey, std::memory_order_relaxed);
    s.head.store(kNoEntry, std::memory_order_relaxed);
  }
  entry_count_.store(0, std::memory_order_release);
}

std::size_t GridHashSet::memory_bytes() const {
  return slots_.size() * sizeof(Slot) + entries_.size() * sizeof(GridEntry);
}

std::size_t GridHashSet::projected_memory_bytes(std::size_t max_entries,
                                                double slot_factor) {
  const auto min_slots =
      static_cast<std::size_t>(slot_factor * static_cast<double>(max_entries)) + 1;
  return round_up_pow2(min_slots) * sizeof(Slot) + max_entries * sizeof(GridEntry);
}

}  // namespace scod
