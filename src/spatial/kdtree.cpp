#include "spatial/kdtree.hpp"

#include <algorithm>

namespace scod {

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  if (!points_.empty()) build(0, points_.size(), 0);
}

void KdTree::build(std::size_t lo, std::size_t hi, int axis) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(points_.begin() + static_cast<std::ptrdiff_t>(lo),
                   points_.begin() + static_cast<std::ptrdiff_t>(mid),
                   points_.begin() + static_cast<std::ptrdiff_t>(hi),
                   [axis](const Point& a, const Point& b) {
                     return axis_value(a.position, axis) < axis_value(b.position, axis);
                   });
  const int next_axis = (axis + 1) % 3;
  build(lo, mid, next_axis);
  build(mid + 1, hi, next_axis);
}

std::vector<std::uint32_t> KdTree::within(const Vec3& query, double radius) const {
  std::vector<std::uint32_t> out;
  for_each_within(query, radius, [&](const Point& p) { out.push_back(p.id); });
  return out;
}

}  // namespace scod
