#include "spatial/conjunction_set.hpp"

#include <stdexcept>
#include <utility>

#include "spatial/murmur3.hpp"

namespace scod {

namespace {
constexpr std::uint64_t kEmpty = ~0ull;
constexpr std::uint32_t kSatBits = 20;
constexpr std::uint32_t kStepBits = 24;
constexpr std::uint32_t kSatMax = (1u << kSatBits) - 1;
constexpr std::uint32_t kStepMax = (1u << kStepBits) - 1;
}  // namespace

std::uint64_t pack_candidate(std::uint32_t sat_a, std::uint32_t sat_b, std::uint32_t step) {
  if (sat_a > sat_b) std::swap(sat_a, sat_b);
  if (sat_b > kSatMax) throw std::out_of_range("pack_candidate: satellite index > 2^20-1");
  if (step > kStepMax) throw std::out_of_range("pack_candidate: step > 2^24-1");
  return (static_cast<std::uint64_t>(sat_a) << (kSatBits + kStepBits)) |
         (static_cast<std::uint64_t>(sat_b) << kStepBits) | step;
}

Candidate unpack_candidate(std::uint64_t key) {
  Candidate c;
  c.step = static_cast<std::uint32_t>(key & kStepMax);
  c.sat_b = static_cast<std::uint32_t>((key >> kStepBits) & kSatMax);
  c.sat_a = static_cast<std::uint32_t>((key >> (kSatBits + kStepBits)) & kSatMax);
  return c;
}

std::size_t CandidateSet::round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

CandidateSet::CandidateSet(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("CandidateSet: zero capacity");
  // "Like the grid hash map, the conjunction hash map needs additional
  // space to allow fast insertion, so we double the number of slots."
  slots_ = std::vector<std::atomic<std::uint64_t>>(round_up_pow2(2 * capacity));
  slot_mask_ = slots_.size() - 1;
  clear();
}

CandidateSet::CandidateSet(CandidateSet&& other) noexcept
    : slots_(std::move(other.slots_)),
      count_(other.count_.load(std::memory_order_relaxed)),
      capacity_(other.capacity_),
      slot_mask_(other.slot_mask_) {}

CandidateSet& CandidateSet::operator=(CandidateSet&& other) noexcept {
  if (this != &other) {
    slots_ = std::move(other.slots_);
    count_.store(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    capacity_ = other.capacity_;
    slot_mask_ = other.slot_mask_;
  }
  return *this;
}

CandidateSet::Insert CandidateSet::insert(std::uint64_t candidate_key) {
  std::uint64_t slot = murmur3_fmix64(candidate_key) & slot_mask_;
  for (std::uint64_t probes = 0; probes <= slot_mask_; ++probes) {
    std::uint64_t current = slots_[slot].load(std::memory_order_acquire);
    if (current == kEmpty) {
      // Soft capacity check: duplicates are still recognized when full, and
      // concurrent over-admission is bounded by the thread count (the slot
      // table has twice the capacity, so space always exists).
      if (count_.load(std::memory_order_relaxed) >= capacity_) return Insert::kFull;
      if (slots_[slot].compare_exchange_strong(current, candidate_key,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        count_.fetch_add(1, std::memory_order_acq_rel);
        return Insert::kInserted;
      }
    }
    if (current == candidate_key) return Insert::kDuplicate;
    slot = (slot + 1) & slot_mask_;
  }
  return Insert::kFull;
}

std::vector<Candidate> CandidateSet::drain() const {
  std::vector<Candidate> out;
  out.reserve(size());
  for (const auto& s : slots_) {
    const std::uint64_t key = s.load(std::memory_order_acquire);
    if (key != kEmpty) out.push_back(unpack_candidate(key));
  }
  return out;
}

void CandidateSet::grow() {
  std::vector<std::atomic<std::uint64_t>> old = std::move(slots_);
  capacity_ *= 2;
  slots_ = std::vector<std::atomic<std::uint64_t>>(2 * old.size());
  slot_mask_ = slots_.size() - 1;
  for (auto& s : slots_) s.store(kEmpty, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  for (auto& s : old) {
    const std::uint64_t key = s.load(std::memory_order_relaxed);
    if (key != kEmpty) insert(key);
  }
}

void CandidateSet::clear() {
  for (auto& s : slots_) s.store(kEmpty, std::memory_order_relaxed);
  count_.store(0, std::memory_order_release);
}

}  // namespace scod
