#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace scod {

/// Sentinel for an unoccupied hash-map slot. "As a memory location can
/// never be truly empty, we use the maximum of a 64-bit value as a unique
/// value that indicates an empty slot" (paper, Section IV-A1).
inline constexpr std::uint64_t kEmptySlotKey = ~0ull;

/// Sentinel terminating a cell's singly-linked satellite list.
inline constexpr std::uint32_t kNoEntry = ~0u;

/// One element of a grid cell's singly-linked list (the paper's Fig. 6
/// "satellite entry"): the satellite's index, its ECI position at the
/// sample time, and the link to the next entry in the same cell.
struct GridEntry {
  Vec3 position;
  std::uint32_t satellite = 0;
  std::uint32_t next = kNoEntry;
};

/// Non-blocking fixed-size hash set representing one grid (= one sample
/// step) — the paper's central data structure (Section IV-A).
///
/// Layout: an open-addressed slot table (key = packed cell coordinate,
/// resolved with MurMur3 + linear probing, claimed with an atomic CAS) and
/// a pre-allocated entry pool with one entry per satellite ("each satellite
/// produces exactly one of these entries, so we can allocate them in
/// advance"). Claiming a slot and pushing onto a cell's list are both
/// lock-free; insertion never allocates.
///
/// Concurrency contract: insert() may be called concurrently from any
/// number of threads. Readers (find / slot iteration) must only run after
/// all inserts completed (the screener's phase barrier) — the same
/// discipline a CUDA kernel boundary imposes in the paper's GPU variant.
class GridHashSet {
 public:
  /// Sizes the set for `max_entries` satellites. The slot table gets
  /// `slot_factor` * max_entries slots, rounded up to a power of two ("we
  /// use twice the number of satellites as slots to mitigate the number of
  /// hash collisions and break up long clusters").
  explicit GridHashSet(std::size_t max_entries, double slot_factor = 2.0);

  /// Movable (single-threaded contexts only — the atomic counters are
  /// transferred with plain loads/stores); not copyable.
  GridHashSet(GridHashSet&& other) noexcept;
  GridHashSet& operator=(GridHashSet&& other) noexcept;
  GridHashSet(const GridHashSet&) = delete;
  GridHashSet& operator=(const GridHashSet&) = delete;

  /// Inserts a satellite into cell `cell_key`. Thread-safe and lock-free.
  /// Returns false iff the entry pool or the slot table is exhausted
  /// (cannot happen when at most max_entries inserts are issued).
  bool insert(std::uint64_t cell_key, std::uint32_t satellite, const Vec3& position);

  /// Head of the entry list for a cell, or kNoEntry. Call only after the
  /// insertion phase finished.
  std::uint32_t find(std::uint64_t cell_key) const;

  const GridEntry& entry(std::uint32_t index) const { return entries_[index]; }

  /// Number of entries inserted since the last clear().
  std::size_t size() const { return entry_count_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return entries_.size(); }
  std::size_t slot_count() const { return slots_.size(); }

  /// Slot inspection for the parallel conjunction-detection scan.
  std::uint64_t slot_key(std::size_t slot) const {
    return slots_[slot].key.load(std::memory_order_acquire);
  }
  std::uint32_t slot_head(std::size_t slot) const {
    return slots_[slot].head.load(std::memory_order_acquire);
  }

  /// Resets every slot to empty and recycles the entry pool. O(slot_count).
  void clear();

  /// Total linear-probe steps taken by all inserts since construction;
  /// diagnostic for load-factor/clustering experiments.
  std::uint64_t probe_steps() const { return probe_steps_.load(std::memory_order_relaxed); }

  /// Approximate memory footprint in bytes (slot table + entry pool); used
  /// by the memory-sizing model (a_gh + a_l in Section V-B).
  std::size_t memory_bytes() const;

  /// Footprint a set of this size would have, without building it.
  static std::size_t projected_memory_bytes(std::size_t max_entries,
                                            double slot_factor = 2.0);

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{kEmptySlotKey};
    std::atomic<std::uint32_t> head{kNoEntry};
  };

  static std::size_t round_up_pow2(std::size_t v);

  std::vector<Slot> slots_;
  std::vector<GridEntry> entries_;
  std::atomic<std::uint32_t> entry_count_{0};
  std::atomic<std::uint64_t> probe_steps_{0};
  std::uint64_t slot_mask_ = 0;
};

}  // namespace scod
