#include "population/catalog_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "orbit/geometry.hpp"

namespace scod {

namespace {
constexpr const char* kHeader =
    "id,semi_major_axis_km,eccentricity,inclination_rad,raan_rad,"
    "arg_perigee_rad,mean_anomaly_rad";
}

void save_catalog_csv(const std::string& path, const std::vector<Satellite>& satellites) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_catalog_csv: cannot open " + path);
  out << kHeader << '\n';
  out << std::setprecision(17);
  for (const Satellite& sat : satellites) {
    const KeplerElements& el = sat.elements;
    out << sat.id << ',' << el.semi_major_axis << ',' << el.eccentricity << ','
        << el.inclination << ',' << el.raan << ',' << el.arg_perigee << ','
        << el.mean_anomaly << '\n';
  }
  if (!out) throw std::runtime_error("save_catalog_csv: write failure on " + path);
}

std::vector<Satellite> load_catalog_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_catalog_csv: cannot open " + path);

  std::vector<Satellite> satellites;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line_number == 1 && line.rfind("id,", 0) == 0) continue;  // header

    std::stringstream ss(line);
    std::string field;
    double values[7];
    int i = 0;
    while (i < 7 && std::getline(ss, field, ',')) {
      try {
        values[i] = std::stod(field);
      } catch (const std::exception&) {
        throw std::runtime_error("load_catalog_csv: bad number at " + path + ":" +
                                 std::to_string(line_number));
      }
      ++i;
    }
    if (i != 7) {
      throw std::runtime_error("load_catalog_csv: expected 7 fields at " + path + ":" +
                               std::to_string(line_number));
    }

    Satellite sat;
    sat.id = static_cast<std::uint32_t>(values[0]);
    sat.elements = {values[1], values[2], values[3], values[4], values[5], values[6]};
    if (!is_valid_orbit(sat.elements)) {
      throw std::runtime_error("load_catalog_csv: invalid orbit at " + path + ":" +
                               std::to_string(line_number));
    }
    satellites.push_back(sat);
  }
  return satellites;
}

}  // namespace scod
