#include "population/anchors.hpp"

#include <algorithm>
#include <vector>

#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {

namespace {

struct MixtureComponent {
  double weight;        // fraction of the catalog
  double a_mean;        // [km]
  double a_sigma;       // [km]
  double e_mean;
  double e_sigma;
};

/// Composition mirroring the 2021 active-satellite catalog: LEO dominates
/// (Starlink-era), with smaller SSO, MEO, GEO and HEO groups.
constexpr MixtureComponent kComponents[] = {
    {0.55, 6920.0, 40.0, 0.0020, 0.0015},   // Starlink-like LEO shells
    {0.18, 7090.0, 120.0, 0.0030, 0.0025},  // general LEO / CubeSats
    {0.10, 7180.0, 60.0, 0.0015, 0.0010},   // Sun-synchronous band
    {0.05, 7700.0, 250.0, 0.0100, 0.0080},  // upper LEO, transfer leftovers
    {0.04, 26560.0, 120.0, 0.0050, 0.0040}, // GNSS shells (GPS/Galileo)
    {0.06, 42164.0, 25.0, 0.0003, 0.0003},  // GEO ring
    {0.02, 24400.0, 900.0, 0.7000, 0.0300}, // GTO / Molniya-like tail
};

std::vector<std::pair<double, double>> build_catalog() {
  constexpr std::size_t kAnchors = 256;
  std::vector<std::pair<double, double>> catalog;
  catalog.reserve(kAnchors);
  Rng rng(0xA2C40B5ull);  // fixed seed: the catalog is data, not randomness

  // Deterministic per-component counts via largest remainder.
  std::size_t produced = 0;
  for (const MixtureComponent& c : kComponents) {
    const auto want = static_cast<std::size_t>(c.weight * kAnchors + 0.5);
    for (std::size_t i = 0; i < want && produced < kAnchors; ++i, ++produced) {
      double a, e;
      do {
        a = rng.gaussian(c.a_mean, c.a_sigma);
        e = std::abs(rng.gaussian(c.e_mean, c.e_sigma));
      } while (a * (1.0 - e) < kEarthRadius + kMinPerigeeAltitude || e >= 0.95);
      catalog.emplace_back(a, e);
    }
  }
  // Top up any rounding shortfall from the dominant component.
  while (produced < kAnchors) {
    catalog.emplace_back(rng.gaussian(kComponents[0].a_mean, kComponents[0].a_sigma),
                         std::abs(rng.gaussian(kComponents[0].e_mean, kComponents[0].e_sigma)));
    ++produced;
  }
  return catalog;
}

}  // namespace

std::span<const std::pair<double, double>> anchor_catalog() {
  static const std::vector<std::pair<double, double>> catalog = build_catalog();
  return catalog;
}

}  // namespace scod
