#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orbit/elements.hpp"

namespace scod {

/// One parsed two-line element set. The paper's population generator is
/// seeded from the Celestrak TLE catalog of active satellites ([46]); this
/// module reads that interchange format so real catalogs can be screened
/// directly.
///
/// Note on fidelity: TLE mean elements are defined against the SGP4 theory;
/// interpreting them as osculating Keplerian elements (as to_satellite()
/// does) is the standard first-order approximation when only geometry-level
/// screening is needed.
struct TleRecord {
  std::string name;               ///< from the optional title line
  std::uint32_t catalog_number = 0;
  char classification = 'U';
  std::string intl_designator;    ///< e.g. "98067A"
  int epoch_year = 0;             ///< four-digit year
  double epoch_day = 0.0;         ///< fractional day of year [1, 367)
  double mean_motion_dot = 0.0;   ///< rev/day^2 (first derivative / 2 field)
  double mean_motion_ddot = 0.0;  ///< rev/day^3 (second derivative / 6 field)
  double bstar = 0.0;             ///< drag term [1/earth radii]
  std::uint32_t element_set = 0;
  std::uint32_t revolution_number = 0;
  double mean_motion_rev_day = 0.0;
  KeplerElements elements;        ///< converted: a from mean motion, angles in rad
};

/// Checksum of a TLE line: sum of digits plus one per '-', modulo 10,
/// computed over the first 68 columns.
int tle_checksum(const std::string& line);

/// Where a TLE entry came from, for error reporting: an optional source
/// path plus the 1-based file line of the entry's first line. With the
/// default (no context) error messages carry no location suffix.
struct TleSourceLocation {
  std::string path;       ///< empty = unknown source
  std::size_t line1 = 0;  ///< 1-based file line of TLE line 1; 0 = unknown
};

/// Parses one element set from its two lines (plus an optional name).
/// Throws std::runtime_error on malformed fields, wrong line numbers,
/// mismatched catalog numbers or checksum failures. When `where` carries
/// line context, the message pinpoints the offending line as
/// `path:line` (matching load_catalog_csv), e.g. checksum mismatches and
/// malformed fields on line 2 of an entry report the file line of line 2.
TleRecord parse_tle(const std::string& line1, const std::string& line2,
                    const std::string& name = "",
                    const TleSourceLocation& where = {});

/// Formats a record as canonical two-line strings (69 columns each,
/// checksummed). parse_tle(format...) round-trips all fields to TLE
/// precision.
std::pair<std::string, std::string> format_tle(const TleRecord& record);

/// Loads a TLE file in 2-line or 3-line (name-prefixed) format; blank
/// lines are skipped. Throws std::runtime_error with the line number of
/// the first malformed entry.
std::vector<TleRecord> load_tle_file(const std::string& path);

/// Converts a record to a screener Satellite with the given index (the
/// screener uses dense indices; keep the catalog number in the record).
Satellite to_satellite(const TleRecord& record, std::uint32_t index);

}  // namespace scod
