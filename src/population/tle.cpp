#include "population/tle.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/constants.hpp"

namespace scod {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tle: " + what);
}

/// Location suffix of one physical line, 1-based: " at path:42", " at
/// line 42" without a path, empty without line context — so checksum and
/// field errors pinpoint the offending line the way load_catalog_csv does.
std::string at_line(const TleSourceLocation& where, std::size_t line_index) {
  if (where.line1 == 0) return "";
  const std::size_t line_number = where.line1 + line_index;
  if (where.path.empty()) return " at line " + std::to_string(line_number);
  return " at " + where.path + ":" + std::to_string(line_number);
}

std::string field(const std::string& line, std::size_t col_begin, std::size_t col_end) {
  // TLE columns are 1-based inclusive.
  return line.substr(col_begin - 1, col_end - col_begin + 1);
}

double parse_double(const std::string& text, const char* what,
                    const std::string& at) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    // Trailing spaces are fine; anything else is a malformed field.
    for (std::size_t i = used; i < text.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(text[i]))) {
        fail(std::string("bad ") + what + " field '" + text + "'" + at);
      }
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail(std::string("bad ") + what + " field '" + text + "'" + at);
  }
}

std::uint32_t parse_uint(const std::string& text, const char* what,
                         const std::string& at) {
  std::uint32_t v = 0;
  bool any = false;
  for (char c : text) {
    if (c == ' ') continue;
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(std::string("bad ") + what + " field '" + text + "'" + at);
    }
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
    any = true;
  }
  if (!any) fail(std::string("empty ") + what + " field" + at);
  return v;
}

/// The TLE "implied decimal point" exponent notation, e.g. " 34123-4" =
/// +0.34123e-4, "-12345-5" = -0.12345e-5, " 00000+0" = 0.
double parse_exponent_field(const std::string& text, const char* what,
                            const std::string& at) {
  if (text.size() != 8) fail(std::string("bad width of ") + what + " field" + at);
  const double sign = text[0] == '-' ? -1.0 : 1.0;
  double mantissa = 0.0;
  for (std::size_t i = 1; i <= 5; ++i) {
    const char c = text[i] == ' ' ? '0' : text[i];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(std::string("bad ") + what + " field '" + text + "'" + at);
    }
    mantissa = mantissa * 10.0 + (c - '0');
  }
  mantissa /= 1e5;
  const double exp_sign = text[6] == '-' ? -1.0 : 1.0;
  if (!std::isdigit(static_cast<unsigned char>(text[7]))) {
    fail(std::string("bad ") + what + " exponent '" + text + "'" + at);
  }
  const double exponent = exp_sign * (text[7] - '0');
  return sign * mantissa * std::pow(10.0, exponent);
}

std::string format_exponent_field(double value) {
  char out[9];
  const char sign = value < 0.0 ? '-' : ' ';
  value = std::abs(value);
  int exponent = 0;
  if (value > 0.0) {
    exponent = static_cast<int>(std::ceil(std::log10(value) + 1e-12));
    // Mantissa in [0.1, 1): value = 0.ddddd * 10^exponent.
    double mantissa = value / std::pow(10.0, exponent);
    if (mantissa >= 1.0) {
      mantissa /= 10.0;
      ++exponent;
    }
    const auto digits = static_cast<long>(std::llround(mantissa * 1e5));
    std::snprintf(out, sizeof(out), "%c%05ld%+1d", sign, digits, exponent);
  } else {
    std::snprintf(out, sizeof(out), "%c00000+0", sign);
  }
  return out;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(' ');
  const auto e = s.find_last_not_of(" \r\n");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}

double deg_to_rad(double deg) { return deg * kPi / 180.0; }

}  // namespace

int tle_checksum(const std::string& line) {
  int sum = 0;
  const std::size_t end = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < end; ++i) {
    if (std::isdigit(static_cast<unsigned char>(line[i]))) sum += line[i] - '0';
    if (line[i] == '-') sum += 1;
  }
  return sum % 10;
}

TleRecord parse_tle(const std::string& line1, const std::string& line2,
                    const std::string& name, const TleSourceLocation& where) {
  const std::string at1 = at_line(where, 0);
  const std::string at2 = at_line(where, 1);
  if (line1.size() < 69) fail("line shorter than 69 columns" + at1);
  if (line2.size() < 69) fail("line shorter than 69 columns" + at2);
  if (line1[0] != '1') fail("line 1 does not start with '1'" + at1);
  if (line2[0] != '2') fail("line 2 does not start with '2'" + at2);
  for (int i = 0; i < 2; ++i) {
    const std::string& line = i == 0 ? line1 : line2;
    const int expected = line[68] - '0';
    if (tle_checksum(line) != expected) {
      fail("checksum mismatch on line '" + trim(line) + "'" +
           (i == 0 ? at1 : at2));
    }
  }

  TleRecord rec;
  rec.name = trim(name);
  rec.catalog_number = parse_uint(field(line1, 3, 7), "catalog number", at1);
  if (parse_uint(field(line2, 3, 7), "catalog number", at2) != rec.catalog_number) {
    fail("catalog numbers of the two lines differ" + at2);
  }
  rec.classification = line1[7];
  rec.intl_designator = trim(field(line1, 10, 17));

  const auto epoch_yy =
      static_cast<int>(parse_uint(field(line1, 19, 20), "epoch year", at1));
  rec.epoch_year = epoch_yy < 57 ? 2000 + epoch_yy : 1900 + epoch_yy;  // NORAD rule
  rec.epoch_day = parse_double(field(line1, 21, 32), "epoch day", at1);

  rec.mean_motion_dot = parse_double(field(line1, 34, 43), "mean motion dot", at1);
  rec.mean_motion_ddot =
      parse_exponent_field(field(line1, 45, 52), "mean motion ddot", at1);
  rec.bstar = parse_exponent_field(field(line1, 54, 61), "bstar", at1);
  rec.element_set = parse_uint(field(line1, 65, 68), "element set", at1);

  KeplerElements& el = rec.elements;
  el.inclination = deg_to_rad(parse_double(field(line2, 9, 16), "inclination", at2));
  el.raan = deg_to_rad(parse_double(field(line2, 18, 25), "raan", at2));
  el.eccentricity =
      parse_double("0." + trim(field(line2, 27, 33)), "eccentricity", at2);
  el.arg_perigee =
      deg_to_rad(parse_double(field(line2, 35, 42), "arg of perigee", at2));
  el.mean_anomaly =
      deg_to_rad(parse_double(field(line2, 44, 51), "mean anomaly", at2));
  rec.mean_motion_rev_day = parse_double(field(line2, 53, 63), "mean motion", at2);
  rec.revolution_number = parse_uint(field(line2, 64, 68), "revolution number", at2);

  if (rec.mean_motion_rev_day <= 0.0) fail("non-positive mean motion" + at2);
  const double n_rad_s = rec.mean_motion_rev_day * kTwoPi / 86400.0;
  el.semi_major_axis = std::cbrt(kMuEarth / (n_rad_s * n_rad_s));
  return rec;
}

std::pair<std::string, std::string> format_tle(const TleRecord& record) {
  char line1[70];
  char line2[70];
  const KeplerElements& el = record.elements;
  const int yy = record.epoch_year % 100;

  std::snprintf(line1, sizeof(line1),
                "1 %05u%c %-8s %02d%012.8f %c.%08.0f %s %s 0 %4u0",
                record.catalog_number, record.classification,
                record.intl_designator.c_str(), yy, record.epoch_day,
                record.mean_motion_dot < 0.0 ? '-' : ' ',
                std::abs(record.mean_motion_dot) * 1e8,
                format_exponent_field(record.mean_motion_ddot).c_str(),
                format_exponent_field(record.bstar).c_str(), record.element_set);

  std::snprintf(line2, sizeof(line2),
                "2 %05u %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5u0",
                record.catalog_number, el.inclination * 180.0 / kPi,
                el.raan * 180.0 / kPi,
                std::lround(el.eccentricity * 1e7),
                el.arg_perigee * 180.0 / kPi, el.mean_anomaly * 180.0 / kPi,
                record.mean_motion_rev_day, record.revolution_number);

  std::string l1(line1), l2(line2);
  l1.resize(69, ' ');
  l2.resize(69, ' ');
  l1[68] = static_cast<char>('0' + tle_checksum(l1));
  l2[68] = static_cast<char>('0' + tle_checksum(l2));
  return {l1, l2};
}

std::vector<TleRecord> load_tle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);

  std::vector<TleRecord> records;
  std::string line, name;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (line[0] != '1' || line.size() < 69) {
      // Title line of a 3-line entry.
      name = trimmed;
      continue;
    }
    std::string line2;
    if (!std::getline(in, line2)) {
      fail("missing line 2 after " + path + ":" + std::to_string(line_number));
    }
    ++line_number;
    // parse_tle pinpoints the offending line itself (path:line of line 1
    // or line 2 of the entry, whichever failed).
    records.push_back(parse_tle(line, line2, name, {path, line_number - 1}));
    name.clear();
  }
  return records;
}

Satellite to_satellite(const TleRecord& record, std::uint32_t index) {
  return {index, record.elements};
}

}  // namespace scod
