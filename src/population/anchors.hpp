#pragma once

#include <span>
#include <utility>

namespace scod {

/// Anchor catalog for the (semi-major axis [km], eccentricity) density of
/// Fig. 9.
///
/// The paper fits a bivariate kernel density estimate to the Celestrak
/// catalog of active satellites (April 2021). That catalog is not
/// available offline, so — per the substitution policy in DESIGN.md — we
/// embed a synthetic anchor set reproducing the published structure of the
/// distribution: the dominant LEO concentration at a ~ 7000 km with
/// e ~ 0.0025, the upper-LEO/SSO band, the MEO navigation shells, the thin
/// GEO ring at 42164 km, and a small HEO/GTO tail with high eccentricity.
/// The anchors are generated once from a fixed-seed mixture model, so every
/// build and every run sees the identical "catalog".
std::span<const std::pair<double, double>> anchor_catalog();

}  // namespace scod
