#include "population/kde.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/constants.hpp"
#include "util/stats.hpp"

namespace scod {

BivariateKde::BivariateKde(std::span<const std::pair<double, double>> points)
    : points_(points.begin(), points.end()) {
  if (points_.empty()) throw std::invalid_argument("BivariateKde: no points");

  const auto n = static_cast<double>(points_.size());

  // Scott's rule for d = 2: h_i = sigma_i * n^(-1/(d+4)) = sigma_i * n^(-1/6),
  // with sigma estimated robustly (1.4826 * median absolute deviation).
  // The catalog is strongly multimodal — LEO cluster plus MEO/GEO shells —
  // and a plain standard deviation would smear the modes into each other;
  // the MAD measures the within-mode scale instead.
  auto robust_sigma = [](std::vector<double> values) {
    const double med = median(values);
    for (double& v : values) v = std::abs(v - med);
    return 1.4826 * median(std::move(values));
  };

  std::vector<double> xs, ys;
  xs.reserve(points_.size());
  ys.reserve(points_.size());
  for (const auto& [x, y] : points_) {
    xs.push_back(x);
    ys.push_back(y);
  }

  const double factor = std::pow(n, -1.0 / 6.0);
  h_x_ = robust_sigma(std::move(xs)) * factor;
  h_y_ = robust_sigma(std::move(ys)) * factor;
  if (h_x_ <= 0.0) h_x_ = 1e-12;
  if (h_y_ <= 0.0) h_y_ = 1e-12;
}

std::pair<double, double> BivariateKde::sample(Rng& rng) const {
  const auto& center = points_[rng.uniform_index(points_.size())];
  return {rng.gaussian(center.first, h_x_), rng.gaussian(center.second, h_y_)};
}

double BivariateKde::density(double x, double y) const {
  const double norm = 1.0 / (static_cast<double>(points_.size()) * kTwoPi * h_x_ * h_y_);
  double sum = 0.0;
  for (const auto& [cx, cy] : points_) {
    const double dx = (x - cx) / h_x_;
    const double dy = (y - cy) / h_y_;
    sum += std::exp(-0.5 * (dx * dx + dy * dy));
  }
  return norm * sum;
}

}  // namespace scod
