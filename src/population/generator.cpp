#include "population/generator.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/anomaly.hpp"
#include "orbit/geometry.hpp"
#include "population/anchors.hpp"
#include "population/kde.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

namespace scod {

std::vector<Satellite> generate_population(const PopulationConfig& config) {
  const BivariateKde kde(anchor_catalog());
  Rng rng(config.seed);

  std::vector<Satellite> satellites;
  satellites.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    KeplerElements el;
    // Rejection-sample (a, e) until the orbit is physically valid; the
    // KDE tails occasionally dip below the minimum perigee.
    do {
      const auto [a, e] = kde.sample(rng);
      el.semi_major_axis = a;
      el.eccentricity = std::abs(e);
    } while (el.eccentricity > config.max_eccentricity ||
             el.semi_major_axis > config.max_semi_major_axis ||
             el.semi_major_axis <= 0.0 ||
             perigee_radius(el) < kEarthRadius + kMinPerigeeAltitude);

    el.inclination = rng.uniform(0.0, kPi);
    el.raan = rng.uniform(0.0, kTwoPi);
    el.arg_perigee = rng.uniform(0.0, kTwoPi);
    el.mean_anomaly = rng.uniform(0.0, kTwoPi);

    satellites.push_back({static_cast<std::uint32_t>(i), el});
  }
  return satellites;
}

std::vector<Satellite> generate_constellation_shell(std::size_t planes,
                                                    std::size_t per_plane,
                                                    double altitude_km,
                                                    double inclination_rad,
                                                    double phasing,
                                                    std::uint32_t first_id) {
  std::vector<Satellite> satellites;
  satellites.reserve(planes * per_plane);
  const double a = kEarthRadius + altitude_km;
  std::uint32_t id = first_id;
  for (std::size_t p = 0; p < planes; ++p) {
    const double raan = kTwoPi * static_cast<double>(p) / static_cast<double>(planes);
    const double plane_phase =
        phasing * kTwoPi / static_cast<double>(per_plane) * static_cast<double>(p);
    for (std::size_t s = 0; s < per_plane; ++s) {
      KeplerElements el;
      el.semi_major_axis = a;
      el.eccentricity = 0.0001;  // near-circular; exactly 0 degenerates argp
      el.inclination = inclination_rad;
      el.raan = raan;
      el.arg_perigee = 0.0;
      el.mean_anomaly = wrap_two_pi(
          kTwoPi * static_cast<double>(s) / static_cast<double>(per_plane) + plane_phase);
      satellites.push_back({id++, el});
    }
  }
  return satellites;
}

std::vector<Satellite> generate_debris_cloud(const KeplerElements& parent,
                                             std::size_t count, double spread,
                                             std::uint64_t seed,
                                             std::uint32_t first_id) {
  Rng rng(seed);
  std::vector<Satellite> satellites;
  satellites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    KeplerElements el;
    do {
      el = parent;
      el.semi_major_axis += rng.gaussian(0.0, 30.0 * spread);
      el.eccentricity = std::abs(el.eccentricity + rng.gaussian(0.0, 0.005 * spread));
      el.inclination += rng.gaussian(0.0, 0.01 * spread);
      el.inclination = std::clamp(el.inclination, 0.0, kPi);
      el.raan = wrap_two_pi(el.raan + rng.gaussian(0.0, 0.02 * spread));
      el.arg_perigee = wrap_two_pi(el.arg_perigee + rng.gaussian(0.0, 0.05 * spread));
      // Fragments disperse along-track fastest: wide anomaly spread.
      el.mean_anomaly = wrap_two_pi(el.mean_anomaly + rng.gaussian(0.0, 0.5 * spread));
    } while (!is_valid_orbit(el) ||
             perigee_radius(el) < kEarthRadius + kMinPerigeeAltitude);
    satellites.push_back({static_cast<std::uint32_t>(first_id + i), el});
  }
  return satellites;
}

}  // namespace scod
