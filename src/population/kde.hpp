#pragma once

#include <span>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace scod {

/// Bivariate Gaussian kernel density estimate with a diagonal (per-axis)
/// bandwidth from Scott's rule. The paper "employed a bivariate kernel
/// density estimate to model the distribution and relationship between the
/// semi-major axis and the eccentricity" of the real catalog; this class
/// provides the same fit/sample/density operations over our anchor catalog.
class BivariateKde {
 public:
  /// Fits the KDE to the given sample points. Throws on an empty input.
  explicit BivariateKde(std::span<const std::pair<double, double>> points);

  /// Draws one sample: a uniformly chosen kernel center plus Gaussian
  /// noise at the fitted bandwidth (exact KDE sampling).
  std::pair<double, double> sample(Rng& rng) const;

  /// Density estimate at (x, y).
  double density(double x, double y) const;

  double bandwidth_x() const { return h_x_; }
  double bandwidth_y() const { return h_y_; }
  std::size_t anchor_count() const { return points_.size(); }

 private:
  std::vector<std::pair<double, double>> points_;
  double h_x_ = 0.0;
  double h_y_ = 0.0;
};

}  // namespace scod
