#pragma once

#include <string>
#include <vector>

#include "orbit/elements.hpp"

namespace scod {

/// Writes a satellite catalog as CSV with the header
/// `id,semi_major_axis_km,eccentricity,inclination_rad,raan_rad,arg_perigee_rad,mean_anomaly_rad`.
/// Throws std::runtime_error on I/O failure.
void save_catalog_csv(const std::string& path, const std::vector<Satellite>& satellites);

/// Reads a catalog written by save_catalog_csv (or assembled by hand in
/// the same format). Validates each orbit and throws std::runtime_error
/// with the offending line number on malformed input.
std::vector<Satellite> load_catalog_csv(const std::string& path);

}  // namespace scod
