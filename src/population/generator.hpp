#pragma once

#include <cstdint>
#include <vector>

#include "orbit/elements.hpp"

namespace scod {

/// Configuration of the synthetic-population generator (Section V-A /
/// Table II of the paper).
struct PopulationConfig {
  std::size_t count = 2000;
  std::uint64_t seed = 42;
  /// Rejection bounds on the KDE draw: keep the orbit elliptic, above the
  /// minimum perigee altitude and inside the simulation cube.
  double max_semi_major_axis = 45000.0;  ///< [km]
  double max_eccentricity = 0.9;
};

/// Generates `config.count` satellites: (a, e) from the bivariate KDE over
/// the anchor catalog, inclination uniform in [0, pi], RAAN and argument
/// of perigee uniform in [0, 2 pi), mean anomaly uniform in [0, 2 pi)
/// (Table II: the true anomaly follows from the mean anomaly). Ids are
/// assigned 0..count-1. Deterministic in `config.seed`.
std::vector<Satellite> generate_population(const PopulationConfig& config);

/// A Walker-delta style mega-constellation shell (the use case motivating
/// the paper's introduction): `planes` orbital planes at equal RAAN
/// spacing, `per_plane` satellites per plane at equal anomaly spacing, all
/// at the given altitude/inclination on near-circular orbits. `phasing`
/// shifts the anomaly between adjacent planes (Walker's F parameter as a
/// fraction of the in-plane spacing). Ids start at `first_id`.
std::vector<Satellite> generate_constellation_shell(std::size_t planes,
                                                    std::size_t per_plane,
                                                    double altitude_km,
                                                    double inclination_rad,
                                                    double phasing = 0.0,
                                                    std::uint32_t first_id = 0);

/// A fragmentation cloud: `count` debris objects spread around a parent
/// orbit by Gauss-perturbing the parent's elements (the paper's Section
/// III-B discusses exactly this scenario — fragments start at one point
/// and spread across the orbital shell). `spread` scales the element
/// perturbations (1.0 ~ a days-old cloud).
std::vector<Satellite> generate_debris_cloud(const KeplerElements& parent,
                                             std::size_t count, double spread,
                                             std::uint64_t seed,
                                             std::uint32_t first_id = 0);

}  // namespace scod
