#include "util/csv.hpp"

#include <stdexcept>

namespace scod {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch in " + path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace scod
