#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace scod {

/// Column-aligned plain-text table printer. The benchmark binaries use it
/// to emit the same rows the paper's tables/figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string integer(long long value);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scod
