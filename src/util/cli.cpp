#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace scod {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known_options) {
  program_ = argc > 0 ? argv[0] : "";
  auto known = [&](const std::string& name) {
    return std::find(known_options.begin(), known_options.end(), name) != known_options.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      unknown_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // Consume the next token as the value unless it is another option or
      // the option is a known bare flag at the end of the command line.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!known(name)) {
      unknown_.push_back("--" + name);
      continue;
    }
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliArgs::get_int_list(const std::string& name,
                                                std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::stoll(token));
  }
  return out;
}

}  // namespace scod
