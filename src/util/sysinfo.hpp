#pragma once

#include <cstddef>
#include <string>

namespace scod {

/// Host description used by `bench_table1_systems`, the analogue of the
/// paper's Table I (benchmark system configuration).
struct SystemInfo {
  std::string os;
  std::string cpu_name;
  std::size_t logical_cpus = 0;
  double cpu_mhz = 0.0;
  /// Total system memory in GiB.
  double memory_gib = 0.0;
};

/// Queries /proc and uname; missing fields stay at their defaults.
SystemInfo query_system_info();

}  // namespace scod
