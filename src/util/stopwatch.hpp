#pragma once

#include <chrono>

namespace scod {

/// Monotonic wall-clock stopwatch used by the phase-timing instrumentation
/// (Section V-C1 of the paper reports per-phase relative time consumption).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace scod
