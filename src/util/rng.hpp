#pragma once

#include <cmath>
#include <cstdint>

#include "util/constants.hpp"

namespace scod {

/// SplitMix64: used to expand a single 64-bit seed into the state of the
/// main generator. Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ pseudo-random generator (Blackman & Vigna 2019).
///
/// Deterministic across platforms given the same seed, which the population
/// generator relies on so that every benchmark/test sees the same catalog.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5C0D5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    has_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (the multiply-shift
    // bias is < n / 2^64, immaterial for our n <= 2^20 index draws).
    __extension__ using uint128 = unsigned __int128;
    const uint128 m = static_cast<uint128>(next()) * static_cast<uint128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate via the Marsaglia polar method.
  double gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace scod
