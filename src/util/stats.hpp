#pragma once

#include <cstddef>
#include <vector>

namespace scod {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
/// Used by benchmark harnesses to aggregate repeated timing measurements.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation between closest
/// ranks; `q` in [0, 1]. The input is copied and sorted.
double percentile(std::vector<double> values, double q);

double median(std::vector<double> values);

/// Arithmetic mean; zero for an empty input.
double mean_of(const std::vector<double>& values);

/// Fixed-width 2-D histogram used to reproduce the bivariate density plot
/// of Fig. 9 (semi-major axis vs. eccentricity).
class Histogram2D {
 public:
  Histogram2D(double x_lo, double x_hi, std::size_t x_bins,
              double y_lo, double y_hi, std::size_t y_bins);

  /// Adds a sample; values outside the range are clamped into the border
  /// bins so the total count always equals the number of added samples.
  void add(double x, double y);

  std::size_t x_bins() const { return x_bins_; }
  std::size_t y_bins() const { return y_bins_; }
  std::size_t at(std::size_t xi, std::size_t yi) const;
  std::size_t total() const { return total_; }
  std::size_t max_count() const;

  double x_bin_center(std::size_t xi) const;
  double y_bin_center(std::size_t yi) const;

 private:
  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t x_bins_, y_bins_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace scod
