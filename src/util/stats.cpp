#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scod {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) { return percentile(std::move(values), 0.5); }

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Histogram2D::Histogram2D(double x_lo, double x_hi, std::size_t x_bins,
                         double y_lo, double y_hi, std::size_t y_bins)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi),
      x_bins_(x_bins), y_bins_(y_bins), counts_(x_bins * y_bins, 0) {
  if (x_bins == 0 || y_bins == 0) throw std::invalid_argument("Histogram2D: zero bins");
  if (!(x_lo < x_hi) || !(y_lo < y_hi)) throw std::invalid_argument("Histogram2D: empty range");
}

void Histogram2D::add(double x, double y) {
  auto bin = [](double v, double lo, double hi, std::size_t n) {
    const double t = (v - lo) / (hi - lo);
    const auto i = static_cast<long long>(std::floor(t * static_cast<double>(n)));
    return static_cast<std::size_t>(std::clamp<long long>(i, 0, static_cast<long long>(n) - 1));
  };
  const std::size_t xi = bin(x, x_lo_, x_hi_, x_bins_);
  const std::size_t yi = bin(y, y_lo_, y_hi_, y_bins_);
  ++counts_[xi * y_bins_ + yi];
  ++total_;
}

std::size_t Histogram2D::at(std::size_t xi, std::size_t yi) const {
  return counts_.at(xi * y_bins_ + yi);
}

std::size_t Histogram2D::max_count() const {
  return *std::max_element(counts_.begin(), counts_.end());
}

double Histogram2D::x_bin_center(std::size_t xi) const {
  const double w = (x_hi_ - x_lo_) / static_cast<double>(x_bins_);
  return x_lo_ + (static_cast<double>(xi) + 0.5) * w;
}

double Histogram2D::y_bin_center(std::size_t yi) const {
  const double w = (y_hi_ - y_lo_) / static_cast<double>(y_bins_);
  return y_lo_ + (static_cast<double>(yi) + 0.5) * w;
}

}  // namespace scod
