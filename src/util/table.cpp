#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace scod {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::integer(long long value) { return std::to_string(value); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  std::size_t rule_len = 1;
  for (auto w : widths) rule_len += w + 3;
  const std::string rule(rule_len, '-');

  os << rule << '\n';
  print_row(header_);
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
  os << rule << '\n';
}

}  // namespace scod
