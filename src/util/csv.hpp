#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace scod {

/// Small CSV writer; every benchmark also dumps machine-readable results so
/// figures can be replotted without re-running the sweep.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header line. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Quotes a CSV field if it contains separators/quotes.
std::string csv_escape(const std::string& field);

}  // namespace scod
