#pragma once

#include <cmath>
#include <ostream>

namespace scod {

/// Minimal 3-component double vector used for positions [km] and
/// velocities [km/s] in the Earth-centered inertial frame.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  constexpr double norm2() const { return dot(*this); }

  double norm() const { return std::sqrt(norm2()); }

  /// Returns the zero vector if this vector is (numerically) zero.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  double distance(const Vec3& o) const { return (*this - o).norm(); }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace scod
