#pragma once

/// Physical and numerical constants shared across the library.
///
/// All lengths are kilometres, all times seconds, all angles radians,
/// matching the unit conventions of the paper (screening thresholds in km,
/// sampling periods in seconds).
namespace scod {

/// Standard gravitational parameter of Earth [km^3 / s^2] (WGS-84).
inline constexpr double kMuEarth = 398600.4418;

/// Mean equatorial radius of Earth [km] (WGS-84).
inline constexpr double kEarthRadius = 6378.137;

/// J2 zonal harmonic coefficient of Earth's gravity field (dimensionless).
inline constexpr double kJ2 = 1.08262668e-3;

/// J3 zonal harmonic ("pear shape") coefficient.
inline constexpr double kJ3Earth = -2.5326e-6;

/// Typical orbital speed of a satellite in LEO [km/s]; the paper's Eq. (1)
/// uses this value to bound how far an object can travel between samples.
inline constexpr double kLeoSpeed = 7.8;

/// Half-extent of the cubic simulation volume [km]. The paper requires at
/// least (85,000 km)^3 to cover everything up to the geostationary ring at
/// 42,164 km; centering the cube on Earth gives each axis the span
/// [-42,500, +42,500] km.
inline constexpr double kSimulationHalfExtent = 42500.0;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Lowest perigee altitude [km] we consider a stable orbit when generating
/// synthetic populations (objects below re-enter quickly).
inline constexpr double kMinPerigeeAltitude = 200.0;

/// Geostationary semi-major axis [km].
inline constexpr double kGeoSemiMajorAxis = 42164.0;

}  // namespace scod
