#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scod {

/// Minimal command-line option parser for the benchmark harness binaries.
///
/// Accepts `--name value`, `--name=value` and bare `--flag` forms. Unknown
/// options are collected and reported so a typo in a sweep script fails
/// loudly instead of silently benchmarking the default configuration.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known_options);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. `--sizes 2000,4000,8000`.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& unknown() const { return unknown_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> unknown_;
};

}  // namespace scod
