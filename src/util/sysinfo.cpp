#include "util/sysinfo.hpp"

#include <sys/utsname.h>

#include <fstream>
#include <sstream>
#include <thread>

namespace scod {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  return b == std::string::npos ? "" : s.substr(b, e - b + 1);
}
}  // namespace

SystemInfo query_system_info() {
  SystemInfo info;
  info.logical_cpus = std::thread::hardware_concurrency();

  utsname un{};
  if (uname(&un) == 0) {
    info.os = std::string(un.sysname) + " " + un.release;
  }

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = trim(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));
    if (key == "model name" && info.cpu_name.empty()) info.cpu_name = value;
    if (key == "cpu MHz" && info.cpu_mhz == 0.0) {
      std::stringstream ss(value);
      ss >> info.cpu_mhz;
    }
  }

  std::ifstream meminfo("/proc/meminfo");
  while (std::getline(meminfo, line)) {
    if (line.rfind("MemTotal:", 0) == 0) {
      std::stringstream ss(line.substr(9));
      double kib = 0.0;
      ss >> kib;
      info.memory_gib = kib / (1024.0 * 1024.0);
      break;
    }
  }
  return info;
}

}  // namespace scod
