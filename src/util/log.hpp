#pragma once

#include <sstream>
#include <string>

namespace scod {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe, timestamped logging to stderr. Kept intentionally simple:
/// the library itself logs only at kWarn and above; harness binaries use
/// kInfo for progress reporting on long sweeps.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string format_concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::format_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::format_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::format_concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::format_concat(std::forward<Args>(args)...));
}

}  // namespace scod
