#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace scod {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%.3f] [%s] %s\n", secs, level_name(level), message.c_str());
}

}  // namespace scod
